#!/usr/bin/env python
"""End-to-end chaos smoke test for the decision server.

Exercises the serving contract from the outside, through the
``repro-serve`` CLI only:

1. start a healthy server and stream laddered decisions — every reply
   must be a full (ladder-1) answer;
2. restart with an injected *hung* planner (``--inject-stall-seconds``)
   and require every decision to still answer, at the deadline, with
   the ladder-2 shield action;
3. ``SIGKILL`` the server mid-stream — the client must *know* it got
   no decision (no silent drops, no fabricated actions) — then restart
   on the same socket and keep streaming;
4. require exact accounting on the final server
   (``offered == served + degraded + shed``) and a clean SIGTERM drain
   (exit code 0).

Around 200 decisions total; **every reply received at every phase must
be shield-verified safe** (finite, inside the actuation envelope,
full brake on ladder >= 2, ``verify_replaced`` never set).

Run via ``make serve-smoke``.  Exits 0 on success, 1 on any violated
expectation.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ServeError  # noqa: E402
from repro.scenarios.car_following import CarFollowingScenario  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402

LIMITS = CarFollowingScenario().ego_limits

#: Decisions per phase (healthy, hung, pre-kill, post-restart).
PHASE_DECISIONS = 50

STARTUP_TIMEOUT = 30.0


def _fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _start_server(sock, *flags):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--unix-socket",
            str(sock),
            "--quiet",
            *flags,
        ],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            _fail(
                "server died at startup: "
                f"{proc.stderr.read().decode(errors='replace')!r}"
            )
        try:
            with ServeClient(path=str(sock), timeout=1.0) as client:
                client.ping()
            return proc
        except ServeError:
            time.sleep(0.05)
    proc.kill()
    _fail("server never became reachable")


def _check_safe(response):
    """The chaos invariant for one reply, any ladder level."""
    if response.get("safe") is not True:
        _fail(f"reply not flagged safe: {response}")
    action = response["action"]
    if not (LIMITS.a_min - 1e-9 <= action <= LIMITS.a_max + 1e-9):
        _fail(f"action outside actuation envelope: {response}")
    if response["ladder"] >= 2 and abs(action - LIMITS.a_min) > 1e-9:
        _fail(f"degraded reply is not the full-brake command: {response}")
    if response.get("verify_replaced", False):
        _fail(f"post-hoc verifier had to replace an action: {response}")


def _stream(client, n, t0):
    """Stream ``n`` decisions; returns per-ladder tallies."""
    tallies = {1: 0, 2: 0, 3: 0}
    for i in range(n):
        t = t0 + 0.05 * i
        response = client.decide(
            t,
            {"position": 0.0, "velocity": 20.0},
            reports=[
                {
                    "vehicle": 1,
                    "stamp": t - 0.01,
                    "position": 60.0,
                    "velocity": 15.0,
                }
            ],
        )
        _check_safe(response)
        tallies[response["ladder"]] += 1
    return tallies


def _sigterm(proc):
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=30.0)
    if code != 0:
        _fail(f"SIGTERM drain exited {code}, expected 0")


def main():
    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    sock = tmp / "serve.sock"

    # Phase 1 — healthy planner: all full answers.
    proc = _start_server(sock)
    try:
        with ServeClient(path=str(sock)) as client:
            tallies = _stream(client, PHASE_DECISIONS, t0=1.0)
        if tallies[1] != PHASE_DECISIONS:
            _fail(f"healthy server degraded: {tallies}")
        _sigterm(proc)
    finally:
        if proc.poll() is None:
            proc.kill()
    print(f"serve-smoke: phase 1 ok — {PHASE_DECISIONS} ladder-1 decisions")

    # Phase 2 — hung planner: every decision answers at the deadline
    # from the shield rung, and the wedged planner is retired each time.
    os.unlink(sock)
    proc = _start_server(
        sock, "--inject-stall-seconds", "0.3", "--deadline-ms", "40"
    )
    try:
        with ServeClient(path=str(sock)) as client:
            tallies = _stream(client, PHASE_DECISIONS, t0=1.0)
            stats = client.stats()
        if tallies[2] != PHASE_DECISIONS:
            _fail(f"hung planner did not degrade to ladder 2: {tallies}")
        if stats["deadline_misses"] != PHASE_DECISIONS:
            _fail(f"deadline misses not counted: {stats}")
        if stats["planner_restarts"] != PHASE_DECISIONS:
            _fail(f"wedged planners not retired: {stats}")
        _sigterm(proc)
    finally:
        if proc.poll() is None:
            proc.kill()
    print(
        f"serve-smoke: phase 2 ok — {PHASE_DECISIONS} hung-planner "
        "decisions, all ladder-2 at the deadline"
    )

    # Phase 3 — SIGKILL mid-stream, restart, keep serving.
    os.unlink(sock)
    proc = _start_server(sock)
    try:
        client = ServeClient(path=str(sock))
        tallies = _stream(client, PHASE_DECISIONS, t0=1.0)
        if tallies[1] != PHASE_DECISIONS:
            _fail(f"pre-kill stream degraded: {tallies}")
        proc.kill()
        proc.wait(timeout=30.0)
        try:
            _stream(client, 1, t0=10.0)
        except ServeError:
            pass  # exactly right: the client knows it got nothing
        else:
            _fail("client got a reply from a SIGKILLed server")
        client.close()
    finally:
        if proc.poll() is None:
            proc.kill()
    print("serve-smoke: phase 3 ok — SIGKILL surfaced as ServeError")

    os.unlink(sock)
    proc = _start_server(sock)
    try:
        with ServeClient(path=str(sock)) as client:
            tallies = _stream(client, PHASE_DECISIONS, t0=1.0)
            stats = client.stats()
        if tallies[1] != PHASE_DECISIONS:
            _fail(f"restarted server degraded: {tallies}")
        if stats["offered"] != PHASE_DECISIONS:
            _fail(f"restarted server accounting off: {stats}")
        if stats["offered"] != (
            stats["served"] + stats["degraded"] + stats["shed"]
        ):
            _fail(f"accounting invariant violated: {stats}")
        if stats["verify_replaced"] != 0:
            _fail(f"verifier replacements on restarted server: {stats}")
        _sigterm(proc)
    finally:
        if proc.poll() is None:
            proc.kill()
    print(
        f"serve-smoke: phase 4 ok — restarted server served "
        f"{PHASE_DECISIONS} decisions with exact accounting"
    )
    print("serve-smoke: all phases passed (every reply ladder-safe)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
