#!/usr/bin/env python
"""End-to-end durability smoke test for the campaign layer.

Exercises the crash-recovery contract from the outside, through the
``repro-campaign`` CLI only:

1. run a small campaign uninterrupted (the reference),
2. start the same campaign in a second directory and ``SIGKILL`` the
   process the moment its first chunk is journaled,
3. confirm the killed campaign is unfinished, resume it, and require
   the resumed ``aggregate.json`` to be **byte-identical** to the
   reference's,
4. ``verify`` both directories,
5. tamper with the killed campaign's manifest and require ``resume``
   to refuse with the fingerprint-mismatch exit code.

Run via ``make campaign-smoke``.  Exits 0 on success, 1 on any
violated expectation.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CLI = [sys.executable, "-m", "repro.campaign"]

#: Exit codes mirrored from repro.campaign.cli.
EXIT_OK = 0
EXIT_ERROR = 2

#: How long to wait for the victim run's first journaled chunk.
FIRST_CHUNK_TIMEOUT = 120.0


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _cli(*args, expect=EXIT_OK):
    proc = subprocess.run(
        CLI + list(args),
        env=_env(),
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != expect:
        _fail(
            f"repro-campaign {' '.join(args)} exited {proc.returncode}, "
            f"expected {expect}\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    return proc


def _fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _write_manifest(path, n_sims):
    manifest = {
        "schema_version": "1.0",
        "name": "durability-smoke",
        "scenario": {"kind": "left_turn"},
        "comm": {
            "sensor_noise": 0.3,
            "faults": [{"kind": "independent_loss", "probability": 0.2}],
        },
        "planner": {"kind": "constant", "acceleration": 2.0},
        "config": {"max_time": 10.0},
        "estimator": "filtered",
        "n_sims": n_sims,
        "seed": 42,
        "chunk_size": max(2, n_sims // 8),
    }
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return manifest


def _kill_after_first_chunk(manifest_path, directory):
    """Start a run and SIGKILL it once one chunk_completed is journaled."""
    victim = subprocess.Popen(
        CLI + ["run", "--manifest", str(manifest_path), "--dir", str(directory)],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    journal = directory / "journal.jsonl"
    deadline = time.monotonic() + FIRST_CHUNK_TIMEOUT
    try:
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                _fail(
                    "victim run finished before it could be killed — "
                    "increase --sims to slow it down"
                )
            if journal.exists() and b'"type":"chunk_completed"' in journal.read_bytes():
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
                return
            time.sleep(0.002)
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30)
    _fail("victim run never journaled a chunk_completed record")


def _status(directory):
    proc = _cli("status", "--dir", str(directory), "--json")
    return json.loads(proc.stdout)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sims", type=int, default=24, help="episodes per campaign"
    )
    parser.add_argument(
        "--workdir", help="keep artifacts here instead of a temp dir"
    )
    args = parser.parse_args()

    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        cleanup = False
    else:
        workdir = Path(tempfile.mkdtemp(prefix="campaign-smoke-"))
        cleanup = True

    try:
        manifest_path = workdir / "manifest.json"
        _write_manifest(manifest_path, args.sims)
        reference = workdir / "reference"
        crashed = workdir / "crashed"

        print("1/5 reference run (uninterrupted)")
        _cli("run", "--manifest", str(manifest_path), "--dir", str(reference))

        print("2/5 victim run, SIGKILLed after its first journaled chunk")
        _kill_after_first_chunk(manifest_path, crashed)
        status = _status(crashed)
        if status["finished"]:
            _fail("killed campaign reports finished=True")
        if status["completed_chunks"] >= status["n_chunks"]:
            _fail("kill landed after every chunk completed; nothing to resume")
        print(
            f"    killed at {status['completed_chunks']}/"
            f"{status['n_chunks']} chunks"
        )

        print("3/5 resume to completion")
        _cli("resume", "--dir", str(crashed))

        reference_bytes = (reference / "aggregate.json").read_bytes()
        resumed_bytes = (crashed / "aggregate.json").read_bytes()
        if reference_bytes != resumed_bytes:
            _fail("resumed aggregate.json differs from the reference bytes")
        if _status(reference)["fingerprint"] != _status(crashed)["fingerprint"]:
            _fail("campaign fingerprints diverged")
        print(
            f"    aggregate bit-identical "
            f"({len(resumed_bytes)} bytes, fingerprint "
            f"{_status(crashed)['fingerprint'][:12]}...)"
        )

        print("4/5 verify both campaign directories")
        _cli("verify", "--dir", str(reference))
        _cli("verify", "--dir", str(crashed))

        print("5/5 resume refuses a tampered manifest")
        manifest = json.loads(manifest_path.read_text())
        manifest["seed"] += 1
        (crashed / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        proc = _cli("resume", "--dir", str(crashed), expect=EXIT_ERROR)
        if "fingerprint" not in proc.stderr:
            _fail(f"expected a fingerprint refusal, got: {proc.stderr}")

        print("campaign smoke: OK")
        return 0
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
