#!/usr/bin/env python
"""End-to-end chaos smoke test for the shard layer.

Exercises the kill-anywhere contract from the outside, through the
``repro-campaign`` CLI only:

1. run a small campaign sequentially (the reference),
2. shard the same campaign across three worker processes and
   ``SIGKILL`` one worker the moment its first chunk is journaled,
3. ``SIGKILL`` the coordinator itself once a few more chunks land,
4. ``shard-resume`` with a fresh fleet and require the merged
   ``aggregate.json`` to be **byte-identical** to the sequential
   reference's,
5. ``verify`` both directories,
6. require ``shard-status`` to account for both coordinator epochs and
   every worker's exit.

Run via ``make shard-smoke``.  Exits 0 on success, 1 on any violated
expectation.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CLI = [sys.executable, "-m", "repro.campaign"]

#: Exit codes mirrored from repro.campaign.cli.
EXIT_OK = 0

#: How long to wait for each journal milestone.
MILESTONE_TIMEOUT = 180.0

#: Short lease so the murdered worker's chunks re-dispatch quickly.
SHARD_FLAGS = [
    "--workers", "3",
    "--lease-ttl", "5",
    "--heartbeat-interval", "0.2",
]


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _cli(*args, expect=EXIT_OK):
    proc = subprocess.run(
        CLI + list(args),
        env=_env(),
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != expect:
        _fail(
            f"repro-campaign {' '.join(args)} exited {proc.returncode}, "
            f"expected {expect}\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    return proc


def _fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _write_manifest(path, n_sims):
    manifest = {
        "schema_version": "1.0",
        "name": "shard-smoke",
        "scenario": {"kind": "left_turn"},
        "comm": {
            "sensor_noise": 0.3,
            "faults": [{"kind": "independent_loss", "probability": 0.2}],
        },
        "planner": {"kind": "constant", "acceleration": 2.0},
        "config": {"max_time": 10.0},
        "estimator": "filtered",
        "n_sims": n_sims,
        "seed": 42,
        "chunk_size": 2,
    }
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return manifest


def _journal_records(directory):
    """Best-effort journal parse: checksums ignored, torn tail dropped."""
    journal = directory / "journal.jsonl"
    if not journal.exists():
        return []
    records = []
    for line in journal.read_bytes().splitlines():
        try:
            records.append(json.loads(line))
        except ValueError:
            break  # torn tail
    return records


def _count(records, record_type):
    return sum(1 for r in records if r.get("type") == record_type)


def _wait_for(directory, predicate, what, coordinator=None):
    deadline = time.monotonic() + MILESTONE_TIMEOUT
    while time.monotonic() < deadline:
        if coordinator is not None and coordinator.poll() is not None:
            _fail(
                f"coordinator finished before '{what}' — increase --sims "
                "to slow the campaign down"
            )
        records = _journal_records(directory)
        if predicate(records):
            return records
        time.sleep(0.002)
    _fail(f"timed out waiting for {what}")


def _shard_status(directory):
    proc = _cli("shard-status", "--dir", str(directory), "--json")
    return json.loads(proc.stdout)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sims", type=int, default=24, help="episodes per campaign"
    )
    parser.add_argument(
        "--workdir", help="keep artifacts here instead of a temp dir"
    )
    args = parser.parse_args()

    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        cleanup = False
    else:
        workdir = Path(tempfile.mkdtemp(prefix="shard-smoke-"))
        cleanup = True

    try:
        manifest_path = workdir / "manifest.json"
        _write_manifest(manifest_path, args.sims)
        reference = workdir / "reference"
        sharded = workdir / "sharded"

        print("1/6 sequential reference run")
        _cli("run", "--manifest", str(manifest_path), "--dir", str(reference))

        print("2/6 shard-run with 3 workers; SIGKILL one worker mid-run")
        coordinator = subprocess.Popen(
            CLI
            + ["shard-run", "--manifest", str(manifest_path),
               "--dir", str(sharded)]
            + SHARD_FLAGS,
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            records = _wait_for(
                sharded,
                lambda r: _count(r, "worker_spawned") >= 3
                and _count(r, "chunk_completed") >= 1,
                "three workers and a first completed chunk",
                coordinator=coordinator,
            )
            victim_pid = next(
                r["pid"] for r in records if r.get("type") == "worker_spawned"
            )
            os.kill(victim_pid, signal.SIGKILL)
            print(f"    SIGKILLed worker pid {victim_pid}")

            print("3/6 SIGKILL the coordinator itself")
            done_at_kill = _count(
                _wait_for(
                    sharded,
                    lambda r: _count(r, "chunk_completed") >= 3,
                    "three completed chunks",
                    coordinator=coordinator,
                ),
                "chunk_completed",
            )
            coordinator.send_signal(signal.SIGKILL)
            coordinator.wait(timeout=30)
            print(f"    coordinator killed at >= {done_at_kill} chunks")
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.wait(timeout=30)

        print("4/6 shard-resume with a fresh fleet")
        status = _shard_status(sharded)
        if status["finished"]:
            _fail("killed shard campaign reports finished=True")
        _cli("shard-resume", "--dir", str(sharded), *SHARD_FLAGS)

        print("5/6 byte-compare aggregates and verify both directories")
        reference_bytes = (reference / "aggregate.json").read_bytes()
        sharded_bytes = (sharded / "aggregate.json").read_bytes()
        if reference_bytes != sharded_bytes:
            _fail(
                "sharded aggregate.json differs from the sequential "
                "reference bytes"
            )
        _cli("verify", "--dir", str(reference))
        _cli("verify", "--dir", str(sharded))
        print(f"    aggregate bit-identical ({len(sharded_bytes)} bytes)")

        print("6/6 shard-status accounts for the chaos")
        status = _shard_status(sharded)
        if not status["finished"]:
            _fail("resumed shard campaign reports finished=False")
        if status["coordinator_epochs"] != 2:
            _fail(
                f"expected 2 coordinator epochs, got "
                f"{status['coordinator_epochs']}"
            )
        if status["completed_chunks"] * 2 < args.sims:
            _fail("shard-status undercounts completed chunks")
        alive = [w for w, e in status["workers"].items() if e["alive"]]
        if alive:
            _fail(f"workers still marked alive after completion: {alive}")
        print(
            f"    epochs=2, {status['completed_chunks']} chunks, "
            f"{len(status['workers'])} workers all exited, "
            f"{status['lease_expirations']} lease expirations, "
            f"{status['duplicate_completions']} duplicate completions"
        )

        print("shard smoke: OK")
        return 0
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
