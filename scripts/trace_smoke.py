#!/usr/bin/env python
"""End-to-end observability smoke test (``make trace-smoke``).

Two phases:

1. **Trace validity.** Record one fully traced storm episode through
   :func:`repro.obs.cli.record_trace`, require the Chrome trace-event
   export to validate (Perfetto-loadable) and to contain the promised
   content — per-step engine spans, shield-switch instants, filter
   replay events, channel counters.  Then run a small traced campaign
   and require ``repro-campaign status`` to surface the operational
   fields (per-chunk retries, elapsed summary) plus the ``metrics.json``
   sidecar, while the traced ``aggregate.json`` stays byte-identical to
   an untraced reference.

2. **Disabled-observer overhead gate.** Time a micro batch of episodes
   on the default (``observer=None``) path against the same batch with
   the shared ``NULL_OBSERVER`` passed explicitly — both exercise the
   disabled instrumentation — and fail if the slower path exceeds the
   faster by more than ``REPRO_TRACE_TOL`` (default 3%) plus a small
   absolute floor.  The measured timings are recorded as
   ``BENCH_trace_smoke.json`` via the bench-record writer so later PRs
   can compare.

Exits 0 on success, 1 on any violated expectation.
"""

import json
import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign.manifest import CampaignManifest  # noqa: E402
from repro.campaign.runner import (  # noqa: E402
    AGGREGATE_FILE,
    METRICS_FILE,
    CampaignRunner,
    campaign_status,
)
from repro.comm.disturbance import no_disturbance  # noqa: E402
from repro.obs.bench_record import write_bench_documents  # noqa: E402
from repro.obs.cli import record_trace  # noqa: E402
from repro.obs.export import validate_chrome_trace  # noqa: E402
from repro.obs.observer import NULL_OBSERVER, Observer  # noqa: E402
from repro.obs.trace import perf_now  # noqa: E402
from repro.planners.constant import ConstantPlanner  # noqa: E402
from repro.scenarios.left_turn.scenario import LeftTurnScenario  # noqa: E402
from repro.sensing.noise import NoiseBounds  # noqa: E402
from repro.sim.engine import (  # noqa: E402
    CommSetup,
    SimulationConfig,
    SimulationEngine,
)
from repro.sim.runner import (  # noqa: E402
    EstimatorKind,
    make_estimator_factory,
)
from repro.utils.rng import RngStream  # noqa: E402

#: Relative tolerance of the overhead gate (widen on noisy machines).
TOLERANCE = float(os.environ.get("REPRO_TRACE_TOL", "0.03"))

#: Absolute floor [s] so micro-jitter cannot fail a sub-millisecond gap.
FLOOR_SECONDS = 0.05

#: Episodes per timing repetition and repetitions per path.
MICRO_EPISODES = 8
REPEATS = 3

_failures = []


def _check(condition, message):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


# ---------------------------------------------------------------------------
# Phase 1: trace validity + campaign operational surface
# ---------------------------------------------------------------------------
def phase_trace(workdir: Path) -> None:
    print("phase 1: trace validity")
    report = record_trace(
        workdir / "trace", scenario="left_turn", faults="storm", seed=3
    )
    document = json.loads(report["chrome"].read_text(encoding="utf-8"))
    problems = validate_chrome_trace(document)
    _check(problems == [], f"chrome trace validates ({report['chrome']})")
    for problem in problems:
        print(f"    problem: {problem}")

    tracer = report["observer"].tracer
    _check(
        len(tracer.events_named("engine.step")) > 10,
        "per-step engine spans recorded",
    )
    _check(
        bool(tracer.events_named("shield.engage")),
        "shield-switch instants recorded",
    )
    _check(
        bool(tracer.events_named("filter.replay")),
        "filter replay instants recorded",
    )
    metrics = report["observer"].metrics
    _check(
        metrics.counter_value("channel.sent", channel="veh1") > 0,
        "channel counters recorded",
    )

    manifest = CampaignManifest(
        name="trace-smoke",
        scenario={"kind": "left_turn"},
        comm={
            "sensor_noise": 0.3,
            "faults": [{"kind": "independent_loss", "probability": 0.2}],
        },
        planner={"kind": "constant", "acceleration": 2.0},
        n_sims=4,
        seed=11,
        chunk_size=2,
        config={"max_time": 8.0},
    )
    plain_dir = workdir / "campaign-plain"
    traced_dir = workdir / "campaign-traced"
    CampaignRunner(manifest, plain_dir, n_workers=1).run()
    CampaignRunner(
        manifest, traced_dir, n_workers=1, observer=Observer()
    ).run()
    _check(
        (traced_dir / AGGREGATE_FILE).read_bytes()
        == (plain_dir / AGGREGATE_FILE).read_bytes(),
        "traced campaign aggregate is byte-identical to untraced",
    )
    status = campaign_status(traced_dir)
    _check(
        "chunk_retries" in status and "total_retries" in status,
        "status surfaces retry counts",
    )
    elapsed = status.get("elapsed")
    _check(
        isinstance(elapsed, dict) and elapsed.get("chunks_timed") == 2,
        "status surfaces the elapsed summary",
    )
    _check(
        (traced_dir / METRICS_FILE).exists(),
        "metrics.json sidecar written",
    )


# ---------------------------------------------------------------------------
# Phase 2: disabled-observer overhead gate
# ---------------------------------------------------------------------------
def _micro_batch(observer) -> None:
    scenario = LeftTurnScenario()
    comm = CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=no_disturbance(),
        sensor_bounds=NoiseBounds.uniform_all(0.5),
    )
    engine = SimulationEngine(
        scenario, comm, SimulationConfig(max_time=6.0,
                                         record_trajectories=False)
    )
    factory = make_estimator_factory(
        EstimatorKind.FILTERED, engine, observer=observer
    )
    for seed in range(MICRO_EPISODES):
        engine.run(
            ConstantPlanner(2.0), factory, RngStream(seed), observer=observer
        )


def _best_of(repeats, observer) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = perf_now()
        _micro_batch(observer)
        best = min(best, perf_now() - started)
    return best


def phase_overhead(workdir: Path) -> None:
    print("phase 2: disabled-observer overhead gate")
    _micro_batch(None)  # warm-up: imports, caches, allocator
    baseline = _best_of(REPEATS, None)
    null_path = _best_of(REPEATS, NULL_OBSERVER)
    slower, faster = max(baseline, null_path), min(baseline, null_path)
    budget = faster * (1.0 + TOLERANCE) + FLOOR_SECONDS
    overhead = (slower / faster - 1.0) if faster > 0 else 0.0
    print(
        f"  baseline(default)={baseline:.4f}s  "
        f"explicit-null={null_path:.4f}s  "
        f"spread={overhead:.2%} (tolerance {TOLERANCE:.0%} "
        f"+ {FLOOR_SECONDS}s floor)"
    )
    _check(
        slower <= budget,
        "disabled-observer paths agree within the overhead budget",
    )
    paths = write_bench_documents(
        [
            {
                "nodeid": "scripts/trace_smoke.py::baseline_default",
                "outcome": "passed",
                "duration_seconds": round(baseline, 6),
            },
            {
                "nodeid": "scripts/trace_smoke.py::explicit_null_observer",
                "outcome": "passed",
                "duration_seconds": round(null_path, 6),
            },
        ],
        workdir,
        context={
            "micro_episodes": MICRO_EPISODES,
            "repeats": REPEATS,
            "tolerance": TOLERANCE,
        },
    )
    for path in paths:
        print(f"  recorded {path}")


def main() -> int:
    out_dir = os.environ.get("REPRO_TRACE_SMOKE_DIR")
    if out_dir:
        workdir = Path(out_dir)
        workdir.mkdir(parents=True, exist_ok=True)
        phase_trace(workdir)
        phase_overhead(workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="trace-smoke-") as tmp:
            workdir = Path(tmp)
            phase_trace(workdir)
            phase_overhead(workdir)
    if _failures:
        print(f"trace-smoke: {len(_failures)} failure(s)")
        return 1
    print("trace-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
