#!/usr/bin/env python
"""Compare freshly recorded ``BENCH_<area>.json`` files to baselines.

CI's bench-record job runs ``make bench-record`` into a scratch
directory and then calls this script to compare the recording against
the baselines checked into ``benchmarks/``.  The comparison is
structural, not a latency gate (shared CI runners are far too noisy
for absolute wall-time thresholds — latency SLOs live in
``repro-obs slo check`` over the *extras*, not the durations):

* every benchmark in a baselined area must have run (node-id sets
  match exactly — a silently skipped or deleted benchmark fails);
* every recorded outcome must be ``passed``;
* duration ratios recorded/baseline are printed per node id so drift
  is visible in the job log without failing the build.

Usage::

    python scripts/bench_compare.py --recorded <dir> [--baseline benchmarks]

Exit codes: 0 all baselined areas match; 1 structural mismatch or a
non-passed outcome; 2 unreadable documents.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.obs.bench_record import load_bench_document  # noqa: E402

EXIT_OK = 0
EXIT_MISMATCH = 1
EXIT_ERROR = 2


def _entries_by_nodeid(document: dict) -> Dict[str, dict]:
    return {
        entry["nodeid"]: entry
        for entry in document["benchmarks"]
        if isinstance(entry, dict) and "nodeid" in entry
    }


def compare_area(recorded: dict, baseline: dict) -> List[str]:
    """Problems comparing one recorded area against its baseline."""
    problems: List[str] = []
    area = baseline.get("area", "?")
    rec = _entries_by_nodeid(recorded)
    base = _entries_by_nodeid(baseline)
    missing = sorted(set(base) - set(rec))
    extra = sorted(set(rec) - set(base))
    for nodeid in missing:
        problems.append(f"{area}: baselined benchmark did not run: {nodeid}")
    for nodeid in extra:
        problems.append(
            f"{area}: new benchmark absent from the baseline "
            f"(re-record it): {nodeid}"
        )
    for nodeid in sorted(set(rec) & set(base)):
        entry = rec[nodeid]
        if entry.get("outcome") != "passed":
            problems.append(
                f"{area}: {nodeid} outcome {entry.get('outcome')!r}"
            )
            continue
        base_dur = float(base[nodeid].get("duration_seconds", 0.0))
        rec_dur = float(entry.get("duration_seconds", 0.0))
        if base_dur > 0.0:
            ratio = rec_dur / base_dur
            print(
                f"  {nodeid}: {rec_dur:.2f}s vs baseline "
                f"{base_dur:.2f}s (x{ratio:.2f})"
            )
        else:
            print(f"  {nodeid}: {rec_dur:.2f}s (no baseline duration)")
    return problems


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="Compare recorded BENCH_*.json files to baselines."
    )
    parser.add_argument(
        "--recorded",
        required=True,
        help="directory holding the freshly recorded BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "benchmarks"),
        help="directory holding the checked-in baselines",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline)
    recorded_dir = Path(args.recorded)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {baseline_dir}", file=sys.stderr)
        return EXIT_ERROR

    problems: List[str] = []
    compared = 0
    try:
        for baseline_path in baselines:
            recorded_path = recorded_dir / baseline_path.name
            if not recorded_path.exists():
                print(f"{baseline_path.name}: not recorded this run; skipping")
                continue
            print(f"{baseline_path.name}:")
            problems.extend(
                compare_area(
                    load_bench_document(recorded_path),
                    load_bench_document(baseline_path),
                )
            )
            compared += 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if problems:
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        return EXIT_MISMATCH
    print(f"bench-compare: {compared} area(s) match their baselines")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
