"""Train a planner, save it, reload it, and verify behavioural identity.

Demonstrates the planner-persistence workflow: a trained
:class:`~repro.planners.factory.TrainedPlannerSpec` is written to disk
(npz weights + JSON metadata) and rebuilt without retraining, producing
bit-identical decisions.  Also prints the training curves so the
imitation quality is visible.

Run: ``python examples/train_and_save_planner.py [--out DIR]``
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import LeftTurnScenario, train_left_turn_planner
from repro.planners.factory import TrainedPlannerSpec, build_expert
from repro.planners.nn_planner import planner_features
from repro.planners.training_data import DemonstrationConfig
from repro.utils.intervals import Interval


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()
    out = args.out or Path(tempfile.mkdtemp()) / "cons_planner"

    scenario = LeftTurnScenario()
    print("training the conservative planner...")
    spec = train_left_turn_planner(
        "conservative",
        scenario.geometry,
        scenario.ego_limits,
        scenario.oncoming_limits,
        seed=11,
        demo_config=DemonstrationConfig(n_random=3000, n_rollouts=50),
        epochs=150,
    )
    history = spec.history
    print(
        f"trained {history.epochs_run} epochs "
        f"(early stop: {history.stopped_early}); "
        f"best validation loss {history.best_val_loss:.4f} "
        f"at epoch {history.best_epoch}"
    )
    stride = max(1, history.epochs_run // 10)
    for epoch in range(0, history.epochs_run, stride):
        bar = "#" * max(1, int(40 * min(history.train_loss[epoch], 2.0) / 2.0))
        print(f"  epoch {epoch:3d}  train={history.train_loss[epoch]:8.4f} {bar}")

    directory = spec.save(out)
    print(f"\nsaved to {directory}")

    expert = build_expert(
        "conservative",
        scenario.geometry,
        scenario.ego_limits,
        scenario.oncoming_limits,
    )
    restored = TrainedPlannerSpec.load(directory, expert)

    # Behavioural identity on a probe grid.
    original = spec.natural_planner(scenario.ego_limits)
    reloaded = restored.natural_planner(scenario.ego_limits)
    max_diff = 0.0
    for t in (0.0, 2.0, 4.0):
        for p0 in (-30.0, -10.0, 0.0):
            for v0 in (2.0, 8.0, 14.0):
                window = Interval(t + 2.0, t + 6.0)
                a = original.plan_from_window(t, p0, v0, window)
                b = reloaded.plan_from_window(t, p0, v0, window)
                max_diff = max(max_diff, abs(a - b))
    print(f"max decision difference after reload: {max_diff:.2e}")
    assert max_diff == 0.0

    features = planner_features(0.0, -20.0, 10.0, Interval(3.0, 6.0))
    scaled = restored.scaler.transform(features)
    print(f"probe features {np.round(features, 2)} -> scaled {np.round(scaled, 2)}")
    print("reloaded planner is bit-identical to the trained one.")


if __name__ == "__main__":
    main()
