"""The paper's case study, end to end, at example scale.

Reproduces the Table I / Table II comparison — pure NN planner versus
basic and ultimate compound planners, conservative and aggressive
families — on a reduced batch, and narrates one individual crossing so
the monitor's interventions are visible step by step.

Run: ``python examples/unprotected_left_turn.py [--sims N]``
"""

import argparse

from repro.experiments.config import SETTING_NAMES, ExperimentConfig
from repro.experiments.harness import build_trio, run_setting, trained_spec
from repro.experiments.reporting import render_table_rows
from repro.planners.training_data import DemonstrationConfig
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.runner import BatchRunner, EstimatorKind


def narrate_one_crossing(config: ExperimentConfig) -> None:
    """Run a single ultimate-compound episode and print the story."""
    scenario = config.scenario()
    spec = trained_spec("aggressive", config)
    trio = build_trio(spec, scenario, config)
    engine = SimulationEngine(
        scenario,
        config.comm_setting("messages_delayed"),
        SimulationConfig(max_time=30.0),
    )
    result = BatchRunner(engine, EstimatorKind.FILTERED).run_one(
        trio.ultimate, seed=5
    )

    print("\n--- one ultimate-compound crossing, narrated ---")
    ego = result.trajectories[0]
    oncoming = result.trajectories[1]
    for i in range(0, len(ego), 20):  # print every second
        p = ego[i]
        q = oncoming.at_or_before(p.time)
        phase = (
            "in the unsafe area"
            if scenario.geometry.ego_inside(p.position)
            else (
                "past the area"
                if scenario.geometry.ego_cleared(p.position)
                else "approaching"
            )
        )
        print(
            f"t={p.time:5.2f}s  ego at {p.position:7.2f} m "
            f"({p.velocity:5.2f} m/s, cmd {p.acceleration:+5.2f}) "
            f"[{phase}]   oncoming at {q.position:6.2f} m"
        )
    print(
        f"outcome: {result.outcome.value}, reaching time "
        f"{result.reaching_time}s, emergency steps "
        f"{result.emergency_steps}/{result.steps}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=60)
    args = parser.parse_args()

    config = ExperimentConfig(
        n_sims=args.sims,
        demo_config=DemonstrationConfig(n_random=3000, n_rollouts=50),
        epochs=150,
    )

    for style, title in (
        ("conservative", "Conservative family (Table I shape)"),
        ("aggressive", "Aggressive family (Table II shape)"),
    ):
        rows = []
        for setting in SETTING_NAMES:
            rows.extend(run_setting(style, setting, config))
        print()
        print(render_table_rows(rows, title))

    narrate_one_crossing(config)


if __name__ == "__main__":
    main()
