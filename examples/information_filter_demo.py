"""The information filter at work (Figure 6a style).

Simulates the oncoming vehicle under delayed/dropped messages and noisy
sensing, runs the replaying Kalman filter, and prints one velocity trace
(true / measured / filtered) plus the RMSE reduction over a batch of
trajectories.  Also shows the message-replay effect directly: the
estimate error before and after a delayed message arrives.

Run: ``python examples/information_filter_demo.py``
"""

from repro import NoiseBounds, VehicleState
from repro.comm.message import Message
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure6 import render_filter_study, run_filter_study
from repro.filtering.kalman import KalmanFilter
from repro.filtering.replay import ReplayKalmanFilter
from repro.sensing.sensor import SensorReading
from repro.utils.rng import RngStream


def replay_demo() -> None:
    """Show one delayed message snapping the estimate back to truth."""
    print("--- message replay, isolated ---")
    bounds = NoiseBounds.uniform_all(2.0)
    rkf = ReplayKalmanFilter(KalmanFilter(0.1, bounds))
    rng = RngStream(3)

    # Ground truth: constant -12 m/s from 60 m.
    def truth(t):
        return 60.0 - 12.0 * t

    for i in range(10):
        t = i * 0.1
        rkf.on_sensor_reading(
            SensorReading(
                target=1,
                time=t,
                position=truth(t) + float(rng.uniform(-2, 2)),
                velocity=-12.0 + float(rng.uniform(-2, 2)),
                acceleration=float(rng.uniform(-2, 2)),
            )
        )
    now = 0.9
    before = rkf.estimate_at(now)
    err_before = abs(before.position - truth(now))

    # A message stamped 0.5 s ago arrives (0.4 s delivery delay).
    stamp = 0.5
    rkf.on_message(
        Message(
            sender=1,
            stamp=stamp,
            state=VehicleState(
                position=truth(stamp), velocity=-12.0, acceleration=0.0
            ),
        ),
        now,
    )
    after = rkf.estimate_at(now)
    err_after = abs(after.position - truth(now))
    print(
        f"position error at t={now}s: {err_before:.3f} m before replay, "
        f"{err_after:.3f} m after the delayed message replays "
        f"({rkf.replay_count} replay)"
    )
    assert err_after <= err_before


def main() -> None:
    replay_demo()
    print("\n--- figure 6a study (200 sampled trajectories) ---")
    study = run_filter_study(ExperimentConfig(), n_trajectories=200)
    print(render_filter_study(study))


if __name__ == "__main__":
    main()
