"""Quickstart: wrap an NN planner in the safety-guaranteed framework.

Trains a small aggressive NN planner for the unprotected left turn,
wraps it in the compound planner (runtime monitor + emergency planner +
information filter), and runs a handful of simulations under lossy
communication — demonstrating that the wrapper turns an unsafe planner
into a safe one at little efficiency cost.

Run: ``python examples/quickstart.py``
"""

from repro import (
    AggregateStats,
    BatchRunner,
    CommSetup,
    CompoundPlanner,
    EstimatorKind,
    LeftTurnScenario,
    NoiseBounds,
    RuntimeMonitor,
    SimulationEngine,
    messages_delayed,
    train_left_turn_planner,
)
from repro.planners.training_data import DemonstrationConfig
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator


def main() -> None:
    scenario = LeftTurnScenario()

    # 1. Any NN-based planner: here, an aggressive one trained by
    #    imitation (fast but unsafe on its own).
    print("training the aggressive NN planner (a few seconds)...")
    spec = train_left_turn_planner(
        "aggressive",
        scenario.geometry,
        scenario.ego_limits,
        scenario.oncoming_limits,
        seed=7,
        demo_config=DemonstrationConfig(n_random=2000, n_rollouts=30),
        epochs=100,
    )

    # 2. The compound planner: monitor + emergency planner around it,
    #    with the aggressive unsafe-set estimate feeding the NN.
    aggressive_windows = PassingWindowEstimator(
        scenario.geometry, scenario.oncoming_limits, aggressive=True
    )
    compound = CompoundPlanner(
        nn_planner=spec.build_planner(aggressive_windows, scenario.ego_limits),
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
    )

    # 3. A disturbed communication environment: messages delayed by
    #    0.25 s and dropped with probability 0.5; noisy sensors.
    engine = SimulationEngine(
        scenario,
        CommSetup(
            dt_m=0.1,
            dt_s=0.1,
            disturbance=messages_delayed(0.25, 0.5),
            sensor_bounds=NoiseBounds.uniform_all(1.0),
        ),
    )

    # 4. Run both planners on identical workloads.
    n = 40
    pure_results = BatchRunner(engine, EstimatorKind.RAW).run_batch(
        spec.natural_planner(scenario.ego_limits), n, seed=1
    )
    compound_results = BatchRunner(engine, EstimatorKind.FILTERED).run_batch(
        compound, n, seed=1
    )

    for label, results in (
        ("pure NN planner      ", pure_results),
        ("compound (shielded)  ", compound_results),
    ):
        stats = AggregateStats.from_results(results)
        print(
            f"{label} safe: {stats.safe_rate:6.1%}   "
            f"mean reaching time: {stats.mean_reaching_time:5.2f}s   "
            f"mean eta: {stats.mean_eta:+.3f}   "
            f"emergency steps: {stats.mean_emergency_frequency:5.1%}"
        )

    compound_stats = AggregateStats.from_results(compound_results)
    assert compound_stats.safe_rate == 1.0, "the safety guarantee must hold"
    print("\nThe compound planner is 100% safe, as the framework guarantees.")


if __name__ == "__main__":
    main()
