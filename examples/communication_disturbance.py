"""How communication disturbance degrades planning (Figure 5 style).

Sweeps the message drop probability and the sensor uncertainty and
prints, for the conservative planner family, the reaching-time and
emergency-frequency series — the qualitative content of the paper's
Figure 5.

Run: ``python examples/communication_disturbance.py [--sims N]``
"""

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure5 import (
    render_sweep,
    sweep_drop,
    sweep_sensor,
)
from repro.planners.training_data import DemonstrationConfig

DROPS = (0.0, 0.3, 0.6, 0.9)
DELTAS = (1.0, 2.2, 3.4, 4.6)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=40)
    args = parser.parse_args()

    config = ExperimentConfig(
        n_sims=args.sims,
        demo_config=DemonstrationConfig(n_random=3000, n_rollouts=50),
        epochs=150,
    )

    print("sweeping message drop probability (delay fixed at 0.25 s)...")
    drop = sweep_drop(config, DROPS)
    print(render_sweep("Fig. 5c/5d", "drop prob", DROPS, drop))

    print("\nsweeping sensor uncertainty (messages always lost)...")
    sensor = sweep_sensor(config, DELTAS)
    print(render_sweep("Fig. 5e/5f", "sensor delta", DELTAS, sensor))

    # The paper's qualitative takeaways, checked live:
    r = drop["reaching_time"]
    assert r["ultimate"][-1] <= r["pure"][-1] + 0.05, (
        "the ultimate compound planner should stay ahead under severe "
        "disturbance"
    )
    print(
        "\nTakeaway: disturbance slows every planner, but the information "
        "filter + aggressive unsafe set keep the ultimate compound planner "
        "ahead of the pure NN planner across the sweep."
    )


if __name__ == "__main__":
    main()
