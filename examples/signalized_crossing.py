"""Signalized intersection: shielding against a deterministic schedule.

A third scenario family: the conflict "window" is the traffic light's
red phase — a schedule known exactly in advance, with no messages or
sensors involved.  The same monitor algebra that guards the left turn
guards the red phase; this example sweeps the light's phase offset and
compares:

* a GLOSA green-wave planner (paces its approach to hit the green);
* a red-light runner (cruises through regardless) — the unsafe baseline;
* the red-light runner wrapped in the compound planner — safe at every
  phase, held at the line by the monitor exactly while the red lasts.

Run: ``python examples/signalized_crossing.py``
"""

from repro import (
    CommSetup,
    CompoundPlanner,
    EstimatorKind,
    Outcome,
    RuntimeMonitor,
    SimulationConfig,
    SimulationEngine,
)
from repro.analysis.text_plot import line_chart
from repro.scenarios.signalized import SignalizedCrossingScenario
from repro.sim.runner import BatchRunner

OFFSETS = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]


def main() -> None:
    base = SignalizedCrossingScenario()
    print(
        f"crossing a {base.light.green:.0f}s-green / "
        f"{base.light.red:.0f}s-red intersection, sweeping the phase "
        f"offset\n"
    )

    series = {"glosa": [], "shielded runner": []}
    violations = 0
    header = f"{'offset':>7} {'glosa':>10} {'runner':>12} {'shielded':>10}"
    print(header)
    print("-" * len(header))
    for offset in OFFSETS:
        scenario = base.with_offset(offset)
        engine = SimulationEngine(
            scenario,
            CommSetup.perfect(),
            SimulationConfig(max_time=40.0, record_trajectories=False),
        )
        runner = BatchRunner(engine, EstimatorKind.RAW)

        glosa = runner.run_one(scenario.green_wave_planner(), seed=0)
        naive = runner.run_one(scenario.red_light_runner(), seed=0)
        shielded = runner.run_one(
            CompoundPlanner(
                nn_planner=scenario.red_light_runner(),
                emergency_planner=scenario.emergency_planner(),
                monitor=RuntimeMonitor(scenario.safety_model()),
                limits=scenario.ego_limits,
            ),
            seed=0,
        )
        assert glosa.outcome is Outcome.REACHED
        assert shielded.outcome is Outcome.REACHED
        if naive.outcome is Outcome.COLLISION:
            violations += 1
        series["glosa"].append(glosa.reaching_time)
        series["shielded runner"].append(shielded.reaching_time)
        naive_cell = (
            f"{naive.reaching_time:.2f}s"
            if naive.outcome is Outcome.REACHED
            else "RED VIOLATION"
        )
        print(
            f"{offset:>7.1f} {glosa.reaching_time:>9.2f}s "
            f"{naive_cell:>12} {shielded.reaching_time:>9.2f}s"
        )

    print()
    print(
        line_chart(
            OFFSETS,
            series,
            width=52,
            height=10,
            title="reaching time vs light phase offset",
            y_label="seconds",
        )
    )
    print(
        f"\nThe naive runner violated the red at {violations}/{len(OFFSETS)} "
        f"offsets; both the GLOSA planner and the shielded runner crossed "
        f"safely at every phase."
    )


if __name__ == "__main__":
    main()
