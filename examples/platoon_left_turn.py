"""Left turn against a platoon of oncoming vehicles (extension).

The paper's system model is n-vehicle but its case study uses one
oncoming car; this example runs the framework against a platoon of
three, using the gap-acceptance expert: the ego either beats the whole
platoon, threads a gap between merged conflict windows, or waits out
the last vehicle — and the disjunctive runtime monitor guarantees
safety against *every* platoon member simultaneously.

Run: ``python examples/platoon_left_turn.py [--sims N] [--vehicles K]``
"""

import argparse

from repro import (
    AggregateStats,
    BatchRunner,
    CommSetup,
    CompoundPlanner,
    EstimatorKind,
    NoiseBounds,
    RuntimeMonitor,
    SimulationConfig,
    SimulationEngine,
    messages_delayed,
)
from repro.analysis.batch import summarize_batch
from repro.scenarios.left_turn.multi import MultiOncomingLeftTurnScenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=40)
    parser.add_argument("--vehicles", type=int, default=3)
    args = parser.parse_args()

    scenario = MultiOncomingLeftTurnScenario(n_oncoming=args.vehicles)
    engine = SimulationEngine(
        scenario,
        CommSetup(
            dt_m=0.1,
            dt_s=0.1,
            disturbance=messages_delayed(0.25, 0.3),
            sensor_bounds=NoiseBounds.uniform_all(1.0),
        ),
        SimulationConfig(max_time=40.0),
    )

    shielded_aggressive = CompoundPlanner(
        nn_planner=scenario.gap_expert(aggressive=True),
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
    )

    rows = (
        ("pure aggressive gap expert", scenario.gap_expert(aggressive=True),
         EstimatorKind.RAW),
        ("shielded aggressive       ", shielded_aggressive,
         EstimatorKind.FILTERED),
    )
    print(
        f"unprotected left turn against {args.vehicles} oncoming vehicles "
        f"({args.sims} simulations each)\n"
    )
    batches = {}
    for label, planner, kind in rows:
        results = BatchRunner(engine, kind).run_batch(
            planner, args.sims, seed=29
        )
        batches[label] = results
        stats = AggregateStats.from_results(results)
        print(
            f"{label} safe: {stats.safe_rate:6.1%}  reaching: "
            f"{stats.mean_reaching_time:6.2f}s  eta: {stats.mean_eta:+.3f}  "
            f"emergency: {stats.mean_emergency_frequency:5.1%}"
        )

    print("\nshielded batch, in depth:")
    print(summarize_batch(batches["shielded aggressive       "]).render())

    shielded_stats = AggregateStats.from_results(
        batches["shielded aggressive       "]
    )
    assert shielded_stats.safe_rate == 1.0
    print(
        "\nThe disjunctive monitor protects against every platoon member "
        "at once; gap acceptance preserves efficiency."
    )


if __name__ == "__main__":
    main()
