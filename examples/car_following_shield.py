"""The framework on a second scenario: shielding a tailgater.

The paper introduces the unsafe set with a car-following example
(``|p_0 - p_i| < p_gap``); this example instantiates the full framework
on that scenario and compares three ego planners behind a randomly
driven leader:

* a classic IDM planner (model-based baseline: smooth and safe);
* a naive gap-chaser (fast, tailgates, violates the safety gap);
* the same gap-chaser wrapped in the compound planner.

The wrapped tailgater keeps the chaser's speed where it is safe and
brakes exactly when the braking-envelope monitor demands — safe *and*
faster than IDM.

Run: ``python examples/car_following_shield.py [--sims N]``
"""

import argparse

from repro import (
    AggregateStats,
    BatchRunner,
    CommSetup,
    CompoundPlanner,
    EstimatorKind,
    NoiseBounds,
    RuntimeMonitor,
    SimulationConfig,
    SimulationEngine,
    messages_delayed,
)
from repro.planners.idm import GapChaserPlanner, IDMPlanner
from repro.scenarios.car_following import CarFollowingScenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=50)
    args = parser.parse_args()

    scenario = CarFollowingScenario()
    engine = SimulationEngine(
        scenario,
        CommSetup(
            dt_m=0.1,
            dt_s=0.1,
            disturbance=messages_delayed(0.25, 0.3),
            sensor_bounds=NoiseBounds.uniform_all(0.5),
        ),
        SimulationConfig(max_time=30.0, record_trajectories=False),
    )

    shielded = CompoundPlanner(
        nn_planner=GapChaserPlanner(scenario.ego_limits),
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
    )

    rows = (
        ("IDM (model-based)   ", IDMPlanner(scenario.ego_limits),
         EstimatorKind.RAW),
        ("gap chaser (unsafe) ", GapChaserPlanner(scenario.ego_limits),
         EstimatorKind.RAW),
        ("gap chaser shielded ", shielded, EstimatorKind.FILTERED),
    )
    print(
        f"car following: keep a {scenario.p_gap:.0f} m gap while covering "
        f"{scenario.travel_distance:.0f} m behind a wandering leader\n"
    )
    stats_by_label = {}
    for label, planner, kind in rows:
        results = BatchRunner(engine, kind).run_batch(
            planner, args.sims, seed=3
        )
        stats = AggregateStats.from_results(results)
        stats_by_label[label] = stats
        print(
            f"{label} safe: {stats.safe_rate:6.1%}   reaching: "
            f"{stats.mean_reaching_time:6.2f}s   eta: {stats.mean_eta:+.4f}  "
            f" emergency: {stats.mean_emergency_frequency:5.1%}"
        )

    shielded_stats = stats_by_label["gap chaser shielded "]
    assert shielded_stats.safe_rate == 1.0
    print(
        "\nThe shielded tailgater is 100% safe — same framework, different "
        "scenario: only the safety model and emergency planner changed."
    )


if __name__ == "__main__":
    main()
