"""Property tests of whole-episode engine invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.disturbance import messages_delayed
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleModel
from repro.dynamics.profiles import RandomSequenceProfile
from repro.filtering.fusion import FusedEstimate
from repro.planners.constant import ConstantPlanner
from repro.scenarios.left_turn.passing_time import conservative_window
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.runner import EstimatorKind, make_estimator_factory
from repro.utils.intervals import Interval
from repro.utils.rng import RngStream

SCENARIO = LeftTurnScenario()
ENGINE = SimulationEngine(
    SCENARIO,
    CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=messages_delayed(0.25, 0.3),
        sensor_bounds=NoiseBounds.uniform_all(1.0),
    ),
    SimulationConfig(max_time=12.0),
)
FACTORY = make_estimator_factory(EstimatorKind.RAW, ENGINE)


class TestEpisodeInvariants:
    @given(seed=st.integers(0, 500), accel=st.floats(-6.0, 4.0))
    @settings(max_examples=25, deadline=None)
    def test_trajectories_respect_physics(self, seed, accel):
        result = ENGINE.run(ConstantPlanner(accel), FACTORY, RngStream(seed))
        ego, oncoming = result.trajectories

        # Time strictly increasing with the control step.
        times = ego.times()
        assert all(b > a for a, b in zip(times, times[1:]))

        # Velocities inside the physical limits at every sample.
        ego_limits = SCENARIO.ego_limits
        for point in ego:
            assert (
                ego_limits.v_min - 1e-9
                <= point.velocity
                <= ego_limits.v_max + 1e-9
            )
        onc_limits = SCENARIO.oncoming_limits
        for point in oncoming:
            assert (
                onc_limits.v_min - 1e-9
                <= point.velocity
                <= onc_limits.v_max + 1e-9
            )

        # The oncoming vehicle only ever moves toward decreasing
        # coordinates (its velocity cap is negative).
        positions = oncoming.positions()
        assert all(b <= a + 1e-9 for a, b in zip(positions, positions[1:]))

        # The recorded ego command equals the (clipped) constant input.
        expected = ego_limits.clip_acceleration(accel)
        commands = ego.accelerations()
        # All but the terminal sample carry the planner's command.
        assert all(c == pytest.approx(expected) for c in commands[:-1])

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_eta_consistent_with_outcome(self, seed):
        result = ENGINE.run(ConstantPlanner(2.0), FACTORY, RngStream(seed))
        from repro.sim.evaluation import eta_from_events

        assert result.eta == eta_from_events(
            result.collision_time, result.reaching_time
        )


class TestWindowMonotonicity:
    """The conservative window shrinks (never extends) as time advances.

    This is the temporal-soundness property the commit invariant relies
    on: once the monitor has certified "pass after cw.hi" or "pass
    before cw.lo", later windows — computed from better information —
    must stay inside the earlier ones, so the certification cannot be
    invalidated.
    """

    @given(
        seed=st.integers(0, 300),
        start=st.floats(40.0, 60.0),
        speed=st.floats(9.0, 14.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_information_windows_nested_over_time(
        self, seed, start, speed
    ):
        model = VehicleModel(SCENARIO.oncoming_limits)
        profile = RandomSequenceProfile(RngStream(seed), -2.0, 2.0)
        state = VehicleState(position=start, velocity=-speed)
        dt = 0.05
        prev_lo = float("-inf")
        prev_hi = float("inf")
        for step in range(120):
            t = step * dt
            estimate = FusedEstimate(
                time=t,
                position=Interval.point(state.position),
                velocity=Interval.point(state.velocity),
                nominal=state,
            )
            window = conservative_window(
                estimate, SCENARIO.geometry, SCENARIO.oncoming_limits
            )
            if window.is_empty:
                break  # cleared for good; stays empty afterwards
            assert window.lo >= prev_lo - 1e-9
            assert window.hi <= prev_hi + 1e-9
            prev_lo, prev_hi = window.lo, window.hi
            accel = profile(step, t, state)
            state = model.step(state, accel, dt)
