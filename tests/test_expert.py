"""Tests for the rule-based expert planners."""

import pytest

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ConfigurationError
from repro.filtering.fusion import FusedEstimate
from repro.planners.base import PlanningContext
from repro.planners.expert import ExpertConfig, LeftTurnExpertPlanner
from repro.scenarios.left_turn.geometry import LeftTurnGeometry
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.utils.intervals import Interval

GEOMETRY = LeftTurnGeometry()
EGO = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)
ONCOMING = VehicleLimits(v_min=-20.0, v_max=-2.0, a_min=-3.0, a_max=3.0)


def _expert(config=None):
    return LeftTurnExpertPlanner(
        geometry=GEOMETRY,
        limits=EGO,
        window_estimator=PassingWindowEstimator(GEOMETRY, ONCOMING),
        config=config or ExpertConfig.conservative(),
    )


class TestConfig:
    def test_presets_differ(self):
        cons = ExpertConfig.conservative()
        aggr = ExpertConfig.aggressive()
        assert aggr.entry_margin < cons.entry_margin
        assert aggr.conflict_cruise_speed > cons.conflict_cruise_speed
        assert aggr.go_accel > cons.go_accel

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cruise_speed", 0.0),
            ("conflict_cruise_speed", -1.0),
            ("go_accel", 0.0),
            ("stop_margin", -1.0),
            ("comfort_brake", 0.0),
            ("speed_gain", 0.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            replace(ExpertConfig.conservative(), **{field: value})

    def test_far_must_exceed_near(self):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            replace(
                ExpertConfig.conservative(),
                conflict_near_time=5.0,
                conflict_far_time=4.0,
            )

    def test_comfort_brake_must_fit_vehicle(self):
        from dataclasses import replace

        cfg = replace(ExpertConfig.conservative(), comfort_brake=10.0)
        with pytest.raises(ConfigurationError):
            LeftTurnExpertPlanner(
                GEOMETRY,
                EGO,
                PassingWindowEstimator(GEOMETRY, ONCOMING),
                cfg,
            )


class TestGoDecision:
    def test_committed_inside_area(self):
        expert = _expert()
        assert expert.should_go(0.0, 6.0, 5.0, Interval(0.0, 10.0))

    def test_go_on_empty_window(self):
        assert _expert().should_go(0.0, -20.0, 10.0, Interval.EMPTY)

    def test_go_on_expired_window(self):
        assert _expert().should_go(10.0, -20.0, 10.0, Interval(2.0, 6.0))

    def test_anticipatory_go(self):
        """GO once the window closes before the ego can reach the line."""
        expert = _expert()
        # Front line 25 m away at 10 m/s: reach in ~2.2 s at go accel.
        window = Interval(0.0, 1.0)  # closes well before arrival
        assert expert.should_go(0.0, -20.0, 10.0, window)

    def test_yield_when_window_covers_arrival(self):
        expert = _expert()
        window = Interval(1.0, 30.0)
        assert not expert.should_go(0.0, -20.0, 10.0, window)

    def test_go_before_far_window(self):
        expert = _expert()
        # Clearing 25 m from 15 m/s takes < 2 s; window opens at 10 s.
        window = Interval(10.0, 14.0)
        assert expert.should_go(0.0, -10.0, 15.0, window)


class TestCommands:
    def test_go_command_eases_off_at_cruise(self):
        expert = _expert()
        cruise = expert.config.cruise_speed
        a_fast = expert.plan_from_window(0.0, 16.0, cruise + 1.0, Interval.EMPTY)
        a_slow = expert.plan_from_window(0.0, 16.0, cruise - 2.0, Interval.EMPTY)
        assert a_fast == 0.0
        assert a_slow == expert.config.go_accel

    def test_yield_brakes_when_fast_near_line(self):
        expert = _expert()
        window = Interval(1.0, 30.0)
        a = expert.plan_from_window(0.0, 0.0, 15.0, window)
        assert a < 0.0

    def test_yield_hard_brake_past_stop_point(self):
        expert = _expert()
        window = Interval(1.0, 30.0)
        # Within stop_margin of the line and still approaching.
        a = expert.plan_from_window(0.0, 4.0, 3.0, window)
        assert a == EGO.a_min

    def test_yield_creeps_forward_when_far_and_slow(self):
        expert = _expert()
        window = Interval(1.0, 30.0)
        a = expert.plan_from_window(0.0, -30.0, 1.0, window)
        assert a > 0.0

    def test_approach_speed_blend(self):
        expert = _expert()
        near = expert.approach_speed(0.0, Interval(0.5, 10.0))
        far = expert.approach_speed(0.0, Interval(20.0, 25.0))
        cfg = expert.config
        assert near == pytest.approx(cfg.conflict_cruise_speed)
        assert far == pytest.approx(cfg.cruise_speed)
        mid = expert.approach_speed(0.0, Interval(5.0, 10.0))
        assert cfg.conflict_cruise_speed < mid < cfg.cruise_speed

    def test_approach_speed_empty_window_is_cruise(self):
        expert = _expert()
        assert expert.approach_speed(
            0.0, Interval.EMPTY
        ) == expert.config.cruise_speed


class TestPlanFromContext:
    def test_plan_uses_estimator(self):
        expert = _expert()
        est = FusedEstimate(
            time=0.0,
            position=Interval.point(50.0),
            velocity=Interval.point(-10.0),
            nominal=VehicleState(position=50.0, velocity=-10.0),
        )
        ctx = PlanningContext(
            time=0.0,
            ego=VehicleState(position=-30.0, velocity=10.0),
            estimates={1: est},
        )
        window = expert.window_estimator.window(est)
        assert expert.plan(ctx) == expert.plan_from_window(
            0.0, -30.0, 10.0, window
        )
