"""The safety guarantee across sampled scenario geometries.

The monitor/emergency construction must not be tuned to the paper's
specific numbers (area at [5, 15], ego from -30, 6 m/s² brakes).  These
property tests sample whole scenario configurations — geometry, limits,
initial conditions — and assert the compound planner with a worst-case
embedded planner stays safe on each.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.disturbance import messages_delayed
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.dynamics.vehicle import VehicleLimits
from repro.planners.constant import FullThrottlePlanner
from repro.scenarios.left_turn.geometry import LeftTurnGeometry
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import EstimatorKind, make_estimator_factory
from repro.utils.rng import RngStream


@st.composite
def scenario_configs(draw):
    """Sample a coherent left-turn scenario configuration."""
    p_front = draw(st.floats(2.0, 12.0))
    area_length = draw(st.floats(4.0, 15.0))
    p_back = p_front + area_length
    geometry = LeftTurnGeometry(
        p_front=p_front,
        p_back=p_back,
        oncoming_front=p_back,
        oncoming_back=p_front,
        p_target=p_back + draw(st.floats(2.0, 10.0)),
    )
    ego_limits = VehicleLimits(
        v_min=0.0,
        v_max=draw(st.floats(12.0, 25.0)),
        a_min=-draw(st.floats(4.0, 8.0)),
        a_max=draw(st.floats(2.0, 5.0)),
    )
    max_speed = draw(st.floats(15.0, 22.0))
    oncoming_limits = VehicleLimits(
        v_min=-max_speed,
        v_max=-2.0,
        a_min=-3.0,
        a_max=3.0,
    )
    ego_start = (
        -draw(st.floats(15.0, 40.0)),
        draw(st.floats(4.0, 12.0)),
    )
    return LeftTurnScenario(
        geometry=geometry,
        ego_limits=ego_limits,
        oncoming_limits=oncoming_limits,
        ego_start=ego_start,
        oncoming_start_positions=tuple(
            p_back + 30.0 + 2.0 * j for j in range(8)
        ),
        oncoming_start_speed_range=(6.0, 13.0),
    )


class TestGeometryRobustness:
    @given(scenario=scenario_configs(), seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_compound_safe_on_sampled_scenarios(self, scenario, seed):
        engine = SimulationEngine(
            scenario,
            CommSetup(
                0.1,
                0.1,
                messages_delayed(0.25, 0.4),
                NoiseBounds.uniform_all(1.5),
            ),
            SimulationConfig(max_time=25.0, record_trajectories=False),
        )
        planner = CompoundPlanner(
            nn_planner=FullThrottlePlanner(scenario.ego_limits),
            emergency_planner=scenario.emergency_planner(),
            monitor=RuntimeMonitor(scenario.safety_model()),
            limits=scenario.ego_limits,
        )
        factory = make_estimator_factory(EstimatorKind.FILTERED, engine)
        result = engine.run(planner, factory, RngStream(seed))
        assert result.outcome is not Outcome.COLLISION
