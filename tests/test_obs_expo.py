"""Metric series ordering, quantile edges, and Prometheus exposition.

The exposition contract is *byte determinism*: the same registry
content must render the same bytes no matter the order series were
first written.  That rests on two layers pinned here — the snapshot's
``(name, label items)`` ordering and the renderer's canonical value
formatting.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.expo import CONTENT_TYPE, render_prometheus, render_registry
from repro.obs.metrics import (
    MetricsRegistry,
    histogram_quantile,
    metric_key,
    parse_series_key,
    series_sort_key,
)


class TestParseSeriesKey:
    def test_roundtrips_metric_key(self):
        key = metric_key("channel.dropped", {"stage": "loss", "channel": "v1"})
        name, labels = parse_series_key(key)
        assert name == "channel.dropped"
        assert labels == (("channel", "v1"), ("stage", "loss"))

    def test_unlabelled_key(self):
        assert parse_series_key("engine.runs") == ("engine.runs", ())

    def test_unparseable_keys_are_returned_whole(self):
        # Total function: garbage keys become the name with no labels.
        assert parse_series_key("weird{") == ("weird{", ())
        assert parse_series_key("weird{novalue}") == ("weird{novalue}", ())
        assert parse_series_key("empty{}") == ("empty", ())

    def test_sort_key_groups_families_together(self):
        # Plain string sort would interleave: "{" > alphanumerics.
        keys = ["serve.offered", "serve.decisions{ladder=1}", "serve.decisions"]
        ordered = sorted(keys, key=series_sort_key)
        assert ordered == [
            "serve.decisions",
            "serve.decisions{ladder=1}",
            "serve.offered",
        ]


class TestSnapshotOrdering:
    def _filled(self, order):
        registry = MetricsRegistry()
        for name, labels in order:
            registry.count(name, 1, **labels)
        return registry

    def test_snapshot_bytes_independent_of_insertion_order(self):
        series = [
            ("serve.offered", {}),
            ("serve.decisions", {"ladder": "2"}),
            ("serve.decisions", {"ladder": "1"}),
            ("channel.dropped", {"stage": "loss"}),
        ]
        forward = self._filled(series)
        backward = self._filled(list(reversed(series)))
        assert json.dumps(forward.snapshot()) == json.dumps(
            backward.snapshot()
        )
        keys = list(forward.snapshot()["counters"])
        assert keys == [
            "channel.dropped{stage=loss}",
            "serve.decisions{ladder=1}",
            "serve.decisions{ladder=2}",
            "serve.offered",
        ]

    def test_counter_series_sorted(self):
        registry = self._filled(
            [("a.x", {"k": "2"}), ("a.x", {"k": "1"}), ("a.x", {})]
        )
        assert list(registry.counter_series("a.")) == [
            "a.x",
            "a.x{k=1}",
            "a.x{k=2}",
        ]


class TestQuantileEdges:
    def _hist(self, values, buckets=(0.001, 0.01, 0.1)):
        registry = MetricsRegistry()
        registry.register_histogram("h", buckets)
        for value in values:
            registry.observe("h", value)
        return registry.snapshot()["histograms"]["h"]

    def test_empty_histogram_is_none(self):
        # A never-observed series only exists as a snapshot shape (e.g.
        # a zeroed fleet delta), not inside a registry.
        empty = {
            "buckets": [0.001, 0.01],
            "counts": [0, 0, 0],
            "count": 0,
            "sum": 0.0,
            "min": None,
            "max": None,
        }
        assert histogram_quantile(empty, 0.5) is None

    def test_q0_is_observed_min_and_q1_is_observed_max(self):
        snapshot = self._hist([0.002, 0.004, 0.09])
        assert histogram_quantile(snapshot, 0.0) == 0.002
        assert histogram_quantile(snapshot, 1.0) == 0.09

    def test_interpolation_clamps_to_observed_min(self):
        # All mass in the wide first bucket: naive interpolation would
        # report a value below anything actually seen.
        snapshot = self._hist([0.0009, 0.00095])
        for q in (0.1, 0.5, 0.9):
            assert histogram_quantile(snapshot, q) >= 0.0009

    def test_overflow_rank_returns_observed_max(self):
        snapshot = self._hist([5.0, 7.0])  # both beyond the last bound
        assert histogram_quantile(snapshot, 0.99) == 7.0

    def test_mid_quantile_between_min_and_max(self):
        snapshot = self._hist([0.0005, 0.005, 0.05, 0.09])
        p50 = histogram_quantile(snapshot, 0.5)
        assert 0.0005 <= p50 <= 0.09

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ConfigurationError):
            histogram_quantile(self._hist([0.01]), 1.5)


class TestAbsorbHistogram:
    def test_exact_sum_merge(self):
        source = MetricsRegistry()
        source.register_histogram("d", (1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            source.observe("d", value)
        target = MetricsRegistry()
        snap = source.snapshot()["histograms"]["d"]
        target.absorb_histogram("d", snap)
        target.absorb_histogram("d", snap)
        merged = target.snapshot()["histograms"]["d"]
        assert merged["count"] == 6
        assert merged["counts"] == [2, 2, 2]
        assert merged["sum"] == pytest.approx(10.0)
        # min/max folding is idempotent.
        assert merged["min"] == 0.5
        assert merged["max"] == 3.0

    def test_refuses_mismatched_bounds(self):
        target = MetricsRegistry()
        target.register_histogram("d", (1.0, 2.0))
        foreign = {
            "buckets": [5.0],
            "counts": [1, 0],
            "count": 1,
            "sum": 1.0,
            "min": 1.0,
            "max": 1.0,
        }
        with pytest.raises(ConfigurationError):
            target.absorb_histogram("d", foreign)

    def test_refuses_bad_counts_length(self):
        target = MetricsRegistry()
        bad = {
            "buckets": [1.0, 2.0],
            "counts": [1, 2],  # needs len(buckets) + 1 slots
            "count": 3,
            "sum": 3.0,
            "min": 1.0,
            "max": 2.0,
        }
        with pytest.raises(ConfigurationError):
            target.absorb_histogram("d", bad)


class TestExposition:
    def _registry(self, order):
        registry = MetricsRegistry()
        for kind, name, value, labels in order:
            getattr(registry, kind)(name, value, **labels)
        return registry

    def test_byte_stability_across_insertion_orders(self):
        series = [
            ("count", "serve.offered", 4, {}),
            ("count", "serve.decisions", 3, {"ladder": "1"}),
            ("count", "serve.decisions", 1, {"ladder": "2"}),
            ("gauge", "serve.inflight", 0.0, {}),
            ("observe", "serve.decision_seconds", 0.002, {}),
            ("observe", "serve.decision_seconds", 0.004, {}),
        ]
        forward = render_registry(self._registry(series))
        backward = render_registry(self._registry(list(reversed(series))))
        assert forward == backward

    def test_counter_and_gauge_lines(self):
        text = render_registry(
            self._registry(
                [
                    ("count", "serve.offered", 4, {}),
                    ("gauge", "serve.inflight", 2.0, {}),
                ]
            )
        )
        assert "# TYPE repro_serve_offered counter\n" in text
        assert "repro_serve_offered 4\n" in text
        assert "# TYPE repro_serve_inflight gauge\n" in text
        assert "repro_serve_inflight 2\n" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.register_histogram("lat", (1.0, 2.0))
        for value in (0.5, 0.6, 1.5, 9.0):
            registry.observe("lat", value)
        text = render_registry(registry)
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="2"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_count 4" in text
        assert "repro_lat_sum 11.6" in text

    def test_label_escaping_and_name_sanitisation(self):
        registry = MetricsRegistry()
        registry.count("channel.stage_dropped", 1, stage='lo"ss')
        text = render_registry(registry)
        assert 'repro_channel_stage_dropped{stage="lo\\"ss"} 1' in text

    def test_namespace_disabled(self):
        text = render_prometheus(
            {"counters": {"x": 1}}, namespace=""
        )
        assert text == "# TYPE x counter\nx 1\n"

    def test_help_text_emitted_when_given(self):
        text = render_prometheus(
            {"counters": {"serve.offered": 1}},
            help_text={"serve.offered": "admitted decide requests"},
        )
        assert (
            "# HELP repro_serve_offered admitted decide requests\n" in text
        )

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_content_type_pinned(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4"
