"""Tests for the oncoming vehicle's passing-window estimation.

Load-bearing properties:

* the conservative (Eq. (7)) window computed from any band containing
  the true state contains the true passing interval of every admissible
  behaviour — this is what makes the runtime monitor sound;
* the aggressive (Eq. (8)) window is compact and sits near the true
  passing time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.filtering.fusion import FusedEstimate
from repro.scenarios.left_turn.geometry import LeftTurnGeometry
from repro.scenarios.left_turn.passing_time import (
    PassingWindowEstimator,
    aggressive_window,
    conservative_window,
)
from repro.utils.intervals import Interval

GEOMETRY = LeftTurnGeometry()
LIMITS = VehicleLimits(v_min=-20.0, v_max=-2.0, a_min=-3.0, a_max=3.0)
DT = 0.05


def _estimate(time, position, velocity, accel=0.0, p_rad=0.0, v_rad=0.0):
    return FusedEstimate(
        time=time,
        position=Interval.around(position, p_rad),
        velocity=Interval.around(velocity, v_rad),
        nominal=VehicleState(
            position=position, velocity=velocity, acceleration=accel
        ),
        message_age=0.0,
    )


def _true_passing(position, velocity, accels):
    """Simulate and return the (entry, exit) times of the unsafe area."""
    model = VehicleModel(LIMITS)
    state = VehicleState(position=position, velocity=velocity)
    entry = exit_ = None
    t = 0.0
    for a in accels:
        if entry is None and state.position <= GEOMETRY.oncoming_front:
            entry = t
        if exit_ is None and state.position < GEOMETRY.oncoming_back:
            exit_ = t
            break
        state = model.step(state, a, DT)
        t += DT
    return entry, exit_


class TestConservativeWindow:
    def test_exact_state_window_brackets_constant_speed(self):
        est = _estimate(0.0, 50.0, -10.0)
        w = conservative_window(est, GEOMETRY, LIMITS)
        # Constant speed: enters at 3.5 s, exits at 4.5 s.
        assert w.lo <= 3.5
        assert w.hi >= 4.5

    def test_cleared_band_is_empty(self):
        est = _estimate(0.0, 4.0, -10.0)
        assert conservative_window(est, GEOMETRY, LIMITS).is_empty

    def test_band_not_fully_cleared_is_not_empty(self):
        est = _estimate(0.0, 4.0, -10.0, p_rad=2.0)  # band [2, 6]
        assert not conservative_window(est, GEOMETRY, LIMITS).is_empty

    def test_wider_band_wider_window(self):
        tight = conservative_window(
            _estimate(0.0, 50.0, -10.0, p_rad=0.5, v_rad=0.5), GEOMETRY, LIMITS
        )
        wide = conservative_window(
            _estimate(0.0, 50.0, -10.0, p_rad=3.0, v_rad=2.0), GEOMETRY, LIMITS
        )
        assert wide.lo <= tight.lo
        assert wide.hi >= tight.hi

    def test_absolute_times_offset_by_estimate_time(self):
        w0 = conservative_window(_estimate(0.0, 50.0, -10.0), GEOMETRY, LIMITS)
        w5 = conservative_window(_estimate(5.0, 50.0, -10.0), GEOMETRY, LIMITS)
        assert w5.lo == pytest.approx(w0.lo + 5.0)

    @given(
        position=st.floats(20.0, 60.0),
        velocity=st.floats(-14.0, -6.0),
        accels=st.lists(st.floats(-2.0, 2.0), min_size=150, max_size=150),
        p_rad=st.floats(0.0, 2.0),
        v_rad=st.floats(0.0, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_soundness_against_rollouts(
        self, position, velocity, accels, p_rad, v_rad
    ):
        """The Eq. (7) window contains every admissible passing time."""
        est = _estimate(0.0, position, velocity, p_rad=p_rad, v_rad=v_rad)
        w = conservative_window(est, GEOMETRY, LIMITS)
        entry, exit_ = _true_passing(position, velocity, accels)
        if entry is not None:
            assert w.lo <= entry + 1e-6
        if exit_ is not None:
            assert w.hi >= exit_ - 1e-6


class TestAggressiveWindow:
    def test_nested_inside_conservative_for_exact_state(self):
        est = _estimate(0.0, 50.0, -10.0, accel=0.0)
        cons = conservative_window(est, GEOMETRY, LIMITS)
        aggr = aggressive_window(est, GEOMETRY, LIMITS, a_buf=0.5, v_buf=1.0)
        assert cons.contains_interval(aggr)

    def test_close_to_constant_speed_truth(self):
        est = _estimate(0.0, 50.0, -10.0, accel=0.0)
        aggr = aggressive_window(est, GEOMETRY, LIMITS, a_buf=0.5, v_buf=1.0)
        # Truth: [3.5, 4.5] at constant speed.
        assert aggr.lo == pytest.approx(3.5, abs=1.0)
        assert aggr.hi == pytest.approx(4.5, abs=1.5)

    def test_zero_buffers_tightest(self):
        est = _estimate(0.0, 50.0, -10.0, accel=0.0)
        tight = aggressive_window(est, GEOMETRY, LIMITS, a_buf=0.0, v_buf=0.0)
        loose = aggressive_window(est, GEOMETRY, LIMITS, a_buf=1.0, v_buf=2.0)
        assert loose.lo <= tight.lo + 1e-9
        assert loose.hi >= tight.hi - 1e-9

    def test_cleared_nominal_empty(self):
        est = _estimate(0.0, 4.0, -10.0)
        assert aggressive_window(
            est, GEOMETRY, LIMITS, a_buf=0.5, v_buf=1.0
        ).is_empty

    def test_negative_buffers_rejected(self):
        est = _estimate(0.0, 50.0, -10.0)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            aggressive_window(est, GEOMETRY, LIMITS, a_buf=-0.1, v_buf=0.0)

    def test_decelerating_nominal_can_never_arrive(self):
        # Strongly decelerating distant vehicle: the aggressive estimate
        # concludes it never arrives (window empty); the monitor's
        # conservative window still covers it.
        est = _estimate(0.0, 60.0, -3.0, accel=2.5)  # raw +a = slowing
        aggr = aggressive_window(est, GEOMETRY, LIMITS, a_buf=0.2, v_buf=0.2)
        cons = conservative_window(est, GEOMETRY, LIMITS)
        assert aggr.is_empty or aggr.lo > cons.lo
        assert not cons.is_empty


class TestEstimatorBundle:
    def test_mode_switch(self):
        est = _estimate(0.0, 50.0, -10.0)
        cons = PassingWindowEstimator(GEOMETRY, LIMITS, aggressive=False)
        aggr = PassingWindowEstimator(
            GEOMETRY, LIMITS, aggressive=True, a_buf=0.5, v_buf=1.0
        )
        assert cons.window(est) == conservative_window(est, GEOMETRY, LIMITS)
        assert aggr.window(est) == aggressive_window(
            est, GEOMETRY, LIMITS, 0.5, 1.0
        )
