"""Shard coordinator: bit-identity, degradation, duplicates, status.

These tests run real worker subprocesses (spawned via ``python -m
repro.campaign.shard.worker``) against tiny manifests; the chaos-grade
kill tests live in ``test_shard_chaos.py``.
"""

from __future__ import annotations

import pytest

from repro.campaign.journal import JournalWriter, read_journal
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import (
    AGGREGATE_FILE,
    JOURNAL_FILE,
    CampaignProgress,
    CampaignRunner,
    replay_progress,
)
from repro.campaign.shard import LeaseTable, ShardCoordinator, shard_status
from repro.campaign.shard.coordinator import _LoopState, _WorkerHandle
from repro.errors import CampaignError, JournalCorruptionError
from repro.obs.observer import Observer


def _manifest(n_sims=4, chunk_size=1, name="shard-test"):
    return CampaignManifest(
        name=name,
        scenario={"kind": "left_turn"},
        comm={"sensor_noise": 0.3},
        planner={"kind": "constant", "acceleration": 2.0},
        n_sims=n_sims,
        seed=5,
        chunk_size=chunk_size,
        config={"max_time": 8.0},
    )


def _reference_bytes(manifest, tmp_path):
    ref_dir = tmp_path / "reference"
    report = CampaignRunner(manifest, ref_dir).run()
    assert report.status == "completed"
    return (ref_dir / AGGREGATE_FILE).read_bytes()


class TestBitIdentity:
    def test_sharded_aggregate_matches_sequential(self, tmp_path):
        manifest = _manifest(n_sims=5)
        reference = _reference_bytes(manifest, tmp_path)
        coordinator = ShardCoordinator(
            manifest,
            tmp_path / "sharded",
            n_workers=3,
            lease_ttl=30.0,
            heartbeat_interval=0.2,
        )
        report = coordinator.run()
        assert report.status == "completed"
        assert report.completed_chunks == 5
        sharded = (tmp_path / "sharded" / AGGREGATE_FILE).read_bytes()
        assert sharded == reference

    def test_observer_does_not_change_artifacts(self, tmp_path):
        manifest = _manifest(n_sims=3)
        reference = _reference_bytes(manifest, tmp_path)
        observer = Observer()
        coordinator = ShardCoordinator(
            manifest,
            tmp_path / "traced",
            n_workers=2,
            heartbeat_interval=0.2,
            observer=observer,
        )
        report = coordinator.run()
        assert report.status == "completed"
        assert (tmp_path / "traced" / AGGREGATE_FILE).read_bytes() == reference
        counters = observer.metrics.snapshot()["counters"]
        assert counters.get("shard.lease_claims", 0) >= 3
        assert counters.get("shard.chunks_completed", 0) >= 3


class TestDegradation:
    def test_single_worker_uses_campaign_runner(self, tmp_path):
        manifest = _manifest(n_sims=3)
        reference = _reference_bytes(manifest, tmp_path)
        coordinator = ShardCoordinator(
            manifest, tmp_path / "solo", n_workers=1
        )
        report = coordinator.run()
        assert report.status == "completed"
        assert (tmp_path / "solo" / AGGREGATE_FILE).read_bytes() == reference
        # No shard machinery ran: the journal knows no coordinator epoch.
        records, _ = read_journal(tmp_path / "solo" / JOURNAL_FILE)
        types = {record["type"] for record in records}
        assert "coordinator_started" not in types
        assert "worker_spawned" not in types

    def test_resume_of_finished_campaign_runs_nothing(self, tmp_path):
        manifest = _manifest(n_sims=3)
        directory = tmp_path / "campaign"
        ShardCoordinator(
            manifest, directory, n_workers=2, heartbeat_interval=0.2
        ).run()
        report = ShardCoordinator(
            manifest, directory, n_workers=2, heartbeat_interval=0.2
        ).resume()
        assert report.status == "completed"
        assert report.chunks_run == 0

    def test_run_refuses_started_directory(self, tmp_path):
        manifest = _manifest(n_sims=2)
        directory = tmp_path / "campaign"
        ShardCoordinator(
            manifest, directory, n_workers=2, heartbeat_interval=0.2
        ).run()
        with pytest.raises(CampaignError, match="shard-resume"):
            ShardCoordinator(
                manifest, directory, n_workers=2, heartbeat_interval=0.2
            ).run()


class TestValidation:
    def test_rejects_bad_knobs(self, tmp_path):
        manifest = _manifest()
        with pytest.raises(CampaignError, match="n_workers"):
            ShardCoordinator(manifest, tmp_path, n_workers=0)
        with pytest.raises(CampaignError, match="lease_ttl"):
            ShardCoordinator(manifest, tmp_path, lease_ttl=0.0)
        with pytest.raises(CampaignError, match="heartbeat_interval"):
            ShardCoordinator(
                manifest, tmp_path, lease_ttl=1.0, heartbeat_interval=2.0
            )
        with pytest.raises(CampaignError, match="timeout_per_sim"):
            ShardCoordinator(manifest, tmp_path, timeout_per_sim=0.0)


class TestDuplicateCompletions:
    """The speculative-twin race, driven deterministically."""

    def _state(self, tmp_path, manifest):
        journal = JournalWriter(tmp_path / JOURNAL_FILE)
        progress = CampaignProgress(fingerprint=manifest.fingerprint)
        table = LeaseTable(
            range(manifest.n_chunks), ["w0", "w1"], manifest.fingerprint
        )
        return _LoopState(progress=progress, table=table, journal=journal)

    def test_equal_digest_duplicate_is_idempotent(self, tmp_path):
        manifest = _manifest(n_sims=2)
        coordinator = ShardCoordinator(
            manifest, tmp_path / "c", n_workers=2
        )
        state = self._state(tmp_path, manifest)
        w0 = _WorkerHandle(worker_id="w0", process=None)
        w1 = _WorkerHandle(worker_id="w1", process=None)
        event = {"event": "completed", "chunk": 0, "digest": "d" * 64}
        coordinator._handle_completed(w0, dict(event), state, 0.0)
        coordinator._handle_completed(w1, dict(event), state, 1.0)
        state.journal.close()
        records, _ = read_journal(tmp_path / JOURNAL_FILE)
        completions = [r for r in records if r["type"] == "chunk_completed"]
        assert len(completions) == 2
        assert completions[0]["duplicate"] is False
        assert completions[1]["duplicate"] is True
        # Idempotent replay: both records collapse to one completion.
        progress = replay_progress(records, manifest.fingerprint)
        assert progress.completed == {0: "d" * 64}

    def test_conflicting_digest_duplicate_raises(self, tmp_path):
        manifest = _manifest(n_sims=2)
        coordinator = ShardCoordinator(
            manifest, tmp_path / "c", n_workers=2
        )
        state = self._state(tmp_path, manifest)
        w0 = _WorkerHandle(worker_id="w0", process=None)
        w1 = _WorkerHandle(worker_id="w1", process=None)
        coordinator._handle_completed(
            w0, {"event": "completed", "chunk": 0, "digest": "a" * 64},
            state, 0.0,
        )
        with pytest.raises(JournalCorruptionError, match="deterministic"):
            coordinator._handle_completed(
                w1, {"event": "completed", "chunk": 0, "digest": "b" * 64},
                state, 1.0,
            )
        state.journal.close()


class TestShardStatus:
    def test_per_worker_summary(self, tmp_path):
        manifest = _manifest(n_sims=4)
        directory = tmp_path / "campaign"
        ShardCoordinator(
            manifest, directory, n_workers=2, heartbeat_interval=0.2
        ).run()
        summary = shard_status(directory)
        assert summary["finished"] is True
        assert summary["completed_chunks"] == 4
        assert summary["coordinator_epochs"] == 1
        assert set(summary["workers"]) == {"w0", "w1"}
        total_leases = sum(
            entry["leases"] for entry in summary["workers"].values()
        )
        assert total_leases >= 4
        for entry in summary["workers"].values():
            assert entry["pid"] is not None
            assert entry["alive"] is False  # fleet shut down cleanly
