"""Tests for the safety certification harness."""

import pytest

from repro.comm.disturbance import messages_lost, no_disturbance
from repro.core.verification import (
    AdversarialPlanner,
    CertificationReport,
    Violation,
    adversarial_suite,
    certify,
)
from repro.scenarios.car_following import CarFollowingScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup
from repro.sim.runner import EstimatorKind


def _comms():
    return [
        CommSetup(0.1, 0.1, no_disturbance(), NoiseBounds.uniform_all(1.0)),
        CommSetup(0.1, 0.1, messages_lost(), NoiseBounds.uniform_all(3.0)),
    ]


class TestAdversarialSuite:
    def test_contains_expected_battery(self, scenario):
        suite = adversarial_suite(scenario.ego_limits)
        names = {p.name for p in suite}
        assert names == {
            "full_throttle",
            "full_brake",
            "oscillate",
            "nan",
            "random_bang",
        }

    def test_planners_produce_floats(self, scenario):
        import math

        from repro.dynamics.state import VehicleState
        from repro.planners.base import PlanningContext

        ctx = PlanningContext(
            time=0.0, ego=VehicleState(position=0.0, velocity=5.0)
        )
        for planner in adversarial_suite(scenario.ego_limits):
            value = planner.plan(ctx)
            assert isinstance(value, float)
            if planner.name != "nan":
                assert math.isfinite(value)


class TestCertifyLeftTurn:
    @pytest.fixture(scope="class")
    def report(self, scenario):
        return certify(scenario, _comms(), n_runs=6, seed=7)

    def test_certified(self, report):
        assert report.certified
        assert report.violations == []

    def test_episode_accounting(self, report):
        # 2 comms x 2 estimator kinds x 5 planners x 6 runs.
        assert report.episodes_run == 2 * 2 * 5 * 6

    def test_render(self, report):
        text = report.render()
        assert "CERTIFIED" in text
        assert "LeftTurnScenario" in text


class TestCertifyCarFollowing:
    def test_certified(self):
        scenario = CarFollowingScenario()
        report = certify(
            scenario,
            [_comms()[0]],
            n_runs=5,
            seed=9,
            max_time=15.0,
        )
        assert report.certified


class TestFailureReporting:
    def test_violations_render(self):
        report = CertificationReport(
            scenario_name="Broken",
            episodes_run=10,
            episodes_per_cell=5,
            violations=[
                Violation(
                    planner_name="full_throttle",
                    comm_index=0,
                    estimator_kind=EstimatorKind.RAW,
                    seed_index=3,
                    collision_time=2.5,
                )
            ],
        )
        assert not report.certified
        text = report.render()
        assert "FAILED" in text
        assert "full_throttle" in text
        assert "seed_index=3" in text

    def test_custom_planner_override(self, scenario):
        gentle = AdversarialPlanner("gentle", lambda c: 0.5)
        report = certify(
            scenario,
            [_comms()[0]],
            n_runs=3,
            seed=1,
            planners=[gentle],
        )
        assert report.episodes_run == 2 * 1 * 3  # 2 estimator kinds
        assert report.certified
