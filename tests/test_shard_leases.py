"""Lease table scheduling: claims, expiry, stealing, speculation.

The :class:`~repro.campaign.shard.LeaseTable` is clock-free, so every
failure interleaving here runs with a synthetic clock and zero sleeping.
"""

from __future__ import annotations

import pytest

from repro.campaign.backoff import BackoffPolicy
from repro.campaign.shard import LeaseTable
from repro.errors import CampaignError

FP = "deadbeefcafe0123" * 4  # any 64-hex-ish fingerprint works


def _table(chunks=range(6), workers=("w0", "w1"), ttl=10.0, **kwargs):
    return LeaseTable(list(chunks), list(workers), FP, ttl=ttl, **kwargs)


class TestClaims:
    def test_contiguous_ranges_front_first(self):
        table = _table()
        # w0 owns [0,1,2], w1 owns [3,4,5]; each drains its own front.
        assert table.claim("w0", 0.0).chunk == 0
        assert table.claim("w1", 0.0).chunk == 3
        assert table.claim("w0", 0.0).chunk == 1

    def test_unknown_worker_rejected(self):
        with pytest.raises(CampaignError, match="unknown worker"):
            _table().claim("nobody", 0.0)

    def test_claims_exhaust_then_none(self):
        table = _table(chunks=range(2), workers=("w0",), straggler_factor=100.0)
        assert table.claim("w0", 0.0) is not None
        assert table.claim("w0", 0.0) is not None
        assert table.claim("w0", 0.0) is None

    def test_attempt_numbers_increment_across_grants(self):
        table = _table(chunks=[7], workers=("w0", "w1"))
        first = table.claim("w0", 0.0)
        assert first.attempt == 1
        table.expire(20.0)  # ttl=10: the lease is silent past budget
        second = table.claim("w1", 100.0)
        assert second.chunk == 7
        assert second.attempt == 2


class TestStealing:
    def test_idle_worker_steals_from_longest_range_tail(self):
        table = _table(chunks=range(6), workers=("w0", "w1"))
        # w0 drains its whole range...
        for expected in (0, 1, 2):
            assert table.claim("w0", 0.0).chunk == expected
        # ...then steals w1's *tail*, leaving w1 its front.
        lease = table.claim("w0", 0.0)
        assert lease.chunk == 5
        assert lease.origin == "steal"
        assert table.steals == 1
        assert table.claim("w1", 0.0).chunk == 3

    def test_dead_workers_range_redistributed(self):
        table = _table(chunks=range(6), workers=("w0", "w1"))
        released = table.release_worker("w1", 0.0)
        assert released == []  # held no leases yet
        # w0 can now claim all six chunks without stealing.
        claimed = [table.claim("w0", 0.0).chunk for _ in range(6)]
        assert sorted(claimed) == list(range(6))


class TestExpiry:
    def test_silent_lease_expires_with_deterministic_backoff(self):
        backoff = BackoffPolicy(max_attempts=5)
        table = _table(chunks=[0], workers=("w0", "w1"), backoff=backoff)
        lease = table.claim("w0", 0.0)
        expired = table.expire(10.0 + 1e-9)
        assert len(expired) == 1
        _, delay = expired[0]
        assert delay == backoff.delay(FP, 0, 1)
        assert table.expirations == 1
        # Not claimable until the backoff delay elapses.
        assert table.claim("w1", 10.0) is None
        reclaimed = table.claim("w1", 10.0 + delay + 1e-9)
        assert reclaimed.chunk == lease.chunk
        assert reclaimed.origin == "retry"

    def test_heartbeat_renews_lease(self):
        table = _table(chunks=[0], workers=("w0", "w1"))
        table.claim("w0", 0.0)
        assert table.heartbeat("w0", 0, 9.0)
        assert table.expire(15.0) == []  # silence is only 6 s
        assert table.expire(19.5) != []

    def test_late_heartbeat_after_expiry_is_harmless(self):
        table = _table(chunks=[0], workers=("w0", "w1"))
        table.claim("w0", 0.0)
        table.expire(20.0)
        assert table.heartbeat("w0", 0, 21.0) is False


class TestSpeculation:
    def test_straggler_gets_speculative_twin(self):
        table = _table(
            chunks=[0], workers=("w0", "w1"), ttl=10.0, straggler_factor=2.0
        )
        table.claim("w0", 0.0)
        # Heartbeats keep the lease alive, but it never completes.
        table.heartbeat("w0", 0, 19.0)
        assert table.claim("w1", 19.0) is None  # age 19 < 2*ttl
        table.heartbeat("w0", 0, 21.0)
        twin = table.claim("w1", 21.0)
        assert twin is not None and twin.speculative
        assert twin.chunk == 0 and twin.attempt == 2
        assert table.speculations == 1
        # No triple-leasing, and a worker never speculates on itself.
        assert table.claim("w0", 30.0) is None
        assert table.claim("w1", 30.0) is None

    def test_first_completion_wins_releases_both(self):
        table = _table(
            chunks=[0], workers=("w0", "w1"), ttl=1.0, straggler_factor=1.0
        )
        table.claim("w0", 0.0)
        table.heartbeat("w0", 0, 1.01)
        twin = table.claim("w1", 1.02)
        assert twin is not None and twin.speculative
        released = table.complete(0)
        assert {lease.worker for lease in released} == {"w0", "w1"}
        assert table.outstanding() == 0
        # Duplicate completion (the loser reporting) is a no-op.
        assert table.complete(0) == []


class TestCompletionAndFailure:
    def test_complete_scrubs_retry_pool_and_ranges(self):
        table = _table(chunks=range(4), workers=("w0", "w1"))
        table.claim("w0", 0.0)
        table.expire(20.0)  # chunk 0 now waits in the retry pool
        table.complete(0)   # ...but a late twin completed it anyway
        table.complete(3)   # never claimed: scrubbed from w1's range
        remaining = set()
        while True:
            lease = table.claim("w0", 1000.0)
            if lease is None:
                break
            remaining.add(lease.chunk)
        assert remaining == {1, 2}

    def test_error_budget_exhaustion_raises(self):
        backoff = BackoffPolicy(max_attempts=2)
        table = _table(chunks=[0], workers=("w0", "w1"), backoff=backoff)
        table.claim("w0", 0.0)
        delay = table.fail("w0", 0, 1.0)
        assert delay is not None
        lease = table.claim("w1", 1.0 + delay + 1e-9)
        assert lease.attempt == 2
        with pytest.raises(CampaignError, match="giving up"):
            table.fail("w1", 0, 5.0)

    def test_fail_without_lease_is_noop(self):
        table = _table()
        assert table.fail("w0", 0, 0.0) is None


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(CampaignError, match="at least one worker"):
            LeaseTable([0], [], FP)
        with pytest.raises(CampaignError, match="unique"):
            LeaseTable([0], ["w0", "w0"], FP)
        with pytest.raises(CampaignError, match="ttl"):
            LeaseTable([0], ["w0"], FP, ttl=0.0)
        with pytest.raises(CampaignError, match="straggler_factor"):
            LeaseTable([0], ["w0"], FP, straggler_factor=0.5)
