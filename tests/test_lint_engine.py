"""Engine-level safelint tests: suppressions, baseline, config, CLI.

The JSON report schema is pinned key-for-key here — any shape change
must bump ``repro.lint.findings.SCHEMA_VERSION`` and update this test.
"""

import json

import pytest

from repro.errors import LintError
from repro.lint import (
    Baseline,
    LintConfig,
    SCHEMA_VERSION,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.findings import report_to_dict
from repro.lint.suppressions import parse_suppressions

BAD_LINE = "def f(t, t_goal):\n    '''d.'''\n    return t == t_goal{}\n"


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
def test_finding_without_suppression():
    findings = lint_source(BAD_LINE.format(""), module="repro.x")
    assert [f.rule_id for f in findings] == ["SFL001"]


def test_inline_disable_specific_rule():
    source = BAD_LINE.format("  # safelint: disable=SFL001")
    assert not lint_source(source, module="repro.x")


def test_inline_disable_with_justification_text():
    source = BAD_LINE.format("  # safelint: disable=SFL001 - exact hit")
    assert not lint_source(source, module="repro.x")


def test_inline_disable_all_rules_on_line():
    source = BAD_LINE.format("  # safelint: disable")
    assert not lint_source(source, module="repro.x")


def test_inline_disable_other_rule_does_not_suppress():
    source = BAD_LINE.format("  # safelint: disable=SFL009")
    assert [f.rule_id for f in lint_source(source, module="repro.x")] == [
        "SFL001"
    ]


def test_file_wide_disable():
    source = "# safelint: disable-file=SFL001\n" + BAD_LINE.format("")
    assert not lint_source(source, module="repro.x")


def test_suppression_parser_multiple_ids():
    smap = parse_suppressions(["x = 1  # safelint: disable=SFL001,SFL002"])
    assert smap.is_suppressed("SFL001", 1)
    assert smap.is_suppressed("SFL002", 1)
    assert not smap.is_suppressed("SFL003", 1)
    assert not smap.is_suppressed("SFL001", 2)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _one_finding():
    findings = lint_source(BAD_LINE.format(""), module="repro.x")
    assert len(findings) == 1
    return findings


def test_baseline_roundtrip(tmp_path):
    findings = _one_finding()
    path = tmp_path / "baseline.json"
    written = write_baseline(path, findings)
    assert findings[0] in written
    loaded = load_baseline(path)
    assert findings[0] in loaded
    fresh, baselined = loaded.partition(findings)
    assert fresh == [] and baselined == 1


def test_baseline_is_line_drift_tolerant(tmp_path):
    findings = _one_finding()
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    shifted = "\n\n\n" + BAD_LINE.format("")
    moved = lint_source(shifted, module="repro.x")
    loaded = load_baseline(path)
    fresh, baselined = loaded.partition(moved)
    assert fresh == [] and baselined == 1


def test_missing_baseline_is_empty(tmp_path):
    assert len(load_baseline(tmp_path / "absent.json")) == 0


def test_corrupt_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(LintError):
        load_baseline(path)


def test_lint_paths_applies_baseline(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Doc."""\n\n\ndef f(into=[]):\n    """D."""\n    return into\n',
        encoding="utf-8",
    )
    raw = lint_paths([tmp_path], LintConfig())
    assert [f.rule_id for f in raw.findings] == ["SFL002"]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, raw.findings)
    gated = lint_paths(
        [tmp_path], LintConfig(), baseline=load_baseline(baseline_path)
    )
    assert gated.ok and gated.baselined == 1


# ----------------------------------------------------------------------
# Config: select / ignore / scopes
# ----------------------------------------------------------------------
def test_select_limits_rules():
    config = LintConfig(select=frozenset({"SFL002"}))
    findings = lint_source(
        BAD_LINE.format(""), module="repro.x", config=config
    )
    assert not findings


def test_ignore_drops_rule():
    config = LintConfig(ignore=frozenset({"SFL001"}))
    findings = lint_source(
        BAD_LINE.format(""), module="repro.x", config=config
    )
    assert not findings


def test_scope_configuration_is_respected():
    # flow_packages moves with sim_packages here: the default flow scope
    # also covers repro.sim, and this test wants the module fully out of
    # every scope so the SFL004-only assertion stays exact.
    config = LintConfig(
        sim_packages=("repro.custom",),
        flow_packages=("repro.custom.flowless",),
    )
    source = "import time\ndef f():\n    '''d.'''\n    return time.time()\n"
    in_scope = lint_source(source, module="repro.custom.mod", config=config)
    out_scope = lint_source(source, module="repro.sim.mod", config=config)
    assert [f.rule_id for f in in_scope] == ["SFL004"]
    assert not out_scope


# ----------------------------------------------------------------------
# JSON schema
# ----------------------------------------------------------------------
def test_json_report_schema_is_stable():
    findings = _one_finding()
    report = report_to_dict(
        findings, files_checked=1, suppressed=2, baselined=3
    )
    assert set(report) == {
        "schema_version",
        "tool",
        "files_checked",
        "findings",
        "summary",
    }
    assert report["schema_version"] == SCHEMA_VERSION == 2
    assert report["tool"] == "safelint"
    assert set(report["summary"]) == {
        "total",
        "suppressed",
        "baselined",
        "by_rule",
    }
    (entry,) = report["findings"]
    assert set(entry) == {
        "path",
        "line",
        "column",
        "end_line",
        "end_column",
        "rule",
        "message",
        "severity",
        "fingerprint",
    }
    assert entry["severity"] in ("error", "warning")
    assert entry["end_line"] >= entry["line"]
    json.dumps(report)  # must be serializable as-is


def test_findings_carry_ast_end_positions():
    # The offending expression spans two physical lines; the finding
    # must cover the whole span, not just its first character.
    source = (
        "def f(t, t_goal):\n"
        "    '''d.'''\n"
        "    return (t ==\n"
        "            t_goal)\n"
    )
    (finding,) = lint_source(source, module="repro.x")
    assert finding.rule_id == "SFL001"
    assert finding.line == 3
    assert finding.end_line == 4
    assert finding.end_column > 0


def test_finding_end_position_defaults_to_start():
    from repro.lint.findings import Finding, Severity

    finding = Finding(
        path="x.py",
        line=7,
        column=4,
        rule_id="SFL001",
        message="m",
        severity=Severity.ERROR,
    )
    assert (finding.end_line, finding.end_column) == (7, 4)


def test_github_format_emits_end_positions(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "'''Doc.'''\n\n\ndef f(t, t_goal):\n    '''D.'''\n"
        "    return (t ==\n            t_goal)\n",
        encoding="utf-8",
    )
    code = main([str(bad), "--format", "github", "--no-project-config"])
    assert code == 1
    out = capsys.readouterr().out
    (annotation,) = [
        line for line in out.splitlines() if line.startswith("::error ")
    ]
    assert "line=6," in annotation
    assert "endLine=7," in annotation
    assert "col=13," in annotation
    assert "endColumn=" in annotation


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _write_bad_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Doc."""\n\n\ndef f(into=[]):\n    """D."""\n    return into\n',
        encoding="utf-8",
    )
    return bad


def test_cli_exit_codes(tmp_path, capsys):
    bad = _write_bad_file(tmp_path)
    assert main([str(bad), "--no-project-config"]) == 1
    assert "SFL002" in capsys.readouterr().out
    good = tmp_path / "good.py"
    good.write_text('"""Doc."""\n', encoding="utf-8")
    assert main([str(good), "--no-project-config"]) == 0


def test_cli_json_output(tmp_path, capsys):
    bad = _write_bad_file(tmp_path)
    code = main([str(bad), "--format", "json", "--no-project-config"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["schema_version"] == SCHEMA_VERSION
    assert report["summary"]["total"] == 1


def test_cli_write_then_use_baseline(tmp_path, capsys):
    bad = _write_bad_file(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                str(bad),
                "--write-baseline",
                "--baseline",
                str(baseline),
                "--no-project-config",
            ]
        )
        == 0
    )
    assert baseline.is_file()
    capsys.readouterr()
    assert (
        main(
            [str(bad), "--baseline", str(baseline), "--no-project-config"]
        )
        == 0
    )
    assert "1 baselined" in capsys.readouterr().out


def _write_two_finding_file(tmp_path):
    # One SFL001 (float equality on a kinematic name) and one SFL002
    # (mutable default), so select/ignore visibly narrow the run.
    src = tmp_path / "two.py"
    src.write_text(
        '"""Doc."""\n\n\n'
        "def f(t, t_goal, into=[]):\n"
        '    """D."""\n'
        "    if t == t_goal:\n"
        "        return into\n"
        "    return into\n",
        encoding="utf-8",
    )
    return src


def test_cli_select_narrows_findings_and_exit_code(tmp_path, capsys):
    src = _write_two_finding_file(tmp_path)
    assert main([str(src), "--no-project-config"]) == 1
    out = capsys.readouterr().out
    assert "SFL001" in out and "SFL002" in out

    assert main([str(src), "--select", "SFL002", "--no-project-config"]) == 1
    out = capsys.readouterr().out
    assert "SFL002" in out and "SFL001" not in out

    # Selecting a family that has nothing to say -> clean exit.
    assert main([str(src), "--select", "SFL2", "--no-project-config"]) == 0


def test_cli_ignore_drops_rules(tmp_path, capsys):
    src = _write_two_finding_file(tmp_path)
    assert main([str(src), "--ignore", "SFL001", "--no-project-config"]) == 1
    out = capsys.readouterr().out
    assert "SFL002" in out and "SFL001" not in out

    assert (
        main([str(src), "--ignore", "SFL001,SFL002", "--no-project-config"])
        == 0
    )


def test_cli_ignore_wins_over_select(tmp_path, capsys):
    src = _write_two_finding_file(tmp_path)
    assert (
        main(
            [
                str(src),
                "--select",
                "SFL001",
                "--ignore",
                "SFL001",
                "--no-project-config",
            ]
        )
        == 0
    )


def test_cli_select_interacts_with_baseline(tmp_path, capsys):
    src = _write_two_finding_file(tmp_path)
    baseline = tmp_path / "baseline.json"
    # A baseline written under --select only records the selected rule.
    assert (
        main(
            [
                str(src),
                "--select",
                "SFL001",
                "--write-baseline",
                "--baseline",
                str(baseline),
                "--no-project-config",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            [
                str(src),
                "--select",
                "SFL001",
                "--baseline",
                str(baseline),
                "--no-project-config",
            ]
        )
        == 0
    )
    assert "1 baselined" in capsys.readouterr().out
    # Widening the run past the baselined selection exposes the rest.
    assert (
        main(
            [str(src), "--baseline", str(baseline), "--no-project-config"]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "SFL002" in out and "SFL001" not in out


def test_cli_unknown_rule_id_is_usage_error(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text('"""Doc."""\n', encoding="utf-8")
    assert main([str(good), "--select", "SFL999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_cli_empty_select_is_usage_error(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text('"""Doc."""\n', encoding="utf-8")
    assert main([str(good), "--select", "", "--no-project-config"]) == 2
    assert "at least one rule id" in capsys.readouterr().err


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope"), "--no-project-config"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SFL001", "SFL010"):
        assert rule_id in out


def test_engine_skips_pycache_and_hidden(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text(
        "def f(x=[]):\n    return x\n", encoding="utf-8"
    )
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "junk.py").write_text(
        "def f(x=[]):\n    return x\n", encoding="utf-8"
    )
    result = lint_paths([tmp_path], LintConfig())
    assert result.files_checked == 0 and result.ok
