"""Tests of the public package surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_symbols_present(self):
        for name in (
            "CompoundPlanner",
            "RuntimeMonitor",
            "LeftTurnScenario",
            "SimulationEngine",
            "BatchRunner",
            "InformationFilter",
            "train_left_turn_planner",
            "Interval",
        ):
            assert name in repro.__all__

    def test_quickstart_components_compose(self):
        """The README quickstart's object graph wires together."""
        scenario = repro.LeftTurnScenario()
        monitor = repro.RuntimeMonitor(scenario.safety_model())
        planner = repro.CompoundPlanner(
            nn_planner=repro.Planner and _stub(),
            emergency_planner=scenario.emergency_planner(),
            monitor=monitor,
            limits=scenario.ego_limits,
        )
        engine = repro.SimulationEngine(scenario, repro.CommSetup.perfect())
        runner = repro.BatchRunner(engine, repro.EstimatorKind.FILTERED)
        result = runner.run_one(planner, seed=0)
        assert result.steps > 0


def _stub():
    class _Planner:
        def plan(self, context):
            return 1.0

    return _Planner()
