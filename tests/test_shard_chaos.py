"""Kill-anywhere chaos for the shard layer.

SIGKILLs real worker subprocesses and abandons the coordinator
mid-campaign, then requires resumed aggregates to stay byte-identical
to an uninterrupted single-process reference — the acceptance contract
of the distribution layer.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.campaign.journal import read_journal
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import AGGREGATE_FILE, JOURNAL_FILE, CampaignRunner
from repro.campaign.shard import ShardCoordinator, shard_status


def _manifest(n_sims=8, name="shard-chaos"):
    return CampaignManifest(
        name=name,
        scenario={"kind": "left_turn"},
        comm={"sensor_noise": 0.3},
        planner={"kind": "constant", "acceleration": 2.0},
        n_sims=n_sims,
        seed=5,
        chunk_size=1,
        config={"max_time": 8.0},
    )


def _reference_bytes(manifest, tmp_path):
    ref_dir = tmp_path / "reference"
    CampaignRunner(manifest, ref_dir).run()
    return (ref_dir / AGGREGATE_FILE).read_bytes()


def _completed_chunks(directory):
    records, _ = read_journal(directory / JOURNAL_FILE)
    return sum(1 for r in records if r.get("type") == "chunk_completed")


class _CrashCoordinator(RuntimeError):
    """Marker the tick hook raises to abandon the coordinator mid-run."""


class TestWorkerKill:
    def test_sigkilled_worker_chunks_redispatched(self, tmp_path):
        manifest = _manifest(n_sims=6)
        reference = _reference_bytes(manifest, tmp_path)
        directory = tmp_path / "sharded"
        state = {"killed": False}

        def hook(coordinator, now):
            if not state["killed"] and _completed_chunks(directory) >= 1:
                pids = coordinator.worker_pids()
                victim = sorted(pids)[0]
                os.kill(pids[victim], signal.SIGKILL)
                state["killed"] = True

        report = ShardCoordinator(
            manifest,
            directory,
            n_workers=3,
            lease_ttl=10.0,
            heartbeat_interval=0.2,
            tick_hook=hook,
        ).run()
        assert state["killed"]
        assert report.status == "completed"
        assert (directory / AGGREGATE_FILE).read_bytes() == reference
        summary = shard_status(directory)
        # The victim's death is journaled, and the survivors absorbed
        # its leases/range.
        exited = [
            worker
            for worker, entry in summary["workers"].items()
            if not entry["alive"]
        ]
        assert len(exited) == 3  # all exited by the end; one violently
        assert summary["completed_chunks"] == 6

    def test_all_workers_dead_raises_resumable_error(self, tmp_path):
        manifest = _manifest(n_sims=6)
        directory = tmp_path / "sharded"

        def hook(coordinator, now):
            for pid in coordinator.worker_pids().values():
                os.kill(pid, signal.SIGKILL)

        with pytest.raises(Exception, match="all shard workers died"):
            ShardCoordinator(
                manifest,
                directory,
                n_workers=2,
                lease_ttl=10.0,
                heartbeat_interval=0.2,
                tick_hook=hook,
            ).run()
        # The journal survived; a fresh fleet finishes the campaign.
        reference = _reference_bytes(manifest, tmp_path)
        report = ShardCoordinator(
            manifest, directory, n_workers=2, heartbeat_interval=0.2
        ).resume()
        assert report.status == "completed"
        assert (directory / AGGREGATE_FILE).read_bytes() == reference


class TestCoordinatorCrash:
    def test_abandoned_coordinator_resumes_bit_identical(self, tmp_path):
        manifest = _manifest(n_sims=8)
        reference = _reference_bytes(manifest, tmp_path)
        directory = tmp_path / "sharded"
        state = {"killed": False}

        def hook(coordinator, now):
            done = _completed_chunks(directory)
            if not state["killed"] and done >= 1:
                pids = coordinator.worker_pids()
                victim = sorted(pids)[-1]
                os.kill(pids[victim], signal.SIGKILL)
                state["killed"] = True
            if done >= 3:
                raise _CrashCoordinator("chaos: abandoning coordinator")

        with pytest.raises(_CrashCoordinator):
            ShardCoordinator(
                manifest,
                directory,
                n_workers=3,
                lease_ttl=10.0,
                heartbeat_interval=0.2,
                tick_hook=hook,
            ).run()
        before = _completed_chunks(directory)
        assert 3 <= before < 8
        report = ShardCoordinator(
            manifest, directory, n_workers=3, heartbeat_interval=0.2
        ).resume()
        assert report.status == "completed"
        assert report.completed_chunks == 8
        assert (directory / AGGREGATE_FILE).read_bytes() == reference
        assert shard_status(directory)["coordinator_epochs"] == 2

    def test_repeated_crashes_converge(self, tmp_path):
        """Crash after every couple of chunks until the campaign finishes."""
        manifest = _manifest(n_sims=6)
        reference = _reference_bytes(manifest, tmp_path)
        directory = tmp_path / "sharded"

        state = {"threshold": 2}

        def hook(coordinator, now):
            if _completed_chunks(directory) >= state["threshold"]:
                state["threshold"] += 2
                raise _CrashCoordinator("chaos: abandoning coordinator")

        with pytest.raises(_CrashCoordinator):
            ShardCoordinator(
                manifest,
                directory,
                n_workers=2,
                heartbeat_interval=0.2,
                tick_hook=hook,
            ).run()
        attempts = 0
        while True:
            attempts += 1
            assert attempts <= 10, "resume never converged"
            coordinator = ShardCoordinator(
                manifest,
                directory,
                n_workers=2,
                heartbeat_interval=0.2,
                tick_hook=hook,
            )
            try:
                report = coordinator.resume()
            except _CrashCoordinator:
                continue
            break
        assert report.status == "completed"
        assert (directory / AGGREGATE_FILE).read_bytes() == reference
        assert shard_status(directory)["coordinator_epochs"] >= 2
