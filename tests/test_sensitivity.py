"""Tests for the knob-sensitivity experiment."""

import pytest

from repro.experiments.sensitivity import (
    render_sensitivity,
    sweep_buffers,
    sweep_n_sigma,
)
from tests.test_experiments import TINY


@pytest.fixture(scope="module")
def buffer_sweep():
    return sweep_buffers(TINY, grid=((0.0, 0.0), (0.5, 1.0)))


@pytest.fixture(scope="module")
def sigma_sweep():
    return sweep_n_sigma(TINY, grid=(1.0, 3.0))


class TestSweeps:
    def test_buffer_grid_covered(self, buffer_sweep):
        assert set(buffer_sweep) == {(0.0, 0.0), (0.5, 1.0)}

    def test_sigma_grid_covered(self, sigma_sweep):
        assert set(sigma_sweep) == {1.0, 3.0}

    def test_all_cells_safe(self, buffer_sweep, sigma_sweep):
        for stats in list(buffer_sweep.values()) + list(sigma_sweep.values()):
            assert stats.safe_rate == 1.0

    def test_batch_sizes(self, buffer_sweep):
        for stats in buffer_sweep.values():
            assert stats.n_runs == TINY.n_sims


class TestRendering:
    def test_render_contains_cells(self, buffer_sweep, sigma_sweep):
        text = render_sensitivity(buffer_sweep, sigma_sweep)
        assert "a_buf" in text
        assert "n_sigma" in text
        assert "100.00%" in text
