"""The ``repro-serve`` command line: flag validation and wiring.

The validation rows mirror ``test_campaign_cli.TestFlagValidation`` on
purpose — both CLIs route their numeric knobs through the shared
helpers in :mod:`repro.utils.validation`, so NaN, zero, and negative
values fail identically (exit code 2, flag name on stderr) before any
socket is bound or file touched.
"""

import pytest

from repro.faults.planner_wrapper import FaultyPlanner, StallingPlanner
from repro.planners.constant import FullBrakePlanner
from repro.planners.idm import GapChaserPlanner, IDMPlanner
from repro.serve.cli import EXIT_ERROR, build_parser, build_server, main


def _args(*flags):
    return build_parser().parse_args([*flags])


class TestFlagValidation:
    """Nonsensical knob values fail fast, before any socket is bound."""

    @pytest.mark.parametrize(
        ("flags", "message"),
        [
            (["--deadline-ms", "nan"], "--deadline-ms"),
            (["--deadline-ms", "0"], "--deadline-ms"),
            (["--deadline-ms", "-5"], "--deadline-ms"),
            (["--max-inflight", "0"], "--max-inflight"),
            (["--max-inflight", "-2"], "--max-inflight"),
            (["--workers", "0"], "--workers"),
            (["--max-state-age-s", "nan"], "--max-state-age-s"),
            (["--max-state-age-s", "0"], "--max-state-age-s"),
            (["--transient-retries", "-1"], "--transient-retries"),
            (["--drain-grace-s", "-1"], "--drain-grace-s"),
            (["--drain-grace-s", "nan"], "--drain-grace-s"),
            (["--p-gap", "0"], "--p-gap"),
            (["--inject-stall-seconds", "-0.5"], "--inject-stall-seconds"),
            (["--inject-stall-window", "5"], "--inject-stall-window"),
            (["--inject-stall-window", "a:b"], "--inject-stall-window"),
            (["--inject-stall-window", "7:3"], "--inject-stall-window"),
            (["--inject-error-window=-1:4"], "--inject-error-window"),
            (["--inject-error-window", "2:2"], "--inject-error-window"),
        ],
    )
    def test_bad_flag_is_error(self, capsys, flags, message):
        code = main([*flags])
        err = capsys.readouterr().err
        assert code == EXIT_ERROR
        assert message in err


class TestWiring:
    def test_defaults_build_a_clean_server(self):
        server = build_server(_args())
        assert server.config.deadline_s == pytest.approx(0.05)
        assert server.config.max_inflight == 16
        ladder = server._ladder_factory()
        # no chaos flags -> the ladder invokes the bare compound
        assert ladder._planner is ladder.compound
        assert isinstance(ladder.compound.nn_planner, IDMPlanner)

    @pytest.mark.parametrize(
        ("name", "cls"),
        [
            ("idm", IDMPlanner),
            ("gap-chaser", GapChaserPlanner),
            ("full-brake", FullBrakePlanner),
        ],
    )
    def test_planner_choices(self, name, cls):
        server = build_server(_args("--planner", name))
        assert isinstance(server._ladder_factory().compound.nn_planner, cls)

    def test_budget_flags_reach_config(self):
        server = build_server(
            _args(
                "--deadline-ms",
                "25",
                "--max-inflight",
                "3",
                "--workers",
                "4",
                "--max-state-age-s",
                "0.7",
                "--transient-retries",
                "2",
                "--drain-grace-s",
                "1.5",
            )
        )
        cfg = server.config
        assert cfg.deadline_s == pytest.approx(0.025)
        assert cfg.max_inflight == 3
        assert cfg.workers == 4
        assert cfg.max_state_age == pytest.approx(0.7)
        assert cfg.transient_retries == 2
        assert cfg.drain_grace == pytest.approx(1.5)

    def test_chaos_flags_wrap_the_planner_unit(self):
        server = build_server(
            _args(
                "--inject-stall-seconds",
                "0.2",
                "--inject-stall-window",
                "0:3",
                "--inject-error-window",
                "1:2",
                "--inject-error-severity",
                "fatal",
            )
        )
        ladder = server._ladder_factory()
        # outermost: the stall; inside it: the raiser; inside: compound
        stack = ladder._planner
        assert isinstance(stack, StallingPlanner)
        assert isinstance(stack.inner, FaultyPlanner)
        assert stack.inner.inner is ladder.compound
