"""Campaign-layer observability: metrics.json, status, bit-identity.

A traced campaign must (a) leave its ``aggregate.json`` byte-identical
to an untraced run of the same manifest, (b) write the operational
``metrics.json`` sidecar, and (c) surface per-chunk retry counts and
elapsed summaries through ``repro-campaign status`` — for plain,
untraced CLI runs too, since the journal carries chunk elapsed times
unconditionally.
"""

import json

import pytest

from repro.campaign.backoff import BackoffPolicy
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import (
    AGGREGATE_FILE,
    METRICS_FILE,
    CampaignRunner,
    campaign_status,
)
from repro.obs.observer import Observer
from repro.sim.results import ChunkResult, FailureRecord, Outcome, SimulationResult


def _manifest(**overrides):
    fields = dict(
        name="obs-campaign",
        scenario={"kind": "left_turn"},
        comm={
            "sensor_noise": 0.3,
            "faults": [{"kind": "independent_loss", "probability": 0.2}],
        },
        planner={"kind": "constant", "acceleration": 2.0},
        n_sims=6,
        seed=42,
        chunk_size=2,
        config={"max_time": 10.0},
    )
    fields.update(overrides)
    return CampaignManifest(**fields)


class _FlakyExecutor:
    """Fails chunk 0 transiently once, then behaves."""

    def __init__(self):
        self.calls = 0

    def __call__(self, indices, n_sims, seed):
        self.calls += 1
        indices = list(indices)
        if self.calls == 1:
            return ChunkResult(
                indices=indices,
                results={},
                failures=[
                    FailureRecord(
                        index=k,
                        stage="worker",
                        error_type="WorkerDied",
                        message="injected",
                    )
                    for k in indices
                ],
            )
        return ChunkResult(
            indices=indices,
            results={
                k: SimulationResult(
                    outcome=Outcome.REACHED,
                    reaching_time=5.0 + k,
                    steps=10 + k,
                )
                for k in indices
            },
        )


class TestTracedCampaign:
    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        """The same manifest run untraced and traced."""
        base = tmp_path_factory.mktemp("campaigns")
        manifest = _manifest()
        plain_dir = base / "plain"
        traced_dir = base / "traced"
        CampaignRunner(manifest, plain_dir, n_workers=1).run()
        observer = Observer()
        CampaignRunner(
            manifest, traced_dir, n_workers=1, observer=observer
        ).run()
        return plain_dir, traced_dir, observer

    def test_aggregate_is_bit_identical(self, pair):
        plain_dir, traced_dir, _ = pair
        plain = (plain_dir / AGGREGATE_FILE).read_bytes()
        traced = (traced_dir / AGGREGATE_FILE).read_bytes()
        assert traced == plain

    def test_metrics_sidecar_written(self, pair):
        _, traced_dir, _ = pair
        metrics = json.loads((traced_dir / METRICS_FILE).read_text())
        assert metrics["name"] == "obs-campaign"
        assert metrics["total_retries"] == 0
        elapsed = metrics["elapsed"]
        assert elapsed["chunks_timed"] == 3
        assert elapsed["total_seconds"] >= 0.0
        assert elapsed["max_seconds"] >= elapsed["mean_seconds"] > 0.0

    def test_untraced_campaign_also_writes_metrics(self, pair):
        plain_dir, _, _ = pair
        metrics = json.loads((plain_dir / METRICS_FILE).read_text())
        assert metrics["elapsed"]["chunks_timed"] == 3

    def test_observer_recorded_campaign_telemetry(self, pair):
        _, _, observer = pair
        spans = observer.tracer.events_named("campaign.chunk")
        assert len(spans) == 3
        snapshot = observer.metrics.snapshot()
        assert "campaign.chunk_seconds" in snapshot["histograms"]
        assert "journal.fsync_seconds" in snapshot["histograms"]
        assert observer.metrics.counter_value("journal.appends") > 0


class TestStatusSurfacesOperationalData:
    def test_status_reports_retries_and_elapsed(self, tmp_path):
        manifest = _manifest(n_sims=4)
        executor = _FlakyExecutor()
        report = CampaignRunner(
            manifest,
            tmp_path / "campaign",
            chunk_executor=executor,
            backoff=BackoffPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            sleep=lambda _s: None,
        ).run()
        assert report.status == "completed"
        status = campaign_status(tmp_path / "campaign")
        assert status["chunk_retries"] == {"0": 1}
        assert status["total_retries"] == 1
        assert status["elapsed"]["chunks_timed"] == 2
        assert status["elapsed"]["total_seconds"] >= 0.0

    def test_summary_tolerates_records_without_elapsed(self):
        # Campaigns journaled before the elapsed field existed (or with
        # no completed chunks at all) must not break the status command.
        from repro.campaign.runner import _operational_summary

        summary = _operational_summary(
            [
                {"type": "chunk_completed", "chunk": 0},
                {"type": "chunk_completed", "chunk": 1, "elapsed": 0.5},
            ]
        )
        assert summary["elapsed"]["chunks_timed"] == 1
        assert summary["chunk_retries"] == {}
        assert _operational_summary([])["elapsed"] is None
