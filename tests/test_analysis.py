"""Tests for the analysis subpackage."""

import math

import pytest

from repro.analysis.batch import summarize_batch
from repro.analysis.metrics import (
    comfort_metrics,
    minimum_separation,
    speed_statistics,
)
from repro.dynamics.state import VehicleState
from repro.dynamics.trajectory import Trajectory
from repro.errors import SimulationError
from repro.sim.results import Outcome, SimulationResult


def _trajectory(samples):
    """Build a trajectory from (t, p, v, a) tuples."""
    traj = Trajectory()
    for t, p, v, a in samples:
        traj.append(
            t, VehicleState(position=p, velocity=v, acceleration=a)
        )
    return traj


class TestComfortMetrics:
    def test_constant_acceleration_zero_jerk(self):
        traj = _trajectory(
            [(i * 0.1, i * 0.1, 1.0, 2.0) for i in range(10)]
        )
        m = comfort_metrics(traj)
        assert m.peak_acceleration == 2.0
        assert m.peak_deceleration == 2.0
        assert m.peak_jerk == 0.0
        assert m.rms_acceleration == pytest.approx(2.0)

    def test_jerk_computed_from_command_changes(self):
        traj = _trajectory(
            [(0.0, 0.0, 1.0, 0.0), (0.1, 0.1, 1.0, 2.0), (0.2, 0.2, 1.0, 2.0)]
        )
        m = comfort_metrics(traj)
        assert m.peak_jerk == pytest.approx(20.0)  # 2.0 change over 0.1 s

    def test_comfortable_flag(self):
        gentle = _trajectory(
            [(i * 0.1, 0.0, 1.0, 1.0) for i in range(5)]
        )
        harsh = _trajectory(
            [(0.0, 0.0, 1.0, 0.0), (0.1, 0.0, 1.0, -6.0)]
        )
        assert comfort_metrics(gentle).comfortable
        assert not comfort_metrics(harsh).comfortable

    def test_single_sample_rejected(self):
        traj = _trajectory([(0.0, 0.0, 0.0, 0.0)])
        with pytest.raises(SimulationError):
            comfort_metrics(traj)


class TestSeparation:
    def test_min_distance_and_time(self):
        ego = _trajectory([(t * 1.0, t * 10.0, 10.0, 0.0) for t in range(5)])
        other = _trajectory([(t * 1.0, 25.0, 0.0, 0.0) for t in range(5)])
        sep = minimum_separation(ego, other)
        # Ego passes 25 m between t=2 (20 m) and t=3 (30 m); samples at
        # 20 and 30 -> min |d| = 5 at either; first hit at t=2.
        assert sep.min_distance == pytest.approx(5.0)
        assert sep.time_of_min in (2.0, 3.0)

    def test_headway(self):
        ego = _trajectory([(0.0, 0.0, 10.0, 0.0), (1.0, 10.0, 10.0, 0.0)])
        other = _trajectory([(0.0, 30.0, 0.0, 0.0), (1.0, 30.0, 0.0, 0.0)])
        sep = minimum_separation(ego, other)
        assert sep.min_time_headway == pytest.approx(2.0)

    def test_stationary_ego_infinite_headway(self):
        ego = _trajectory([(0.0, 0.0, 0.0, 0.0), (1.0, 0.0, 0.0, 0.0)])
        other = _trajectory([(0.0, 10.0, 0.0, 0.0), (1.0, 10.0, 0.0, 0.0)])
        assert minimum_separation(ego, other).min_time_headway == math.inf

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            minimum_separation(Trajectory(), Trajectory())


class TestSpeedStatistics:
    def test_constant_speed(self):
        traj = _trajectory([(t * 0.5, 0.0, 8.0, 0.0) for t in range(5)])
        stats = speed_statistics(traj)
        assert stats.mean_speed == pytest.approx(8.0)
        assert stats.peak_speed == 8.0
        assert stats.kept_moving

    def test_negative_velocities_use_speed(self):
        traj = _trajectory([(t * 0.5, 0.0, -12.0, 0.0) for t in range(3)])
        assert speed_statistics(traj).mean_speed == pytest.approx(12.0)

    def test_stopped_fraction(self):
        samples = [(0.0, 0.0, 10.0, 0.0), (1.0, 10.0, 0.0, 0.0),
                   (2.0, 10.0, 0.0, 0.0)]
        stats = speed_statistics(_trajectory(samples))
        assert stats.stopped_fraction == pytest.approx(0.5)
        assert not stats.kept_moving


class TestBatchSummary:
    def _results(self):
        reached = SimulationResult(
            outcome=Outcome.REACHED,
            reaching_time=5.0,
            steps=100,
            emergency_steps=10,
        )
        crashed = SimulationResult(
            outcome=Outcome.COLLISION, collision_time=2.0, steps=40
        )
        timeout = SimulationResult(outcome=Outcome.TIMEOUT, steps=600)
        return [reached, reached, crashed, timeout]

    def test_counts(self):
        summary = summarize_batch(self._results())
        assert summary.n_runs == 4
        assert summary.n_collisions == 1
        assert summary.n_timeouts == 1

    def test_percentiles(self):
        summary = summarize_batch(self._results())
        assert summary.reaching_percentiles[50] == pytest.approx(5.0)
        assert 0.0 <= summary.emergency_percentiles[95] <= 1.0

    def test_no_reached_runs(self):
        crashed = SimulationResult(
            outcome=Outcome.COLLISION, collision_time=2.0, steps=40
        )
        summary = summarize_batch([crashed])
        assert summary.reaching_percentiles == {}

    def test_comfort_none_without_trajectories(self):
        summary = summarize_batch(self._results())
        assert summary.comfort is None

    def test_render(self):
        text = summarize_batch(self._results()).render()
        assert "runs: 4" in text
        assert "eta:" in text

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize_batch([])

    def test_with_recorded_trajectories(self, scenario):
        from repro.planners.constant import ConstantPlanner
        from repro.sim.engine import CommSetup, SimulationEngine
        from repro.sim.runner import BatchRunner, EstimatorKind

        engine = SimulationEngine(scenario, CommSetup.perfect())
        results = BatchRunner(engine, EstimatorKind.RAW).run_batch(
            ConstantPlanner(2.0), 3, seed=0
        )
        summary = summarize_batch(results)
        assert summary.comfort is not None
        assert summary.comfort.peak_acceleration == pytest.approx(2.0)
