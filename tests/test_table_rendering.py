"""Tests for the table modules' render functions and CLI plumbing."""

import pytest

from repro.experiments import table1, table2
from repro.experiments.harness import run_setting
from tests.test_experiments import TINY


@pytest.fixture(scope="module")
def mini_table():
    """One setting per family, shaped like the full-table dicts."""
    return {
        "no_disturbance": run_setting(
            "conservative", "no_disturbance", TINY
        )
    }


class TestRender:
    def test_table1_render(self, mini_table):
        text = table1.render(mini_table)
        assert "Table I" in text
        assert "no_disturbance" in text
        for planner in ("pure", "basic", "ultimate"):
            assert planner in text

    def test_table2_render(self, mini_table):
        text = table2.render(mini_table)
        assert "Table II" in text
        assert "safe runs only" in text

    def test_rows_have_all_columns(self, mini_table):
        text = table1.render(mini_table)
        header = text.splitlines()[1]
        for column in (
            "setting",
            "planner",
            "reaching",
            "safe",
            "eta",
            "winning",
            "emergency",
        ):
            assert column in header

    def test_ultimate_row_has_dash_for_winning(self, mini_table):
        text = table1.render(mini_table)
        ultimate_lines = [
            line for line in text.splitlines() if "ultimate" in line
        ]
        assert ultimate_lines
        assert all(" - " in line or line.endswith("-") or " -" in line
                   for line in ultimate_lines)


class TestFigure5Rendering:
    def test_render_sweep_with_chart(self):
        from repro.experiments.figure5 import render_sweep

        sweep = {
            "reaching_time": {
                "pure": [6.7, 6.8],
                "basic": [6.7, 6.8],
                "ultimate": [6.4, 6.5],
            },
            "emergency_frequency": {
                "basic": [0.0, 0.001],
                "ultimate": [0.05, 0.06],
            },
        }
        text = render_sweep("Fig. demo", "x", (0.0, 1.0), sweep)
        assert "reaching time" in text
        assert "emergency frequency" in text
        assert "(chart)" in text

    def test_render_sweep_without_chart(self):
        from repro.experiments.figure5 import render_sweep

        sweep = {
            "reaching_time": {"pure": [1.0], "basic": [1.0], "ultimate": [1.0]},
            "emergency_frequency": {"basic": [0.0], "ultimate": [0.0]},
        }
        text = render_sweep("Fig. demo", "x", (0.0,), sweep, charts=False)
        assert "(chart)" not in text
