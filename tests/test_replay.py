"""Tests for the replaying Kalman filter (message replay of Sec. III-B)."""

import numpy as np
import pytest

from repro.comm.message import Message
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.errors import FilterError, ReplayError
from repro.filtering.kalman import KalmanFilter
from repro.filtering.replay import ReplayKalmanFilter
from repro.sensing.noise import NoiseBounds, UniformNoise
from repro.sensing.sensor import SensorReading
from repro.utils.rng import RngStream

DT = 0.1
BOUNDS = NoiseBounds.uniform_all(1.0)
LIMITS = VehicleLimits(v_min=-20.0, v_max=-2.0, a_min=-3.0, a_max=3.0)


def _rkf() -> ReplayKalmanFilter:
    return ReplayKalmanFilter(KalmanFilter(DT, BOUNDS))


def _reading(t, p, v, a=0.0) -> SensorReading:
    return SensorReading(target=1, time=t, position=p, velocity=v, acceleration=a)


class TestSensorPath:
    def test_first_reading_initialises(self):
        rkf = _rkf()
        assert not rkf.is_initialized
        post = rkf.on_sensor_reading(_reading(0.0, 50.0, -12.0))
        assert rkf.is_initialized
        assert post.position == 50.0
        assert post.velocity == -12.0

    def test_initial_covariance_is_measurement_covariance(self):
        rkf = _rkf()
        post = rkf.on_sensor_reading(_reading(0.0, 50.0, -12.0))
        assert post.covariance[0, 0] == pytest.approx(1.0 / 3.0)

    def test_subsequent_readings_advance_time(self):
        rkf = _rkf()
        rkf.on_sensor_reading(_reading(0.0, 50.0, -12.0))
        post = rkf.on_sensor_reading(_reading(0.1, 48.8, -12.0))
        assert post.time == pytest.approx(0.1)

    def test_time_regression_rejected(self):
        rkf = _rkf()
        rkf.on_sensor_reading(_reading(0.5, 50.0, -12.0))
        with pytest.raises(FilterError):
            rkf.on_sensor_reading(_reading(0.4, 50.0, -12.0))

    def test_checkpoints_stored_at_prediction_times(self):
        rkf = _rkf()
        rkf.on_sensor_reading(_reading(0.0, 50.0, -12.0))
        rkf.on_sensor_reading(_reading(0.1, 48.8, -12.0))
        assert rkf.checkpoint_at(0.1) is not None
        assert rkf.checkpoint_at(0.05) is None

    def test_current_accel_tracks_reading(self):
        rkf = _rkf()
        rkf.on_sensor_reading(_reading(0.0, 50.0, -12.0, a=1.5))
        assert rkf.current_accel == 1.5


class TestEstimateAt:
    def test_uninitialised_raises(self):
        with pytest.raises(FilterError):
            _rkf().estimate_at(0.0)

    def test_at_posterior_time(self):
        rkf = _rkf()
        rkf.on_sensor_reading(_reading(0.0, 50.0, -12.0))
        est = rkf.estimate_at(0.0)
        assert est.position == pytest.approx(50.0)

    def test_between_samples_extrapolates(self):
        rkf = _rkf()
        rkf.on_sensor_reading(_reading(0.0, 50.0, -12.0, a=0.0))
        est = rkf.estimate_at(0.05)
        assert est.position == pytest.approx(50.0 - 12.0 * 0.05, abs=1e-9)

    def test_past_query_rejected(self):
        rkf = _rkf()
        rkf.on_sensor_reading(_reading(0.5, 50.0, -12.0))
        with pytest.raises(FilterError):
            rkf.estimate_at(0.2)


class TestMessageReplay:
    def _drive(self, rkf, seed=7, n=30):
        """Feed noisy readings of a simulated vehicle; return its states."""
        rng = RngStream(seed)
        noise = UniformNoise(BOUNDS, rng)
        model = VehicleModel(LIMITS)
        state = VehicleState(position=55.0, velocity=-12.0)
        truth = {0.0: state}
        for i in range(n):
            t = i * DT
            rkf.on_sensor_reading(
                _reading(
                    t,
                    noise.perturb_position(state.position),
                    noise.perturb_velocity(state.velocity),
                    noise.perturb_acceleration(0.5),
                )
            )
            state = model.step(state, 0.5, DT)
            truth[round((i + 1) * DT, 10)] = state
        return truth

    def test_replay_improves_posterior(self):
        rkf = _rkf()
        truth = self._drive(rkf)
        now = 29 * DT
        before = rkf.estimate_at(now)
        stamp = 25 * DT
        exact = truth[round(stamp, 10)]
        msg = Message(
            sender=1,
            stamp=stamp,
            state=exact.with_acceleration(0.5),
        )
        rkf.on_message(msg, now)
        after = rkf.estimate_at(now)
        true_now = truth[round(now, 10)]
        err_before = abs(before.position - true_now.position)
        err_after = abs(after.position - true_now.position)
        assert err_after <= err_before + 1e-9
        assert rkf.replay_count == 1

    def test_replay_with_current_stamp_pins_estimate(self):
        rkf = _rkf()
        truth = self._drive(rkf, n=10)
        now = 9 * DT
        exact = truth[round(now, 10)]
        rkf.on_message(
            Message(sender=1, stamp=now, state=exact.with_acceleration(0.5)),
            now,
        )
        est = rkf.estimate_at(now)
        assert est.position == pytest.approx(exact.position, abs=1e-9)
        assert est.velocity == pytest.approx(exact.velocity, abs=1e-9)

    def test_older_message_ignored_after_newer(self):
        rkf = _rkf()
        truth = self._drive(rkf, n=20)
        now = 19 * DT
        newer = Message(
            sender=1,
            stamp=15 * DT,
            state=truth[round(15 * DT, 10)].with_acceleration(0.5),
        )
        older = Message(
            sender=1,
            stamp=10 * DT,
            state=truth[round(10 * DT, 10)].with_acceleration(0.5),
        )
        assert rkf.on_message(newer, now) is not None
        assert rkf.on_message(older, now) is None
        assert rkf.replay_count == 1

    def test_future_message_rejected(self):
        rkf = _rkf()
        self._drive(rkf, n=5)
        future = Message(
            sender=1,
            stamp=100.0,
            state=VehicleState(position=0.0, velocity=0.0),
        )
        with pytest.raises(ReplayError):
            rkf.on_message(future, 0.5)

    def test_message_beyond_horizon_ignored(self):
        rkf = ReplayKalmanFilter(KalmanFilter(DT, BOUNDS), history_horizon=1.0)
        self._drive(rkf, n=30)  # posterior at 2.9 s
        stale = Message(
            sender=1,
            stamp=0.0,
            state=VehicleState(position=55.0, velocity=-12.0),
        )
        assert rkf.on_message(stale, 2.9) is None

    def test_invalid_horizon_rejected(self):
        with pytest.raises(FilterError):
            ReplayKalmanFilter(KalmanFilter(DT, BOUNDS), history_horizon=0.0)

    def test_pruning_bounds_memory(self):
        rkf = ReplayKalmanFilter(KalmanFilter(DT, BOUNDS), history_horizon=0.5)
        self._drive(rkf, n=100)
        assert len(rkf._reading_times) <= 7  # 0.5 s of 0.1 s readings + slack
