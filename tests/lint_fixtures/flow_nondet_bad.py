"""Bad fixture for SFL303: unordered/environmental sources feed returns."""

import os


def active_ids(flags: dict) -> list:
    """Returns ids in set-iteration order (unordered)."""
    seen = set(flags)
    ordered = list(seen)
    return ordered


def worker_label(prefix: str) -> str:
    """Derives a result from os.environ."""
    host = os.environ["HOSTNAME"]
    return prefix + host


def collect_tagged(flags: dict) -> list:
    """Appends set-ordered elements into the returned container."""
    out = []
    tags = set(flags)
    for tag in tags:
        out.append(tag)
    return out
