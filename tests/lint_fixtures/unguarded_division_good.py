"""Good: every divisor guarded, validated, or floored."""

NEVER = float("inf")


def check_positive(value, name):
    """Stand-in for repro.utils.validation.check_positive."""
    if value <= 0:
        raise ValueError(name)
    return value


def arrival_time(distance, velocity):
    """Guard first, divide second (metres / m/s -> seconds)."""
    if velocity <= 0.0:
        return NEVER
    return distance / velocity


def rate(count, dt_c):
    """Boundary validation counts as a guard."""
    dt = check_positive(dt_c, "dt_c")
    return count / dt


def paced_speed(d_front, time_budget):
    """A nonzero floor counts as a guard; limits attributes are exempt."""
    return d_front / max(time_budget, 1e-6)
