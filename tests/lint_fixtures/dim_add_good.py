"""Good fixture for SFL100: only like dimensions are added."""


def shifted_position(position: float, velocity: float, dt: float) -> float:
    """Kinematic advance; the product restores the dimension first.

    Units: position [m], velocity [m/s], dt [s] -> [m]
    """
    return position + velocity * dt
