"""Bad fixture for SFL304: a loop-invariant pure call inside the loop."""


def _threshold(limit: float) -> float:
    """Doubles the limit (pure helper)."""
    return limit * 2.0


def capped_total(values: list, limit: float) -> float:
    """Re-evaluates the invariant threshold on every iteration."""
    total = 0.0
    for v in values:
        cap = _threshold(limit)
        total += min(float(v), cap)
    return total
