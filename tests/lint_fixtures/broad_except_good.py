"""Good: narrow handlers mapped into the library hierarchy."""


class PlannerError(Exception):
    """Stand-in for repro.errors.PlannerError."""


def evaluate(estimates, index):
    """Catch only the precise failure."""
    try:
        return estimates[index]
    except KeyError as exc:
        raise PlannerError(f"no estimate for {index}") from exc
