"""Fixture: observation values flowing into control-path calls (SFL011)."""

from repro.obs.trace import perf_now


def feeds_timing_into_planner(planner, context):
    """Bad: a wall-clock delta becomes a planner argument."""
    started = perf_now()
    elapsed = perf_now() - started
    return planner.plan(context, elapsed)


def feeds_snapshot_into_filter(estimator, obs, reading):
    """Bad: a metric snapshot value becomes a filter argument."""
    snap = obs.metrics.snapshot()
    bias = snap["counters"]["filter.replays"]
    estimator.update(reading, bias)


class Adaptive:
    """Bad: a self-held observer read steers the channel."""

    def relay(self, message):
        """Forward a message, scaled by an observed counter."""
        load = self._obs.metrics.counter_value("channel.sent")
        self._channel.send(message, load)
