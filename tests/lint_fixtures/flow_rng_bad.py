"""Bad fixture for SFL306: RNG streams threaded without a declaration."""


def jitter(value: float, rng) -> float:
    """Draws from a threaded stream but never declares draws-rng."""
    return value + float(rng.normal(0.0, 0.1))


def delegate_jitter(value: float, noise_rng) -> float:
    """Forwards a stream onward, still undeclared."""
    return jitter(value, noise_rng)
