"""Bad: divisions by possibly-zero locals in window math."""


def arrival_time(distance, velocity):
    """No guard on velocity: a stopped vehicle yields inf/nan."""
    return distance / velocity


def window_width(d_front, d_back, decel):
    """The divisor expression hides the unguarded local."""
    return (d_back - d_front) / (2.0 * decel)
