"""Bad: physical parameters with unit-less docstrings."""


def braking_distance(velocity, a_min):
    """Distance needed to stop from the current state."""
    return -0.5 * velocity * velocity / a_min


def reaches_in(distance, velocity):
    """Whether the gap closes within one horizon."""
    if velocity <= 0.0:
        return False
    return distance / velocity < 1.0
