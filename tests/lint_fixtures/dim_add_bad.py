"""Bad fixture for SFL100: adds a position to a velocity."""


def drift_total(position: float, velocity: float) -> float:
    """Meaningless sum of unlike physical quantities.

    Units: position [m], velocity [m/s]
    """
    return position + velocity
