"""Bad fixture for SFL102: passes a duration where a speed is expected."""


def braking_distance(velocity: float, decel: float) -> float:
    """Stopping distance from ``velocity`` under constant ``decel``.

    Units: velocity [m/s], decel [m/s^2] -> [m]
    """
    return 0.5 * velocity * velocity / decel


def margin_after(dt: float) -> float:
    """Passes the control period as if it were a speed.

    Units: dt [s] -> [m]
    """
    return braking_distance(dt, 3.0)
