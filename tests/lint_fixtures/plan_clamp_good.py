"""Good: every return site clamped, delegated, or a limit."""


class ClampedPlanner:
    """The codebase idiom for plan() return sites."""

    def __init__(self, limits, gain, target):
        self._limits = limits
        self._gain = gain
        self._target = target

    def plan(self, context):
        """Clip through the limits object."""
        error = self._target - context.ego.velocity
        if error < 0.0:
            return self._limits.a_min
        if context.ego.velocity == 0.0:
            return 0.0
        return self._limits.clip_acceleration(self._gain * error)


class DelegatingPlanner:
    """Delegation through self is the other sanctioned form."""

    def __init__(self, inner):
        self._inner = inner

    def plan(self, context):
        """The delegate owns the clamp."""
        return self._inner.plan(context)
