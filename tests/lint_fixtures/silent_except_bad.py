"""Bad: swallowed exceptions."""


def load_optional(path, loader):
    """The failure evidence is discarded."""
    try:
        return loader(path)
    except OSError:
        pass
    try:
        return loader(path + ".bak")
    except OSError:
        ...
    return None
