"""Bad fixture for SFL101: orders a position against a velocity."""


def past_the_line(position: float, velocity: float) -> bool:
    """Compares quantities with different dimensions.

    Units: position [m], velocity [m/s]
    """
    return position > velocity
