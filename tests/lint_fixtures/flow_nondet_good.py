"""Good fixture for SFL303: set taint laundered before every return."""


def active_ids(flags: dict) -> list:
    """Sorting erases set-iteration order before the return."""
    seen = set(flags)
    ordered = sorted(seen)
    return ordered


def flag_count(flags: dict) -> int:
    """Aggregates over a set; the count is order-independent."""
    seen = set(flags)
    return len(seen)


def collect_tagged(flags: dict) -> list:
    """Iterates the dict itself (insertion-ordered, deterministic)."""
    out = []
    for tag in flags:
        out.append(tag)
    return out
