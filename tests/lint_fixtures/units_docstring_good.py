"""Good: units stated at every public physical API."""


def braking_distance(velocity, a_min):
    """Stopping distance in metres (velocity in m/s, a_min in m/s^2)."""
    return -0.5 * velocity * velocity / a_min


def _internal_helper(velocity):
    """Private helpers are out of scope."""
    return velocity * 2.0


def label(name, count=0):
    """No physical parameters, no units needed."""
    return f"{name}:{count}"
