"""Good fixture for SFL306: every stream-threading function declares it."""


def jitter(value: float, rng) -> float:
    """Draws from a threaded stream and says so.

    Effects: draws-rng
    """
    return value + float(rng.normal(0.0, 0.1))


def delegate_jitter(value: float, noise_rng) -> float:
    """Forwards a stream onward, declared.

    Effects: draws-rng
    """
    return jitter(value, noise_rng)


def scale(value: float) -> float:
    """No stream parameter, nothing to declare."""
    return value * 2.0
