"""Good: exact sentinels and integer step comparisons."""

import math

NEVER = math.inf


def schedule_hit(step, message_every):
    """Integer step arithmetic, the sanctioned idiom."""
    return step % message_every == 0


def window_closed(entry, velocity):
    """Zero and inf sentinels are exact by construction."""
    if velocity == 0.0:
        return True
    return entry == NEVER or entry == math.inf
