"""Bad fixture for SFL202: a reduction axis outside the known rank."""

import numpy as np


def per_scenario_total(samples: np.ndarray) -> np.ndarray:
    """Reduces a rank-2 batch along a third axis it does not have.

    Shapes: samples [B, 2] -> array
    """
    return np.sum(samples, axis=2)
