"""Bad fixture for SFL204: public array APIs without declared shapes."""

import numpy as np


def normalize(samples: np.ndarray) -> np.ndarray:
    """No ``Shapes:`` line — the pass is blind at every call site."""
    return samples / np.sum(samples)
