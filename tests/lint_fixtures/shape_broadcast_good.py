"""Good fixture for SFL201: broadcasts that match an operand."""

import numpy as np


def innovation(measured: np.ndarray) -> np.ndarray:
    """Reshapes the measurement to the prediction's orientation first.

    Shapes: measured [2] -> [2, 1]
    """
    predicted = np.zeros((2, 1))
    return predicted - measured.reshape(2, 1)


def add_bias(activations: np.ndarray) -> np.ndarray:
    """A one-sided stretch (bias add) is the idiomatic broadcast.

    Shapes: activations [B, 2] -> [B, 2]
    """
    bias = np.zeros(2)
    return activations + bias
