"""Good fixture for SFL101: comparisons stay within one dimension."""


def past_the_line(position: float, p_front: float) -> bool:
    """Both sides of the comparison are positions.

    Units: position [m], p_front [m]
    """
    return position > p_front
