"""Bad: wall-clock reads inside the sim core."""

import time
from datetime import datetime
from time import perf_counter


def step_stamp():
    """Machine-dependent timestamps."""
    started = time.time()
    ticked = time.monotonic()
    label = datetime.now()
    return started, ticked, perf_counter(), label
