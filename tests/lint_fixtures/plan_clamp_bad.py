"""Bad: plan() returns raw arithmetic."""


class ProportionalPlanner:
    """Tracks a speed with no output clamp."""

    def __init__(self, gain, target):
        self._gain = gain
        self._target = target

    def plan(self, context):
        """Unclamped command can exceed [a_min, a_max]."""
        error = self._target - context.ego.velocity
        return self._gain * error
