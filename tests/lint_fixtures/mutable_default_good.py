"""Good: None defaults built in the body."""


def collect(value, into=None):
    """Fresh list per call."""
    if into is None:
        into = []
    into.append(value)
    return into


def scale(value, factor=1.0, label=""):
    """Immutable defaults are fine."""
    return value * factor, label
