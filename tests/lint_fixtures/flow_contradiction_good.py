"""Good fixture for SFL305: declarations that match the inference."""


def log_and_scale(value: float) -> float:
    """Declares exactly what it does.

    Effects: does-io
    """
    print(f"scaling {value}")
    return value * 2.0


def scale(value: float) -> float:
    """A true purity claim.

    Effects: pure
    """
    return value * 2.0


def scale_and_record(value: float) -> float:
    """Inherits the callee's declared effect and declares it too.

    Effects: does-io
    """
    log_and_scale(value)
    return value * 2.0
