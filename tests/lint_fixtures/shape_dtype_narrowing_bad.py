"""Bad fixture for SFL203: accumulating float64 into a float32 buffer."""

import numpy as np


def accumulate(updates: np.ndarray) -> np.ndarray:
    """Every ``+=`` silently truncates the wide increments.

    Shapes: updates [4; f8] -> [4; f4]
    """
    total = np.zeros(4, dtype=np.float32)
    total += updates
    return total
