"""Bad fixture for SFL104: a ``Units:`` directive that does not parse."""


def clearance(distance: float) -> float:
    """Front-line clearance.

    Units: distance [meters]
    """
    return distance
