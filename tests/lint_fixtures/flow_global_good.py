"""Good fixture for SFL301: episode state is threaded, never global."""


def _bump(counts: dict) -> None:
    """Tallies a step in caller-owned state.

    Effects: mutates-args
    """
    counts["steps"] += 1


def run_episode(steps: int) -> int:
    """Runs one fake episode; every mutation targets local state."""
    counts = {"steps": 0}
    total = 0
    for _ in range(steps):
        _bump(counts)
        total += 1
    return total
