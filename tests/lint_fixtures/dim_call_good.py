"""Good fixture for SFL102: arguments match the declared parameter units."""


def braking_distance(velocity: float, decel: float) -> float:
    """Stopping distance from ``velocity`` under constant ``decel``.

    Units: velocity [m/s], decel [m/s^2] -> [m]
    """
    return 0.5 * velocity * velocity / decel


def margin_after(velocity: float) -> float:
    """Passes a genuine speed.

    Units: velocity [m/s] -> [m]
    """
    return braking_distance(velocity, 3.0)
