"""Fixture: the sanctioned write-only observability idiom (SFL011)."""


def traced_step(obs, planner, context):
    """Good: spans and counters wrap the control call, never feed it."""
    handle = obs.begin("engine.plan", step=context.step) if obs.enabled else -1
    command = planner.plan(context)
    if obs.enabled:
        obs.end(handle)
        obs.count("engine.planned_steps")
        obs.gauge("shield.margin", command.margin)
        obs.observe("engine.accel", command.acceleration)
    return command


def passes_observer_through(engine, scenario, obs):
    """Good: handing the observer object itself downstream is sanctioned."""
    return engine.run(scenario, observer=obs)


class Instrumented:
    """Good: a self-held observer used strictly through the write API."""

    def relay(self, message):
        """Forward a message, counting it on the way."""
        delivered = self._channel.send(message)
        if self._obs.enabled:
            self._obs.count("channel.sent")
            self._obs.instant("channel.relay", stamp=message.stamp)
        return delivered
