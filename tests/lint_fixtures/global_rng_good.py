"""Good: injected generators from one seed tree."""

import numpy as np


def jitter(value, rng):
    """Draw from the injected stream only."""
    return value + rng.normal(0.0, 1.0)


def make_rng(seed):
    """Constructing generators is the sanctioned API."""
    seq = np.random.SeedSequence(seed)
    return np.random.default_rng(seq)
