"""Good fixture for SFL104: the ``Units:`` directive follows the grammar."""


def clearance(distance: float) -> float:
    """Front-line clearance.

    Units: distance [m] -> [m]
    """
    return distance
