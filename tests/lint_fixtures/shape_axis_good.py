"""Good fixture for SFL202: reduction axes inside the rank."""

import numpy as np


def per_scenario_total(samples: np.ndarray) -> np.ndarray:
    """Sums the feature axis, keeping one total per scenario.

    Shapes: samples [B, 2] -> [B]
    """
    return np.sum(samples, axis=1)


def batch_total(samples: np.ndarray) -> np.ndarray:
    """Negative axes that resolve inside the rank are fine too.

    Shapes: samples [B, 2] -> [B]
    """
    return np.sum(samples, axis=-1)
