"""Good: declarative JSON persistence."""

import json


def load_model(path):
    """Data in, data out; nothing executes."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
