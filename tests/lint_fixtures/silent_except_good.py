"""Good: failures handled or propagated with context."""


def load_optional(path, loader, fallback):
    """An explicit fallback is a handled error, not a swallowed one."""
    try:
        return loader(path)
    except OSError as exc:
        return fallback(path, exc)
