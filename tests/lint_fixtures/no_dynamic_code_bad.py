"""Bad: dynamic code execution and pickle persistence."""

import pickle


def load_model(path, expression):
    """Executes arbitrary code twice over."""
    with open(path, "rb") as handle:
        model = pickle.load(handle)
    threshold = eval(expression)
    return model, threshold
