"""Bad fixture for SFL201: a silent mutual broadcast.

``(2, 1) - (2,)`` explodes to ``(2, 2)`` — every element of the result
is a cross-term matching neither operand, and numpy raises nothing.
"""

import numpy as np


def innovation(measured: np.ndarray) -> np.ndarray:
    """Subtracts a flat measurement from a column prediction.

    Shapes: measured [2] -> array
    """
    predicted = np.zeros((2, 1))
    return predicted - measured
