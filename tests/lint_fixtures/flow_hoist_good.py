"""Good fixture for SFL304: invariant pure calls hoisted above loops."""


def _threshold(limit: float) -> float:
    """Doubles the limit (pure helper)."""
    return limit * 2.0


def capped_total(values: list, limit: float) -> float:
    """Evaluates the invariant threshold once, above the loop."""
    cap = _threshold(limit)
    total = 0.0
    for v in values:
        total += min(float(v), cap)
    return total


def scaled_total(values: list, limit: float) -> float:
    """A loop-varying call argument is not hoistable (and not flagged)."""
    total = 0.0
    for v in values:
        scaled = _threshold(limit + float(v))
        total += scaled
    return total
