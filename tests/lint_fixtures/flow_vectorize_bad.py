"""Bad fixture for SFL300: numpy dispatched once per loop element."""

import numpy as np


def clamp_all(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Clamps each sample with one numpy call per element.

    Shapes: values [N] -> [N]
    """
    out = np.empty_like(values)
    for i, v in enumerate(values):
        out[i] = np.clip(v, lo, hi)
    return out


def total_magnitude(values: np.ndarray) -> float:
    """Sums absolute values, indexing one element per iteration.

    Shapes: values [N] -> scalar
    """
    total = 0.0
    for i in range(len(values)):
        total = total + float(np.abs(values[i]))
    return total
