"""Good fixture for SFL300: whole-array numpy calls, no per-element loop."""

import numpy as np


def clamp_all(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Clamps every sample in one batched call.

    Shapes: values [N] -> [N]
    """
    return np.clip(values, lo, hi)


def total_magnitude(values: np.ndarray) -> float:
    """Sums absolute values in one reduction.

    Shapes: values [N] -> scalar
    """
    return float(np.sum(np.abs(values)))


def running_total(values: np.ndarray) -> float:
    """A sequential-dependence loop that never calls numpy per element.

    Shapes: values [N] -> scalar
    """
    total = 0.0
    for v in values:
        total = 0.5 * total + float(v)
    return total
