"""Bad fixture for SFL200: a transposed gain that can never contract."""

import numpy as np


def update_state(state: np.ndarray) -> np.ndarray:
    """Applies the observation matrix transposed, so the inner extents
    are 1 vs 2 and the contraction is impossible.

    Shapes: state [2, 1] -> [2, 1]
    """
    h = np.array([[1.0, 0.0]])
    return h.T @ state
