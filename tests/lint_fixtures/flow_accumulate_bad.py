"""Bad fixture for SFL302: append-per-iteration then np.array."""

import numpy as np


def sample_grid(n: int) -> np.ndarray:
    """Builds a length-n grid by appending, then materializes it.

    Shapes: -> [N]
    """
    samples = []
    for i in range(n):
        samples.append(float(i) * 0.1)
    return np.asarray(samples, dtype=float)


class Recorder:
    """The class-level triad: init-[], appending method, converter."""

    def __init__(self) -> None:
        self._values: list = []

    def record(self, value: float) -> None:
        """Appends one sample per call."""
        self._values.append(float(value))

    def values(self) -> np.ndarray:
        """Materializes the accumulated samples.

        Shapes: -> [N]
        """
        return np.asarray(self._values, dtype=float)
