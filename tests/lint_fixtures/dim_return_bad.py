"""Bad fixture for SFL103: returns m^2/s^3 from a function declared [s]."""


def stopping_time(velocity: float, decel: float) -> float:
    """Multiplies where it should divide.

    Units: velocity [m/s], decel [m/s^2] -> [s]
    """
    return velocity * decel
