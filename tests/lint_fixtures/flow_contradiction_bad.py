"""Bad fixture for SFL305: Effects declarations the inference refutes."""


def log_and_scale(value: float) -> float:
    """Claims purity while printing.

    Effects: pure
    """
    print(f"scaling {value}")
    return value * 2.0


def scale_quietly(value: float) -> float:
    """Declares an effect keyword outside the vocabulary.

    Effects: draws-entropy
    """
    return value * 2.0


def _write_log(value: float) -> None:
    """Undeclared helper whose IO leaks through callers' declarations."""
    print(f"value={value}")


def scale_and_record(value: float) -> float:
    """Contradicted transitively: the callee does the printing.

    Effects: pure
    """
    _write_log(value)
    return value * 2.0
