"""Good fixture for SFL103: the returned expression matches the declaration."""


def stopping_time(velocity: float, decel: float) -> float:
    """``v / a`` is a duration.

    Units: velocity [m/s], decel [m/s^2] -> [s]
    """
    return velocity / decel
