"""Good fixture for SFL200: inner extents contract as declared."""

import numpy as np


def observe_state(state: np.ndarray) -> np.ndarray:
    """Projects the column state through the observation matrix.

    Shapes: state [2, 1] -> [1, 1]
    """
    h = np.array([[1.0, 0.0]])
    return h @ state
