"""Good fixture for SFL105: every physical parameter declares its unit."""


def advance(position, velocity, dt):
    """Kinematic step.

    Units: position [m], velocity [m/s], dt [s] -> [m]
    """
    return position + velocity * dt
