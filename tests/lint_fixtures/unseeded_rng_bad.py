"""Bad fixture for SFL012: generators constructed without a seed."""

import random

import numpy as np


def sample_disturbance() -> float:
    """Draws from a generator seeded by OS entropy (not re-runnable)."""
    rng = np.random.default_rng()
    return float(rng.uniform(-1.0, 1.0))


def sample_latency() -> float:
    """``seed=None`` spelled out is the same entropy pull."""
    rng = random.Random(None)
    return rng.random()
