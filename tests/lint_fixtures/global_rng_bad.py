"""Bad: global-state randomness."""

import random

import numpy as np
from random import uniform


def jitter(value):
    """Draws from hidden global streams."""
    np.random.seed(0)
    noisy = value + np.random.normal(0.0, 1.0)
    return noisy + random.random() + uniform(-1.0, 1.0)
