"""Bad fixture for SFL205: values contradicting declared shapes.

Both bugs below are layout disagreements a type checker cannot see:
a row vector fed where a column state is declared, and one symbolic
dim bound to two different extents in a single call.
"""

import numpy as np


def advance(state: np.ndarray) -> np.ndarray:
    """One kinematic step of the column state.

    Shapes: state [2, 1] -> [2, 1]
    """
    f = np.array([[1.0, 0.1], [0.0, 1.0]])
    return f @ state


def advance_row_state() -> np.ndarray:
    """Feeds a row vector where the column state is declared.

    Shapes: -> [2, 1]
    """
    state = np.zeros((1, 2))
    return advance(state)


def weighted_residual(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Elementwise weighting; both operands share the length ``N``.

    Shapes: values [N], weights [N] -> [N]
    """
    return values * weights


def mismatched_lengths() -> np.ndarray:
    """Binds ``N`` to 3 and 4 in the same call.

    Shapes: -> [3]
    """
    return weighted_residual(np.zeros(3), np.zeros(4))
