"""Bad fixture for SFL105: physical parameters without unit declarations."""


def advance(position, velocity, dt):
    """Kinematic step with no machine-checkable units."""
    return position + velocity * dt
