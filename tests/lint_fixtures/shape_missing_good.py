"""Good fixture for SFL204: every public array API declares shapes."""

import numpy as np


def normalize(samples: np.ndarray) -> np.ndarray:
    """Scales the sample vector to unit sum.

    Shapes: samples [N] -> [N]
    """
    return samples / np.sum(samples)


def _internal_scratch(buffer: np.ndarray) -> np.ndarray:
    """Private helpers are outside the public-API contract."""
    return buffer
