"""Bad fixture for SFL301: run_episode reaches a module-global mutator."""

_call_counts = {"steps": 0}


def _bump() -> None:
    """Tallies a step in module-global state (the violation)."""
    _call_counts["steps"] += 1


def run_episode(steps: int) -> int:
    """Runs one fake episode whose call tree mutates a module global."""
    total = 0
    for _ in range(steps):
        _bump()
        total += 1
    return total
