"""Good fixture for SFL205: callers honour the declared shapes."""

import numpy as np


def advance(state: np.ndarray) -> np.ndarray:
    """One kinematic step of the column state.

    Shapes: state [2, 1] -> [2, 1]
    """
    f = np.array([[1.0, 0.1], [0.0, 1.0]])
    return f @ state


def advance_column_state() -> np.ndarray:
    """Feeds the declared column orientation.

    Shapes: -> [2, 1]
    """
    state = np.zeros((2, 1))
    return advance(state)


def weighted_residual(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Elementwise weighting; both operands share the length ``N``.

    Shapes: values [N], weights [N] -> [N]
    """
    return values * weights


def consistent_lengths() -> np.ndarray:
    """Binds ``N`` to the same extent on both arguments.

    Shapes: -> [3]
    """
    return weighted_residual(np.zeros(3), np.zeros(3))
