"""Bad: broad exception handling in a critical package."""


def evaluate(monitor, context):
    """Swallow-everything monitoring."""
    try:
        return monitor.evaluate(context)
    except Exception:
        return None


def evaluate_bare(monitor, context):
    """Bare except is worse still."""
    try:
        return monitor.evaluate(context)
    except:  # noqa: E722
        return None
