"""Good fixture for SFL012: every generator descends from a seed."""

import random

import numpy as np


def sample_disturbance(seed: int) -> float:
    """Draws from an explicitly seeded generator."""
    rng = np.random.default_rng(seed)
    return float(rng.uniform(-1.0, 1.0))


def sample_latency() -> float:
    """A literal seed keeps the draw re-runnable."""
    rng = random.Random(1234)
    return rng.random()


def spawned_stream(seed_seq: np.random.SeedSequence) -> np.random.Generator:
    """Seeding from a spawned SeedSequence also counts."""
    return np.random.default_rng(seed_seq)
