"""Bad: float equality on kinematic quantities."""


def schedule_hit(time, next_message_time):
    """Drift-prone exact timestamp comparison."""
    if time == next_message_time:
        return True
    return time != next_message_time


def window_closed(entry, exit_, position, target):
    """More drifting equalities."""
    return entry == exit_ or position == target
