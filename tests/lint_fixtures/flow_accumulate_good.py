"""Good fixture for SFL302: preallocation instead of append-then-array."""

import numpy as np


def sample_grid(n: int) -> np.ndarray:
    """Builds a length-n grid into a preallocated array.

    Shapes: -> [N]
    """
    samples = np.empty(n, dtype=float)
    for i in range(n):
        samples[i] = float(i) * 0.1
    return samples


class Recorder:
    """Stores samples in a preallocated array, no list detour."""

    def __init__(self, capacity: int) -> None:
        self._values = np.empty(capacity, dtype=float)
        self._filled = 0

    def record(self, value: float) -> None:
        """Writes one sample per call into the preallocated slot."""
        self._values[self._filled] = float(value)
        self._filled += 1

    def values(self) -> np.ndarray:
        """The filled prefix of the buffer.

        Shapes: -> [N]
        """
        return self._values[: self._filled]
