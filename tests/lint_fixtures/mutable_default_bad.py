"""Bad: shared mutable defaults."""


def collect(value, into=[]):
    """The default list is shared across every call."""
    into.append(value)
    return into


def tally(key, counts={}):
    """Shared dict default."""
    counts[key] = counts.get(key, 0) + 1
    return counts


def bucket(value, seen=set()):
    """Shared set default via constructor."""
    seen.add(value)
    return seen
