"""Good: simulated time from the step index."""


def step_stamp(step, dt_c):
    """Deterministic timestamp, in seconds."""
    return step * dt_c


def is_message_step(step, message_every):
    """Integer schedule alignment."""
    return step % message_every == 0
