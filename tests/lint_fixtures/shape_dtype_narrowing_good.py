"""Good fixture for SFL203: the accumulator is at least as wide."""

import numpy as np


def accumulate(updates: np.ndarray) -> np.ndarray:
    """A float64 accumulator absorbs float64 increments losslessly.

    Shapes: updates [4; f8] -> [4; f8]
    """
    total = np.zeros(4)
    total += updates
    return total


def accumulate_narrow(updates: np.ndarray) -> np.ndarray:
    """Like-width accumulation is fine too.

    Shapes: updates [4; f4] -> [4; f4]
    """
    total = np.zeros(4, dtype=np.float32)
    total += updates
    return total
