"""Tests for demonstration generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.planners.factory import build_expert
from repro.planners.training_data import (
    DemonstrationConfig,
    generate_demonstrations,
)
from repro.utils.rng import RngStream


@pytest.fixture(scope="module")
def expert(scenario_module):
    return build_expert(
        "conservative",
        scenario_module.geometry,
        scenario_module.ego_limits,
        scenario_module.oncoming_limits,
    )


@pytest.fixture(scope="module")
def scenario_module():
    from repro.scenarios.left_turn.scenario import LeftTurnScenario

    return LeftTurnScenario()


class TestConfigValidation:
    def test_zero_everything_rejected(self):
        with pytest.raises(ConfigurationError):
            DemonstrationConfig(n_random=0, n_rollouts=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            DemonstrationConfig(n_random=-1)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            DemonstrationConfig(empty_window_fraction=1.5)


class TestGeneration:
    def test_shapes(self, expert):
        cfg = DemonstrationConfig(n_random=50, n_rollouts=2)
        x, y = generate_demonstrations(expert, cfg, RngStream(0))
        assert x.ndim == 2 and x.shape[1] == 5
        assert y.shape == (x.shape[0], 1)
        assert x.shape[0] >= 50

    def test_random_only(self, expert):
        cfg = DemonstrationConfig(n_random=30, n_rollouts=0)
        x, y = generate_demonstrations(expert, cfg, RngStream(1))
        assert x.shape[0] == 30

    def test_rollout_only(self, expert):
        cfg = DemonstrationConfig(n_random=0, n_rollouts=2)
        x, y = generate_demonstrations(expert, cfg, RngStream(2))
        assert x.shape[0] > 0

    def test_labels_within_actuation_limits(self, expert):
        cfg = DemonstrationConfig(n_random=100, n_rollouts=2)
        _, y = generate_demonstrations(expert, cfg, RngStream(3))
        assert np.all(y >= expert.limits.a_min - 1e-9)
        assert np.all(y <= expert.limits.a_max + 1e-9)

    def test_reproducible(self, expert):
        cfg = DemonstrationConfig(n_random=40, n_rollouts=1)
        x1, y1 = generate_demonstrations(expert, cfg, RngStream(4))
        x2, y2 = generate_demonstrations(expert, cfg, RngStream(4))
        assert np.allclose(x1, x2)
        assert np.allclose(y1, y2)

    def test_different_seeds_differ(self, expert):
        cfg = DemonstrationConfig(n_random=40, n_rollouts=0)
        x1, _ = generate_demonstrations(expert, cfg, RngStream(5))
        x2, _ = generate_demonstrations(expert, cfg, RngStream(6))
        assert not np.allclose(x1, x2)

    def test_empty_windows_present(self, expert):
        from repro.planners.nn_planner import WINDOW_PAST

        cfg = DemonstrationConfig(
            n_random=200, n_rollouts=0, empty_window_fraction=0.5
        )
        x, _ = generate_demonstrations(expert, cfg, RngStream(7))
        n_empty = int(np.sum(x[:, 3] == WINDOW_PAST))
        assert 50 < n_empty < 150
