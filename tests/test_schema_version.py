"""Schema versioning of persisted records.

The contract: records carry ``schema_version = "<major>.<minor>"``;
unknown fields from a newer *minor* are ignored, a different *major* is
rejected with a clear error, and records written before versioning
existed (no field at all) load as 1.0.
"""

from __future__ import annotations

import pytest

from repro.campaign.manifest import CampaignManifest
from repro.errors import SerializationError
from repro.sim.results import FailureRecord, Outcome, SimulationResult
from repro.sim.serialization import (
    SCHEMA_VERSION,
    check_schema_version,
    failure_from_dict,
    failure_to_dict,
    result_from_dict,
    result_to_dict,
)


def _result_record(**overrides):
    record = result_to_dict(
        SimulationResult(outcome=Outcome.REACHED, reaching_time=5.0, steps=100)
    )
    record.update(overrides)
    return record


def _manifest_record(**overrides):
    record = CampaignManifest(
        name="m",
        scenario={"kind": "left_turn"},
        comm={},
        planner={"kind": "full_brake"},
        n_sims=4,
        seed=0,
        chunk_size=2,
    ).to_dict()
    record.update(overrides)
    return record


class TestCheckSchemaVersion:
    def test_current_version_accepted(self):
        assert check_schema_version(
            {"schema_version": SCHEMA_VERSION}, "record"
        ) == (1, 0)

    def test_missing_version_reads_as_1_0(self):
        assert check_schema_version({}, "record") == (1, 0)

    def test_newer_minor_accepted(self):
        assert check_schema_version({"schema_version": "1.7"}, "record") == (
            1,
            7,
        )

    def test_other_major_rejected_with_clear_error(self):
        for version in ("0.9", "2.0"):
            with pytest.raises(SerializationError) as excinfo:
                check_schema_version({"schema_version": version}, "my record")
            message = str(excinfo.value)
            assert "my record" in message
            assert "major" in message
            assert SCHEMA_VERSION in message

    def test_malformed_version_rejected(self):
        for version in ("one.zero", "1", "", "1.x"):
            with pytest.raises(SerializationError, match="malformed"):
                check_schema_version({"schema_version": version}, "record")


class TestForwardCompatibility:
    """A newer minor writer adds fields; this reader must not choke."""

    def test_result_unknown_fields_ignored(self):
        record = _result_record(
            schema_version="1.3",
            fuel_consumed=1.25,
            lane_changes=[1, 2],
        )
        restored = result_from_dict(record)
        assert restored.outcome is Outcome.REACHED
        assert restored.reaching_time == 5.0

    def test_result_other_major_rejected(self):
        with pytest.raises(SerializationError, match="major"):
            result_from_dict(_result_record(schema_version="2.0"))

    def test_result_preversioning_record_loads(self):
        record = _result_record()
        del record["schema_version"]
        assert result_from_dict(record).steps == 100

    def test_failure_roundtrip_and_unknown_fields(self):
        failure = FailureRecord(
            index=3, stage="worker", error_type="OSError", message="boom",
            attempts=2,
        )
        record = failure_to_dict(failure)
        assert record["schema_version"] == SCHEMA_VERSION
        record["schema_version"] = "1.9"
        record["hostname"] = "node-17"
        assert failure_from_dict(record) == failure

    def test_failure_other_major_rejected(self):
        record = failure_to_dict(
            FailureRecord(index=0, stage="timeout", error_type="T", message="")
        )
        record["schema_version"] = "3.0"
        with pytest.raises(SerializationError, match="major"):
            failure_from_dict(record)

    def test_manifest_unknown_fields_ignored(self):
        record = _manifest_record(schema_version="1.2", priority="high")
        manifest = CampaignManifest.from_dict(record)
        assert manifest.name == "m"
        assert manifest.n_sims == 4

    def test_manifest_other_major_rejected(self):
        with pytest.raises(SerializationError, match="major"):
            CampaignManifest.from_dict(_manifest_record(schema_version="2.0"))
