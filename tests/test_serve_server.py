"""The decision server: ladder walking, admission, probes, drain.

Each test runs a real :class:`~repro.serve.server.DecisionServer` on a
unix socket (TCP once, for the binding path) and drives it with the
blocking client from worker threads — the same topology as a real
deployment.  Chaos is injected by wrapping the *planner unit* with the
:mod:`repro.faults` decorators, because faults inside the compound are
absorbed by the shield itself (see ``test_serve_ladder``).
"""

import asyncio
import socket

import pytest

from repro.faults.plan import (
    PlannerFault,
    PlannerFaultKind,
    PlannerFaultSeverity,
    StepWindow,
)
from repro.faults.planner_wrapper import FaultyPlanner, StallingPlanner
from repro.serve.client import ServeClient
from repro.serve.protocol import decode_line
from repro.serve.server import DecisionServer, ServeConfig

from tests.serve_helpers import (
    SCENARIO,
    assert_response_safe,
    ladder_factory,
    leader_report,
    run_server_test,
    session_factory,
)

EGO = {"position": 0.0, "velocity": 20.0}


def _raising_wrap(severity, window=StepWindow(0, 1)):
    def wrap(planner):
        return FaultyPlanner(
            planner,
            faults=(
                PlannerFault(
                    window=window,
                    kind=PlannerFaultKind.EXCEPTION,
                    severity=severity,
                ),
            ),
        )

    return wrap


def _stalling_wrap(seconds):
    def wrap(planner):
        return StallingPlanner(planner, seconds)

    return wrap


class TestRoundtrip:
    def test_probes_and_full_decision(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    assert client.ping()["event"] == "pong"
                    health = client.health()
                    assert health["event"] == "health"
                    assert health["status"] == "serving"
                    assert health["ready"] is True
                    return client.decide(
                        1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                    )

            response = await asyncio.to_thread(work)
            assert response["event"] == "decision"
            assert response["status"] == "ok"
            assert response["ladder"] == 1
            assert response["cause"] == "nn"
            assert response["retries"] == 0
            assert response["elapsed_ms"] <= response["deadline_ms"]
            assert_response_safe(response)

        run_server_test(body, tmp_path)

    def test_tcp_binding_roundtrip(self):
        async def scenario():
            server = DecisionServer(ladder_factory(), session_factory())
            await server.start(host="127.0.0.1", port=0)
            port = server.tcp_port()
            try:

                def work():
                    with ServeClient(port=port) as client:
                        return client.decide(
                            1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                        )

                response = await asyncio.to_thread(work)
                assert response["status"] == "ok"
                assert_response_safe(response)
            finally:
                await server.drain()

        asyncio.run(scenario())

    def test_pipelined_requests_answered_in_order(self, tmp_path):
        async def body(server, path):
            def work():
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(5.0)
                sock.connect(path)
                try:
                    stream = sock.makefile("rb")
                    batch = b""
                    for i in range(5):
                        batch += (
                            b'{"op": "decide", "id": %d, "time": 1.0, '
                            b'"ego": {"position": 0.0, "velocity": 20.0}, '
                            b'"messages": [{"vehicle": 1, "stamp": 0.95, '
                            b'"position": 60.0, "velocity": 15.0}]}\n'
                            % i
                        )
                    sock.sendall(batch)
                    return [decode_line(stream.readline()) for _ in range(5)]
                finally:
                    sock.close()

            replies = await asyncio.to_thread(work)
            assert [r["id"] for r in replies] == [0, 1, 2, 3, 4]
            for reply in replies:
                assert_response_safe(reply)

        run_server_test(body, tmp_path)


class TestLevel3:
    def test_no_state_brakes_with_stop_position(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    return client.decide(1.0, EGO)

            response = await asyncio.to_thread(work)
            assert response["status"] == "degraded"
            assert response["ladder"] == 3
            assert response["cause"] == "no-state"
            expected = 20.0**2 / (2.0 * -SCENARIO.ego_limits.a_min)
            assert response["stop_position"] == pytest.approx(expected)
            assert_response_safe(response)

        run_server_test(body, tmp_path)

    def test_stale_state_brakes(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    first = client.decide(
                        1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                    )
                    late = client.decide(3.0, EGO)
                    return first, late

            first, late = await asyncio.to_thread(work)
            assert first["status"] == "ok"
            assert late["status"] == "degraded"
            assert late["ladder"] == 3
            assert late["cause"] == "stale-state"
            assert_response_safe(late)

        run_server_test(body, tmp_path, max_state_age=1.0)

    def test_malformed_decide_brakes(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    return client.request(
                        {"op": "decide", "id": 9, "time": "never", "ego": EGO}
                    )

            response = await asyncio.to_thread(work)
            assert response["event"] == "decision"
            assert response["status"] == "degraded"
            assert response["cause"] == "malformed"
            assert response["ladder"] == 3
            assert_response_safe(response)
            assert server.observer.metrics.counter_value("serve.malformed") == 1

        run_server_test(body, tmp_path)

    def test_undecodable_line_still_answers_safely(self, tmp_path):
        async def body(server, path):
            def work():
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(5.0)
                sock.connect(path)
                try:
                    stream = sock.makefile("rb")
                    sock.sendall(b"this is not json\n")
                    return decode_line(stream.readline())
                finally:
                    sock.close()

            reply = await asyncio.to_thread(work)
            assert reply["event"] == "error"
            assert reply["ladder"] == 3
            assert_response_safe(reply)
            stats = server.stats()
            assert stats["protocol_errors"] == 1
            # protocol errors are answered but not *offered* decisions
            assert stats["offered"] == 0

        run_server_test(body, tmp_path)

    def test_unknown_op_answers_safely(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    return client.request({"op": "teleport", "id": 3})

            reply = await asyncio.to_thread(work)
            assert reply["event"] == "error"
            assert reply["id"] == 3
            assert "teleport" in reply["error"]
            assert_response_safe(reply)

        run_server_test(body, tmp_path)


class TestDeadline:
    def test_hung_planner_degrades_restarts_and_tracks_stall(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    response = client.decide(
                        1.0,
                        EGO,
                        reports=[leader_report(0.95, 60.0, 15.0)],
                        deadline_ms=50.0,
                    )
                    health = client.health()
                    return response, health

            response, health = await asyncio.to_thread(work)
            assert response["status"] == "degraded"
            assert response["ladder"] == 2
            assert response["cause"] == "deadline"
            assert response["elapsed_ms"] >= 50.0
            assert_response_safe(response)
            # the hung call was abandoned off the reply path ...
            assert health["stalled_workers"] >= 1
            stats = server.stats()
            assert stats["deadline_misses"] >= 1
            # ... and the wedged planner was retired
            assert stats["planner_restarts"] == 1
            # the stall eventually dies and the worker is reclaimed
            await asyncio.sleep(0.45)
            assert server.stalled_workers() == 0

        run_server_test(body, tmp_path, wrap=_stalling_wrap(0.4))


class TestPlannerFaults:
    def test_transient_fault_retried_to_success(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    return client.decide(
                        1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                    )

            response = await asyncio.to_thread(work)
            assert response["status"] == "ok"
            assert response["ladder"] == 1
            assert response["retries"] == 1
            assert_response_safe(response)
            stats = server.stats()
            assert stats["retries"] == 1
            assert stats["planner_restarts"] == 0

        run_server_test(
            body,
            tmp_path,
            wrap=_raising_wrap(PlannerFaultSeverity.TRANSIENT),
        )

    def test_transient_faults_exhaust_retry_budget(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    return client.decide(
                        1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                    )

            response = await asyncio.to_thread(work)
            assert response["status"] == "degraded"
            assert response["ladder"] == 2
            assert response["cause"] == "planner-transient"
            assert response["retries"] == 1
            assert_response_safe(response)

        run_server_test(
            body,
            tmp_path,
            config=ServeConfig(transient_retries=1),
            wrap=_raising_wrap(
                PlannerFaultSeverity.TRANSIENT, window=StepWindow(0, 100)
            ),
        )

    def test_fatal_fault_degrades_without_retry_and_restarts(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    return client.decide(
                        1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                    )

            response = await asyncio.to_thread(work)
            assert response["status"] == "degraded"
            assert response["ladder"] == 2
            assert response["cause"] == "planner-fatal"
            assert response["retries"] == 0
            assert_response_safe(response)
            stats = server.stats()
            assert stats["planner_restarts"] == 1
            assert stats["retries"] == 0
            metrics = server.observer.metrics
            assert (
                metrics.counter_value("serve.planner_errors", severity="fatal")
                == 1
            )

        run_server_test(
            body,
            tmp_path,
            wrap=_raising_wrap(PlannerFaultSeverity.FATAL),
        )


class TestAdmission:
    def test_overflow_is_shed_with_safe_action(self, tmp_path):
        async def body(server, path):
            first = await asyncio.to_thread(lambda: ServeClient(path=path))
            second = await asyncio.to_thread(lambda: ServeClient(path=path))
            try:
                slow = asyncio.create_task(
                    asyncio.to_thread(
                        lambda: first.decide(
                            1.0,
                            EGO,
                            reports=[leader_report(0.95, 60.0, 15.0)],
                            deadline_ms=400.0,
                        )
                    )
                )
                await asyncio.sleep(0.15)
                assert server.inflight == 1
                shed = await asyncio.to_thread(
                    lambda: second.decide(
                        1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                    )
                )
                assert shed["status"] == "shed"
                assert shed["ladder"] == 3
                assert shed["cause"] == "shed"
                assert_response_safe(shed)
                slow_response = await slow
                assert slow_response["cause"] == "deadline"
                assert_response_safe(slow_response)
                stats = server.stats()
                assert stats["offered"] == 2
                assert stats["served"] == 0
                assert stats["degraded"] == 1
                assert stats["shed"] == 1
                assert stats["shed_rate"] == pytest.approx(0.5)
            finally:
                first.close()
                second.close()

        run_server_test(
            body,
            tmp_path,
            config=ServeConfig(max_inflight=1),
            wrap=_stalling_wrap(1.0),
        )

    def test_accounting_invariant_over_mixed_workload(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    for _ in range(3):
                        response = client.decide(
                            1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                        )
                        assert_response_safe(response)
                    bad = client.request(
                        {"op": "decide", "time": float("nan")}
                    )
                    assert_response_safe(bad)
                # fresh connection: empty state store, so no-state brake
                with ServeClient(path=path) as client:
                    no_state = client.decide(1.0, EGO)
                    assert no_state["cause"] == "no-state"
                    assert_response_safe(no_state)
                    return client.stats()

            stats = await asyncio.to_thread(work)
            assert stats["offered"] == 5
            assert (
                stats["offered"]
                == stats["served"] + stats["degraded"] + stats["shed"]
            )
            assert stats["ladder"] == {"1": 3, "2": 0, "3": 2}
            assert stats["verify_replaced"] == 0
            assert stats["p50_ms"] is not None
            assert stats["p99_ms"] is not None
            assert stats["p50_ms"] <= stats["p99_ms"]

        run_server_test(body, tmp_path)


class TestDrain:
    def test_drain_sheds_new_work_then_finishes_inflight(self, tmp_path):
        async def body(server, path):
            first = await asyncio.to_thread(lambda: ServeClient(path=path))
            second = await asyncio.to_thread(lambda: ServeClient(path=path))
            try:
                slow = asyncio.create_task(
                    asyncio.to_thread(
                        lambda: first.decide(
                            1.0,
                            EGO,
                            reports=[leader_report(0.95, 60.0, 15.0)],
                            deadline_ms=700.0,
                        )
                    )
                )
                await asyncio.sleep(0.2)
                assert server.inflight == 1
                drain = asyncio.create_task(server.drain())
                await asyncio.sleep(0.1)
                assert server.draining
                refused = await asyncio.to_thread(
                    lambda: second.decide(1.5, EGO)
                )
                assert refused["status"] == "shed"
                assert refused["cause"] == "draining"
                assert refused["ladder"] == 3
                assert_response_safe(refused)
                # the inflight decision still completes (here: deadline)
                slow_response = await slow
                assert slow_response["cause"] == "deadline"
                assert_response_safe(slow_response)
                await drain
                assert server.inflight == 0
            finally:
                first.close()
                second.close()

        run_server_test(
            body,
            tmp_path,
            config=ServeConfig(drain_grace=5.0),
            wrap=_stalling_wrap(5.0),
        )
