"""Smoke tests: the shipped examples run to completion.

Each example is executed as a subprocess (the way a user runs it), with
reduced workloads where the script takes arguments.  These tests keep
the examples from rotting as the library evolves; the examples' own
``assert`` statements check their headline claims (e.g. the shielded
planner's 100 % safe rate).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    return result.stdout


class TestExamplesRun:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "100% safe" in out

    def test_signalized_crossing(self):
        out = _run("signalized_crossing.py")
        assert "crossed" in out
        assert "RED VIOLATION" in out  # the naive baseline misbehaves

    def test_car_following_shield(self):
        out = _run("car_following_shield.py", "--sims", "8")
        assert "100% safe" in out

    def test_platoon_left_turn(self):
        out = _run(
            "platoon_left_turn.py", "--sims", "6", "--vehicles", "2"
        )
        assert "disjunctive monitor" in out

    def test_information_filter_demo(self):
        out = _run("information_filter_demo.py")
        assert "reduction" in out
        assert "after the delayed message replays" in out

    def test_train_and_save_planner(self, tmp_path):
        out = _run(
            "train_and_save_planner.py", "--out", str(tmp_path / "p")
        )
        assert "bit-identical" in out

    def test_communication_disturbance(self):
        out = _run("communication_disturbance.py", "--sims", "4")
        assert "Takeaway" in out
