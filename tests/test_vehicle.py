"""Tests for the saturating double-integrator vehicle model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.errors import ConfigurationError

LIMITS = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)


class TestVehicleLimits:
    def test_valid(self):
        limits = VehicleLimits(v_min=-5.0, v_max=5.0, a_min=-1.0, a_max=1.0)
        assert limits.v_min == -5.0

    def test_reversed_velocity_rejected(self):
        with pytest.raises(ConfigurationError):
            VehicleLimits(v_min=5.0, v_max=-5.0, a_min=-1.0, a_max=1.0)

    def test_nonnegative_a_min_rejected(self):
        with pytest.raises(ConfigurationError):
            VehicleLimits(v_min=0.0, v_max=10.0, a_min=0.0, a_max=1.0)

    def test_nonpositive_a_max_rejected(self):
        with pytest.raises(ConfigurationError):
            VehicleLimits(v_min=0.0, v_max=10.0, a_min=-1.0, a_max=0.0)

    def test_clip_acceleration(self):
        assert LIMITS.clip_acceleration(100.0) == 4.0
        assert LIMITS.clip_acceleration(-100.0) == -6.0
        assert LIMITS.clip_acceleration(1.0) == 1.0

    def test_clip_velocity(self):
        assert LIMITS.clip_velocity(25.0) == 20.0
        assert LIMITS.clip_velocity(-1.0) == 0.0

    def test_admissible_velocity(self):
        assert LIMITS.admissible_velocity(10.0)
        assert not LIMITS.admissible_velocity(21.0)


class TestStep:
    def setup_method(self):
        self.model = VehicleModel(LIMITS)

    def test_exact_double_integrator(self):
        s = VehicleState(position=0.0, velocity=10.0)
        nxt = self.model.step(s, 2.0, 0.1)
        assert nxt.velocity == pytest.approx(10.2)
        assert nxt.position == pytest.approx(10.0 * 0.1 + 0.5 * 2.0 * 0.01)

    def test_zero_accel_constant_speed(self):
        s = VehicleState(position=5.0, velocity=8.0)
        nxt = self.model.step(s, 0.0, 0.5)
        assert nxt.velocity == 8.0
        assert nxt.position == pytest.approx(9.0)

    def test_command_clipped_to_limits(self):
        s = VehicleState(position=0.0, velocity=10.0)
        nxt = self.model.step(s, 100.0, 0.1)
        assert nxt.acceleration == 4.0

    def test_saturates_at_v_max(self):
        s = VehicleState(position=0.0, velocity=19.9)
        nxt = self.model.step(s, 4.0, 1.0)
        assert nxt.velocity == 20.0

    def test_saturation_position_exact(self):
        # From 19 m/s at +4: hits 20 m/s after 0.25 s covering
        # 19*0.25 + 0.5*4*0.25^2 = 4.875 m, then cruises 0.75 s at 20.
        s = VehicleState(position=0.0, velocity=19.0)
        nxt = self.model.step(s, 4.0, 1.0)
        assert nxt.position == pytest.approx(4.875 + 15.0)

    def test_saturates_at_v_min(self):
        s = VehicleState(position=0.0, velocity=1.0)
        nxt = self.model.step(s, -6.0, 1.0)
        assert nxt.velocity == 0.0
        # Stops after 1/6 s covering 1/12 m, then parked.
        assert nxt.position == pytest.approx(1.0 / 12.0)

    def test_already_at_bound_holds(self):
        s = VehicleState(position=0.0, velocity=20.0)
        nxt = self.model.step(s, 4.0, 0.5)
        assert nxt.velocity == 20.0
        assert nxt.position == pytest.approx(10.0)

    def test_parked_stays_parked_under_braking(self):
        s = VehicleState(position=3.0, velocity=0.0)
        nxt = self.model.step(s, -6.0, 1.0)
        assert nxt.velocity == 0.0
        assert nxt.position == 3.0

    def test_rejects_nonpositive_dt(self):
        s = VehicleState(position=0.0, velocity=0.0)
        with pytest.raises(ConfigurationError):
            self.model.step(s, 0.0, 0.0)


class TestSimulate:
    def test_returns_all_states(self):
        model = VehicleModel(LIMITS)
        s = VehicleState(position=0.0, velocity=5.0)
        states = model.simulate(s, [1.0, 1.0, -1.0], 0.1)
        assert len(states) == 4
        assert states[0] is s

    def test_composition_matches_single_steps(self):
        model = VehicleModel(LIMITS)
        s = VehicleState(position=0.0, velocity=5.0)
        accels = [2.0, -3.0, 0.5]
        manual = s
        for a in accels:
            manual = model.step(manual, a, 0.05)
        auto = model.simulate(s, accels, 0.05)[-1]
        assert auto.position == pytest.approx(manual.position)
        assert auto.velocity == pytest.approx(manual.velocity)


class TestCoast:
    def test_coast_position(self):
        model = VehicleModel(LIMITS)
        s = VehicleState(position=2.0, velocity=10.0)
        assert model.coast_position(s, 2.0) == pytest.approx(22.0)

    def test_coast_clips_velocity(self):
        model = VehicleModel(LIMITS)
        s = VehicleState(position=0.0, velocity=50.0)
        assert model.coast_position(s, 1.0) == pytest.approx(20.0)

    def test_negative_horizon_rejected(self):
        model = VehicleModel(LIMITS)
        with pytest.raises(ConfigurationError):
            model.coast_position(VehicleState(position=0.0, velocity=0.0), -1.0)


class TestStepProperties:
    @given(
        v0=st.floats(0.0, 20.0),
        accel=st.floats(-10.0, 10.0),
        dt=st.floats(0.01, 1.0),
    )
    @settings(max_examples=200)
    def test_velocity_always_within_limits(self, v0, accel, dt):
        model = VehicleModel(LIMITS)
        nxt = model.step(VehicleState(position=0.0, velocity=v0), accel, dt)
        assert LIMITS.v_min <= nxt.velocity <= LIMITS.v_max

    @given(
        v0=st.floats(0.0, 20.0),
        accel=st.floats(-6.0, 4.0),
        dt=st.floats(0.01, 0.2),
    )
    @settings(max_examples=200)
    def test_fine_substeps_converge_to_single_step(self, v0, accel, dt):
        """Saturation-exact integration: substeps give the same answer."""
        model = VehicleModel(LIMITS)
        s = VehicleState(position=0.0, velocity=v0)
        single = model.step(s, accel, dt)
        n = 16
        multi = s
        for _ in range(n):
            multi = model.step(multi, accel, dt / n)
        assert multi.position == pytest.approx(single.position, abs=1e-9)
        assert multi.velocity == pytest.approx(single.velocity, abs=1e-9)

    @given(v0=st.floats(0.0, 20.0), dt=st.floats(0.01, 1.0))
    @settings(max_examples=100)
    def test_position_monotone_for_forward_vehicle(self, v0, dt):
        # v_min = 0 means a forward-only vehicle never moves backwards.
        model = VehicleModel(LIMITS)
        nxt = model.step(VehicleState(position=0.0, velocity=v0), -6.0, dt)
        assert nxt.position >= 0.0
