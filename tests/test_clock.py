"""Tests for the multi-rate clock."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import MultiRateClock


class TestConstruction:
    def test_periods(self):
        clock = MultiRateClock(dt_c=0.05, dt_m=0.1, dt_s=0.2)
        assert clock.dt_c == 0.05
        assert clock.message_every == 2
        assert clock.sensor_every == 4

    def test_exact_periods_after_rounding(self):
        clock = MultiRateClock(dt_c=0.05, dt_m=0.3, dt_s=0.15)
        assert clock.dt_m == pytest.approx(0.3)
        assert clock.dt_s == pytest.approx(0.15)

    def test_non_multiple_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiRateClock(dt_c=0.05, dt_m=0.07, dt_s=0.1)

    def test_equal_periods_allowed(self):
        clock = MultiRateClock(dt_c=0.1, dt_m=0.1, dt_s=0.1)
        assert clock.message_every == 1

    def test_bad_dt_c_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiRateClock(dt_c=0.0, dt_m=0.1, dt_s=0.1)


class TestSchedule:
    def test_time_of(self):
        clock = MultiRateClock(dt_c=0.05, dt_m=0.1, dt_s=0.1)
        assert clock.time_of(0) == 0.0
        assert clock.time_of(10) == pytest.approx(0.5)

    def test_message_steps(self):
        clock = MultiRateClock(dt_c=0.05, dt_m=0.2, dt_s=0.1)
        hits = [step for step in range(12) if clock.is_message_step(step)]
        assert hits == [0, 4, 8]

    def test_sensor_steps(self):
        clock = MultiRateClock(dt_c=0.05, dt_m=0.2, dt_s=0.1)
        hits = [step for step in range(8) if clock.is_sensor_step(step)]
        assert hits == [0, 2, 4, 6]

    def test_step_zero_always_scheduled(self):
        clock = MultiRateClock(dt_c=0.05, dt_m=1.6, dt_s=0.8)
        assert clock.is_message_step(0)
        assert clock.is_sensor_step(0)

    def test_no_drift_over_long_horizons(self):
        clock = MultiRateClock(dt_c=0.05, dt_m=0.1, dt_s=0.1)
        # 10^6 steps: the schedule is integer-based, so exactly half of
        # all steps are message steps.
        hits = sum(
            1 for step in range(0, 1000, 1) if clock.is_message_step(step)
        )
        assert hits == 500
