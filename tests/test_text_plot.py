"""Tests for the terminal plotting helpers."""

import math

import pytest

from repro.analysis.text_plot import histogram, line_chart, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3])
        assert out[0] == "▁"
        assert out[-1] == "█"
        assert list(out) == sorted(out)  # nondecreasing levels

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_becomes_space(self):
        out = sparkline([0.0, math.nan, 1.0])
        assert out[1] == " "
        assert len(out) == 3

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "


class TestLineChart:
    def test_basic_render(self):
        chart = line_chart(
            [0, 1, 2, 3],
            {"a": [0, 1, 2, 3], "b": [3, 2, 1, 0]},
            width=20,
            height=6,
            title="Demo",
        )
        assert "Demo" in chart
        assert "o=a" in chart
        assert "x=b" in chart
        assert "o" in chart and "x" in chart

    def test_y_extremes_labelled(self):
        chart = line_chart([0, 1], {"a": [2.0, 8.0]}, width=12, height=5)
        assert "8" in chart
        assert "2" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {"a": [1.0]}, width=12, height=5)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {"a": [1.0, 2.0]}, width=2, height=2)

    def test_single_x_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart([0], {"a": [1.0]}, width=12, height=5)

    def test_nan_points_skipped(self):
        chart = line_chart(
            [0, 1, 2], {"a": [1.0, math.nan, 2.0]}, width=12, height=5
        )
        assert "o" in chart

    def test_constant_series_renders(self):
        chart = line_chart([0, 1], {"a": [3.0, 3.0]}, width=12, height=5)
        assert "o" in chart


class TestHistogram:
    def test_counts_sum(self):
        out = histogram([1, 1, 2, 3, 3, 3], bins=3)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in out.splitlines())
        assert total == 6

    def test_title(self):
        assert histogram([1, 2], bins=2, title="T").startswith("T")

    def test_constant_sample(self):
        out = histogram([4.0, 4.0], bins=2)
        assert "2" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram([math.nan])

    def test_bad_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram([1.0], bins=0)
