"""safeflow tests: call graph, effect fixpoint, report, gate, ordering.

The per-rule bad/good fixture pairs live in ``test_lint_rules.py`` with
every other rule family; this module tests the machinery underneath
them — name resolution in the cross-module call graph, the effect
inference and its assume-guarantee use of declared ``Effects:`` specs,
the ``--batch-report`` JSON, and the two gate-level guarantees the
repo relies on (src flow-clean with exactly one documented
suppression; deterministic finding order).
"""

import ast
import json
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.engine import lint_paths
from repro.lint.flow import (
    DOES_IO,
    DRAWS_RNG,
    MUTATES_ARGS,
    MUTATES_GLOBAL,
    batchability_report,
    build_call_graph,
    build_effect_table,
)

SRC = Path(__file__).resolve().parent.parent / "src"


def _graph(**sources):
    """Call graph of ``{suffix: source}`` under ``repro.sim.``."""
    return build_call_graph(
        {
            f"repro.sim.{suffix}": ast.parse(text)
            for suffix, text in sources.items()
        }
    )


def _table(**sources):
    return build_effect_table(
        {
            f"repro.sim.{suffix}": ast.parse(text)
            for suffix, text in sources.items()
        }
    )


# ---------------------------------------------------------------------
# Call graph construction
# ---------------------------------------------------------------------
def test_mutual_recursion_forms_one_scc_ordered_callees_first():
    graph = _graph(
        fx=(
            "def even(n):\n"
            "    return True if n <= 0 else odd(n - 1)\n"
            "def odd(n):\n"
            "    return False if n <= 0 else even(n - 1)\n"
            "def main(n):\n"
            "    return even(n)\n"
        )
    )
    sccs = graph.sccs()
    cycle = next(scc for scc in sccs if len(scc) > 1)
    assert set(cycle) == {"repro.sim.fx.even", "repro.sim.fx.odd"}
    main_scc = sccs.index(["repro.sim.fx.main"])
    assert sccs.index(cycle) < main_scc  # callees before callers


def test_constructor_call_edges_to_init():
    graph = _graph(
        fx=(
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.value = 1\n"
            "def make():\n"
            "    return Widget()\n"
        )
    )
    callees = {
        e.callee for e in graph.edges["repro.sim.fx.make"]
    }
    assert "repro.sim.fx.Widget.__init__" in callees


def test_typed_receiver_resolves_to_the_annotated_class():
    graph = _graph(
        fx=(
            "class Engine:\n"
            "    def run(self, steps):\n"
            "        return steps\n"
            "class Runner:\n"
            "    def run(self, jobs):\n"
            "        return jobs\n"
            "def drive(engine: Engine):\n"
            "    return engine.run(3)\n"
        )
    )
    callees = {e.callee for e in graph.edges["repro.sim.fx.drive"]}
    assert callees == {"repro.sim.fx.Engine.run"}


def test_annotated_local_pins_receiver_like_a_parameter():
    # ``injector: Optional[Engine] = None`` inside the body must pin
    # ``injector.run`` to Engine.run exactly like a parameter
    # annotation would, instead of falling back to the method-name
    # index (which would also alias Runner.run).
    graph = _graph(
        fx=(
            "from typing import Optional\n"
            "class Engine:\n"
            "    def run(self, steps):\n"
            "        return steps\n"
            "class Runner:\n"
            "    def run(self, jobs):\n"
            "        return jobs\n"
            "def drive(flag):\n"
            "    injector: Optional[Engine] = None\n"
            "    if flag:\n"
            "        injector = Engine()\n"
            "    if injector is not None:\n"
            "        return injector.run(3)\n"
            "    return 0\n"
        )
    )
    callees = {e.callee for e in graph.edges["repro.sim.fx.drive"]}
    assert "repro.sim.fx.Engine.run" in callees
    assert "repro.sim.fx.Runner.run" not in callees


def test_parameter_annotation_wins_over_annotated_local():
    graph = _graph(
        fx=(
            "class Engine:\n"
            "    def run(self, steps):\n"
            "        return steps\n"
            "class Runner:\n"
            "    def run(self, jobs):\n"
            "        return jobs\n"
            "def drive(worker: Engine, other):\n"
            "    worker: Runner = other\n"
            "    return worker.run(3)\n"
        )
    )
    callees = {e.callee for e in graph.edges["repro.sim.fx.drive"]}
    assert callees == {"repro.sim.fx.Engine.run"}


def test_untyped_receiver_over_approximates_via_method_index():
    graph = _graph(
        fx=(
            "class Engine:\n"
            "    def run(self, steps):\n"
            "        return steps\n"
            "def drive(engine):\n"
            "    return engine.run(3)\n"
        )
    )
    edges = graph.edges["repro.sim.fx.drive"]
    assert [e.callee for e in edges] == ["repro.sim.fx.Engine.run"]
    assert all(e.via_index for e in edges)


def test_container_mutator_names_never_enter_the_method_index():
    # ``j.append`` on an untyped receiver must NOT edge to a user
    # method that happens to be called ``append`` — list.append is the
    # overwhelmingly common binding and the edge would smear that
    # method's effects over every list-append in the tree.
    graph = _graph(
        fx=(
            "class Journal:\n"
            "    def append(self, item):\n"
            "        print(item)\n"
            "def record(j):\n"
            "    j.append(1)\n"
        )
    )
    assert graph.edges["repro.sim.fx.record"] == []


def test_aliased_function_and_module_imports_resolve():
    graph = _graph(
        alpha="def helper(x):\n    return x\n",
        beta=(
            "from repro.sim.alpha import helper as h\n"
            "import repro.sim.alpha as alpha_mod\n"
            "def caller(x):\n"
            "    return h(x) + alpha_mod.helper(x)\n"
        ),
    )
    callees = [e.callee for e in graph.edges["repro.sim.beta.caller"]]
    assert callees == ["repro.sim.alpha.helper"] * 2


def test_reachability_crosses_modules():
    graph = _graph(
        alpha="def helper(x):\n    return x\n",
        beta=(
            "from repro.sim.alpha import helper\n"
            "def caller(x):\n"
            "    return helper(x)\n"
        ),
    )
    reachable = graph.reachable_from("repro.sim.beta.caller")
    assert "repro.sim.alpha.helper" in reachable


# ---------------------------------------------------------------------
# Effect fixpoint
# ---------------------------------------------------------------------
def test_effects_propagate_transitively():
    table = _table(
        fx=(
            "def _log(msg):\n"
            "    print(msg)\n"
            "def outer(msg):\n"
            "    _log(msg)\n"
        )
    )
    outer = table.lookup("repro.sim.fx.outer")
    assert DOES_IO in outer.inferred
    # Evidence names the call edge, not the print itself.
    line, why = outer.evidence[DOES_IO]
    assert "repro.sim.fx._log" in why


def test_mutates_args_propagates_only_through_passed_params():
    table = _table(
        fx=(
            "def fill(items):\n"
            "    items.append(1)\n"
            "def fill_mine(items):\n"
            "    fill(items)\n"
            "def fill_fresh():\n"
            "    items = []\n"
            "    fill(items)\n"
            "    return items\n"
        )
    )
    assert MUTATES_ARGS in table.lookup("repro.sim.fx.fill").inferred
    assert MUTATES_ARGS in table.lookup("repro.sim.fx.fill_mine").inferred
    # Mutating a freshly-built local is invisible to *this* caller's
    # callers: the effect must not leak past the allocation site.
    assert (
        MUTATES_ARGS
        not in table.lookup("repro.sim.fx.fill_fresh").inferred
    )


def test_declared_spec_is_the_assume_guarantee_boundary():
    table = _table(
        fx=(
            "def sneaky():\n"
            "    '''d.\n"
            "\n"
            "    Effects: pure\n"
            "    '''\n"
            "    print('x')\n"
            "def caller():\n"
            "    return sneaky()\n"
        )
    )
    sneaky = table.lookup("repro.sim.fx.sneaky")
    # The lie is caught locally (SFL305 feeds on .contradictions)...
    assert DOES_IO in sneaky.contradictions
    # ...but callers trust the declaration, not the inference.
    assert DOES_IO not in table.lookup("repro.sim.fx.caller").inferred


def test_threading_an_rng_parameter_is_draws_rng():
    table = _table(
        fx=(
            "def forward(value, rng):\n"
            "    '''d.\n"
            "\n"
            "    Effects: draws-rng\n"
            "    '''\n"
            "    return helper(value, rng)\n"
            "def helper(value, noise_rng):\n"
            "    '''d.\n"
            "\n"
            "    Effects: draws-rng\n"
            "    '''\n"
            "    return value + noise_rng.normal()\n"
        )
    )
    forward = table.lookup("repro.sim.fx.forward")
    assert forward.rng_params_used == ("rng",)
    assert DRAWS_RNG in forward.inferred


def test_recursive_scc_converges_to_the_union():
    table = _table(
        fx=(
            "def ping(n):\n"
            "    print(n)\n"
            "    return pong(n - 1) if n > 0 else 0\n"
            "def pong(n):\n"
            "    global _depth\n"
            "    _depth = n\n"
            "    return ping(n - 1) if n > 0 else 0\n"
        )
    )
    for name in ("ping", "pong"):
        inferred = table.lookup(f"repro.sim.fx.{name}").inferred
        assert DOES_IO in inferred
        assert MUTATES_GLOBAL in inferred


# ---------------------------------------------------------------------
# Batchability report
# ---------------------------------------------------------------------
_EPISODE = (
    "def _step(state, rng):\n"
    "    '''d.\n"
    "\n"
    "    Effects: mutates-args, draws-rng\n"
    "    '''\n"
    "    state['x'] = state['x'] + rng.normal()\n"
    "def run_episode(state, rng):\n"
    "    '''d.\n"
    "\n"
    "    Effects: mutates-args, draws-rng\n"
    "    '''\n"
    "    for _ in range(3):\n"
    "        _step(state, rng)\n"
    "    return state['x']\n"
)


def test_batch_report_schema_and_batchable_flag():
    report = batchability_report(_table(fx=_EPISODE), "run_episode")
    assert report["schema"] == 1
    assert report["root"] == "repro.sim.fx.run_episode"
    assert report["batchable"] is True
    assert report["blocking"] == []
    names = [f["qualname"] for f in report["functions"]]
    assert names == sorted(names)
    assert "repro.sim.fx._step" in names


def test_batch_report_flags_blocking_effects():
    source = _EPISODE + (
        "_hits = [0]\n"
        "def tally():\n"
        "    _hits[0] = _hits[0] + 1\n"
    )
    source = source.replace(
        "        _step(state, rng)\n",
        "        _step(state, rng)\n        tally()\n",
    )
    report = batchability_report(_table(fx=source), "run_episode")
    assert report["batchable"] is False
    assert "repro.sim.fx.tally" in report["blocking"]


def test_batch_report_unresolvable_root_raises():
    with pytest.raises(ValueError):
        batchability_report(_table(fx=_EPISODE), "no_such_function")


def test_batch_report_is_byte_stable():
    first = batchability_report(_table(fx=_EPISODE), "run_episode")
    second = batchability_report(_table(fx=_EPISODE), "run_episode")
    assert json.dumps(first) == json.dumps(second)


def test_cli_batch_report_over_src(capsys):
    exit_code = lint_main(
        [str(SRC), "--batch-report", "run_episode"]
    )
    assert exit_code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["root"] == "repro.sim.engine.run_episode"
    assert report["batchable"] is True
    assert report["reachable"] == len(report["functions"]) + len(
        report["pure"]
    )


# ---------------------------------------------------------------------
# Gate guarantees
# ---------------------------------------------------------------------
def test_src_is_flow_clean_with_exactly_one_documented_suppression():
    config = LintConfig(select=frozenset({"SFL3"}))
    result = lint_paths([SRC], config)
    assert result.findings == []
    assert result.suppressed == 1


def test_the_one_flow_suppression_is_the_trajectory_recorder():
    carriers = [
        path
        for path in sorted(SRC.rglob("*.py"))
        if "disable=SFL3" in path.read_text(encoding="utf-8")
    ]
    assert [p.name for p in carriers] == ["trajectory.py"]


def test_findings_are_ordered_by_line_column_and_rule():
    source = (
        "import numpy as np\n"
        "def late(values, rng):\n"
        "    out = np.empty_like(values)\n"
        "    for i, v in enumerate(values):\n"
        "        out[i] = np.clip(v, rng.normal(), 1.0)\n"
        "    return out\n"
        "def early(value, rng):\n"
        "    return value + rng.normal()\n"
    )
    findings = lint_source(
        source, module="repro.sim.fixture", config=LintConfig()
    )
    keys = [(f.line, f.column, f.rule_id) for f in findings]
    assert len(keys) >= 3  # two SFL306 defs plus the SFL300 loop body
    assert keys == sorted(keys)
