"""Tests for the left-turn scenario object."""

import pytest

from repro.dynamics.state import SystemState, VehicleState
from repro.errors import ScenarioError
from repro.scenarios.base import Scenario
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.utils.rng import RngStream


class TestProtocol:
    def test_conformance(self, scenario):
        assert isinstance(scenario, Scenario)

    def test_two_vehicles(self, scenario):
        assert scenario.n_vehicles == 2

    def test_limits(self, scenario):
        assert scenario.vehicle_limits(0).v_max == 20.0
        assert scenario.vehicle_limits(1).v_max == -2.0
        with pytest.raises(ScenarioError):
            scenario.vehicle_limits(2)


class TestInitialState:
    def test_ego_start_fixed(self, scenario):
        state = scenario.initial_state(RngStream(0))
        assert state.ego.position == -30.0
        assert state.ego.velocity == 10.0

    def test_oncoming_from_paper_pool(self, scenario):
        positions = {
            scenario.initial_state(RngStream(seed)).vehicle(1).position
            for seed in range(40)
        }
        assert positions.issubset(set(scenario.oncoming_start_positions))
        assert len(positions) > 5

    def test_oncoming_speed_in_range(self, scenario):
        lo, hi = scenario.oncoming_start_speed_range
        for seed in range(20):
            v = scenario.initial_state(RngStream(seed)).vehicle(1).velocity
            assert -hi <= v <= -lo

    def test_reproducible(self, scenario):
        a = scenario.initial_state(RngStream(5))
        b = scenario.initial_state(RngStream(5))
        assert a.vehicle(1).position == b.vehicle(1).position
        assert a.vehicle(1).velocity == b.vehicle(1).velocity


class TestGroundTruth:
    def test_collision_predicate(self, scenario):
        both_inside = SystemState(
            time=0.0,
            vehicles=(
                VehicleState(position=10.0, velocity=5.0),
                VehicleState(position=10.0, velocity=-10.0),
            ),
        )
        assert scenario.is_collision(both_inside)
        ego_only = both_inside.with_vehicle(
            1, VehicleState(position=30.0, velocity=-10.0)
        )
        assert not scenario.is_collision(ego_only)

    def test_target_predicate(self, scenario):
        reached = SystemState(
            time=0.0,
            vehicles=(
                VehicleState(position=20.0, velocity=5.0),
                VehicleState(position=50.0, velocity=-10.0),
            ),
        )
        assert scenario.reached_target(reached)


class TestProfiles:
    def test_oncoming_profile_in_range(self, scenario):
        profile = scenario.profile_for(1, RngStream(0))
        lo, hi = scenario.profile_accel_range
        values = [
            profile(i, 0.0, VehicleState(position=0.0, velocity=-10.0))
            for i in range(50)
        ]
        assert all(lo <= v <= hi for v in values)

    def test_ego_has_no_profile(self, scenario):
        with pytest.raises(ScenarioError):
            scenario.profile_for(0, RngStream(0))


class TestValidation:
    def test_profile_outside_limits_rejected(self):
        with pytest.raises(ScenarioError):
            LeftTurnScenario(profile_accel_range=(-10.0, 10.0))

    def test_start_speed_outside_physical_rejected(self):
        with pytest.raises(ScenarioError):
            LeftTurnScenario(oncoming_start_speed_range=(1.0, 12.0))

    def test_unordered_speed_range_rejected(self):
        with pytest.raises(ScenarioError):
            LeftTurnScenario(oncoming_start_speed_range=(14.0, 9.0))

    def test_empty_position_pool_rejected(self):
        with pytest.raises(ScenarioError):
            LeftTurnScenario(oncoming_start_positions=())
