"""Tests for the signalized-intersection scenario."""

import math

import pytest

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.dynamics.state import SystemState, VehicleState
from repro.errors import ScenarioError
from repro.scenarios.base import Scenario
from repro.scenarios.signalized import (
    GreenWavePlanner,
    RedLightRunner,
    SignalizedCrossingScenario,
    TrafficLight,
)
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import BatchRunner, EstimatorKind
from repro.utils.rng import RngStream


@pytest.fixture(scope="module")
def crossing():
    return SignalizedCrossingScenario()


class TestTrafficLight:
    light = TrafficLight(green=6.0, red=8.0, offset=2.0)

    def test_cycle(self):
        assert self.light.cycle == 14.0

    def test_green_phases(self):
        assert not self.light.is_green(0.0)  # before offset
        assert self.light.is_green(2.0)
        assert self.light.is_green(7.9)
        assert not self.light.is_green(8.1)
        assert not self.light.is_green(15.9)
        assert self.light.is_green(16.1)  # next cycle

    def test_next_red_interval_during_green(self):
        red = self.light.next_red_interval(3.0)
        assert red.lo == pytest.approx(8.0)
        assert red.hi == pytest.approx(16.0)

    def test_next_red_interval_during_red(self):
        red = self.light.next_red_interval(10.0)
        assert red.lo == pytest.approx(8.0)
        assert red.hi == pytest.approx(16.0)

    def test_pre_offset_red(self):
        red = self.light.next_red_interval(0.5)
        assert red.lo == -math.inf
        assert red.hi == pytest.approx(2.0)

    def test_next_green_start(self):
        assert self.light.next_green_start(0.0) == pytest.approx(2.0)
        assert self.light.next_green_start(3.0) == pytest.approx(2.0)
        assert self.light.next_green_start(9.0) == pytest.approx(16.0)

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TrafficLight(green=0.0, red=8.0)


class TestScenarioProtocol:
    def test_conformance(self, crossing):
        assert isinstance(crossing, Scenario)

    def test_single_vehicle(self, crossing):
        assert crossing.n_vehicles == 1
        with pytest.raises(ScenarioError):
            crossing.vehicle_limits(1)
        with pytest.raises(ScenarioError):
            crossing.profile_for(1, RngStream(0))

    def test_violation_predicate(self, crossing):
        inside = SystemState(
            time=7.0,  # red phase of the default (6 green / 8 red) light
            vehicles=(VehicleState(position=10.0, velocity=5.0),),
        )
        assert crossing.is_collision(inside)
        during_green = inside.with_time(3.0)
        assert not crossing.is_collision(during_green)

    def test_with_offset(self, crossing):
        shifted = crossing.with_offset(3.0)
        assert shifted.light.offset == 3.0
        assert shifted.light.green == crossing.light.green


class TestClosedLoop:
    def _engine(self, scenario):
        return SimulationEngine(
            scenario,
            CommSetup.perfect(),
            SimulationConfig(max_time=40.0, record_trajectories=False),
        )

    @pytest.mark.parametrize("offset", [0.0, 3.0, 6.0, 9.0, 12.0])
    def test_green_wave_planner_is_safe_and_reaches(self, crossing, offset):
        scenario = crossing.with_offset(offset)
        result = BatchRunner(
            self._engine(scenario), EstimatorKind.RAW
        ).run_one(scenario.green_wave_planner(), seed=0)
        assert result.outcome is Outcome.REACHED

    def test_red_light_runner_violates_somewhere(self, crossing):
        outcomes = []
        for offset in (0.0, 3.0, 6.0, 9.0, 12.0):
            scenario = crossing.with_offset(offset)
            result = BatchRunner(
                self._engine(scenario), EstimatorKind.RAW
            ).run_one(scenario.red_light_runner(), seed=0)
            outcomes.append(result.outcome)
        assert Outcome.COLLISION in outcomes

    @pytest.mark.parametrize("offset", [0.0, 3.0, 6.0, 9.0, 12.0])
    def test_shielded_runner_always_safe(self, crossing, offset):
        scenario = crossing.with_offset(offset)
        shielded = CompoundPlanner(
            nn_planner=scenario.red_light_runner(),
            emergency_planner=scenario.emergency_planner(),
            monitor=RuntimeMonitor(scenario.safety_model()),
            limits=scenario.ego_limits,
        )
        result = BatchRunner(
            self._engine(scenario), EstimatorKind.RAW
        ).run_one(shielded, seed=0)
        assert result.outcome is Outcome.REACHED

    def test_shielded_runner_waits_out_red(self, crossing):
        """With the light red on arrival, the monitor holds the ego at
        the line until the next green."""
        scenario = crossing.with_offset(8.0)  # red when the ego arrives
        shielded = CompoundPlanner(
            nn_planner=scenario.red_light_runner(),
            emergency_planner=scenario.emergency_planner(),
            monitor=RuntimeMonitor(scenario.safety_model()),
            limits=scenario.ego_limits,
        )
        result = BatchRunner(
            self._engine(scenario), EstimatorKind.RAW
        ).run_one(shielded, seed=0)
        assert result.outcome is Outcome.REACHED
        assert result.emergency_steps > 0


class TestPlannersStandalone:
    def test_green_wave_go_when_committed(self, crossing):
        from repro.planners.base import PlanningContext

        planner = crossing.green_wave_planner()
        ctx = PlanningContext(
            time=1.0, ego=VehicleState(position=8.0, velocity=5.0)
        )
        assert planner.plan(ctx) > 0.0

    def test_red_light_runner_tracks_speed(self, crossing):
        from repro.planners.base import PlanningContext

        planner = crossing.red_light_runner()
        slow = PlanningContext(
            time=0.0, ego=VehicleState(position=-40.0, velocity=5.0)
        )
        fast = PlanningContext(
            time=0.0, ego=VehicleState(position=-40.0, velocity=18.0)
        )
        assert planner.plan(slow) > 0.0
        assert planner.plan(fast) < 0.0
