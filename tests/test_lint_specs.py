"""Tests for the shared spec machinery behind the dim and shape passes.

Both passes declare facts the same two ways (``Units:``/``Shapes:``
docstring directives and ``Annotated`` string metadata) through
:mod:`repro.lint.specs`.  These tests pin the shared plumbing — payload
splitting, malformed-spec reporting, the cross-grammar skip protocol —
and the symbolic-dim unification corners of the shape pass.
"""

import ast

import pytest

from repro.lint.dim.annotations import extract_function_units
from repro.lint.dim.lattice import DIMENSIONLESS
from repro.lint.shape import Shape, extract_function_shapes
from repro.lint.shape.checker import _definite_conflict
from repro.lint.flow.annotations import extract_function_effects
from repro.lint.specs import (
    SpecIssue,
    SpecSyntaxError,
    _split_entries,
    annotated_metadata,
    parse_directive_payload,
    parse_keyword_payload,
    spec_from_annotated,
)


def _func(source):
    node = ast.parse(source).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


# ----------------------------------------------------------------------
# Payload splitting
# ----------------------------------------------------------------------
def test_split_entries_ignores_commas_inside_brackets():
    assert _split_entries("x [B,4], gain [2,2]") == ["x [B,4]", " gain [2,2]"]


def test_split_entries_plain_commas_still_split():
    assert _split_entries("a [m], b [s]") == ["a [m]", " b [s]"]


def test_split_entries_single_entry():
    assert _split_entries("x [B,4,2]") == ["x [B,4,2]"]


# ----------------------------------------------------------------------
# Directive payload parsing (grammar-agnostic plumbing)
# ----------------------------------------------------------------------
def _parse_upper(text, bracketed):
    # Toy grammar: accepts single uppercase words only.
    if not text.isupper() or not text.isalpha():
        raise SpecSyntaxError(f"not uppercase: {text!r}")
    return text


def _run_payload(payload, known=("x", "y")):
    params = {}
    issues = []
    returns = parse_directive_payload(
        payload,
        7,
        directive="Specs",
        parse_spec=_parse_upper,
        known_names=frozenset(known),
        params=params,
        issues=issues,
    )
    return params, returns, issues


def test_payload_entries_and_return_clause():
    params, returns, issues = _run_payload("x [AA], y [BB] -> [CC]")
    assert params == {"x": "AA", "y": "BB"}
    assert returns == "CC"
    assert not issues


def test_payload_malformed_spec_is_an_issue_not_a_crash():
    params, returns, issues = _run_payload("x [lower]")
    assert params == {}
    assert issues and issues[0].line == 7
    assert "x" in issues[0].message


def test_payload_unknown_parameter_name_is_an_issue():
    params, _, issues = _run_payload("z [AA]")
    assert params == {}
    assert any("not a" in issue.message for issue in issues)


def test_payload_unparseable_entry_shape_is_an_issue():
    _, _, issues = _run_payload("x[AA extra junk")
    assert issues
    assert "unparseable" in issues[0].message


def test_payload_bad_return_spec_is_an_issue():
    _, returns, issues = _run_payload("x [AA] -> [bad]")
    assert returns is None
    assert any("return spec" in issue.message for issue in issues)


# ----------------------------------------------------------------------
# Annotated metadata extraction
# ----------------------------------------------------------------------
def _annotation(source):
    node = ast.parse(source).body[0]
    assert isinstance(node, ast.AnnAssign)
    return node.annotation


def test_annotated_metadata_returns_string_constants():
    annotation = _annotation("x: Annotated[np.ndarray, '[B,4]', 'note']")
    assert [c.value for c in annotated_metadata(annotation)] == [
        "[B,4]",
        "note",
    ]


def test_annotated_metadata_ignores_plain_annotations():
    assert annotated_metadata(_annotation("x: np.ndarray")) == []


def test_spec_from_annotated_bracketed_failure_is_an_issue():
    issues = []
    spec = spec_from_annotated(
        _annotation("x: Annotated[np.ndarray, '[lower]']"),
        parse_spec=_parse_upper,
        issues=issues,
    )
    assert spec is None
    assert issues


def test_spec_from_annotated_unbracketed_failure_is_skipped():
    # Free-form metadata addressed to some other tool must not be
    # reported as a broken declaration.
    issues = []
    spec = spec_from_annotated(
        _annotation("x: Annotated[np.ndarray, 'frozen']"),
        parse_spec=_parse_upper,
        issues=issues,
    )
    assert spec is None
    assert not issues


def test_spec_from_annotated_none_means_keep_scanning():
    # A parse callable may return None to say "valid under the *other*
    # pass's grammar"; scanning must continue to later metadata.
    def parse(text, bracketed):
        if text == "SKIP":
            return None
        return _parse_upper(text, bracketed)

    issues = []
    spec = spec_from_annotated(
        _annotation("x: Annotated[np.ndarray, '[SKIP]', '[AA]']"),
        parse_spec=parse,
        issues=issues,
    )
    assert spec == "AA"
    assert not issues


# ----------------------------------------------------------------------
# Cross-grammar disambiguation between the dim and shape passes
# ----------------------------------------------------------------------
def test_shape_pass_skips_unit_metadata():
    func = _func(
        "def f(dt: Annotated[float, '[s]']):\n"
        '    """D."""\n'
    )
    shapes = extract_function_shapes(func)
    assert "dt" not in shapes.params
    assert not shapes.issues


def test_dim_pass_skips_shape_metadata():
    func = _func(
        "def f(x: Annotated[np.ndarray, '[B,4]']):\n"
        '    """D."""\n'
    )
    units = extract_function_units(func)
    assert "x" not in units.params
    assert not units.issues


def test_dimensionless_bracket_one_resolves_as_unit():
    # "[1]" parses under both grammars; the unit reading (dimensionless)
    # wins and the shape pass quietly steps aside.
    func = _func(
        "def f(ratio: Annotated[float, '[1]']):\n"
        '    """D."""\n'
    )
    units = extract_function_units(func)
    assert units.params["ratio"] == DIMENSIONLESS
    shapes = extract_function_shapes(func)
    assert "ratio" not in shapes.params
    assert not shapes.issues


def test_each_pass_picks_its_own_metadata_from_a_mixed_hint():
    func = _func(
        "def f(x: Annotated[np.ndarray, '[m/s]', '[N; f8]']):\n"
        '    """D."""\n'
    )
    units = extract_function_units(func)
    shapes = extract_function_shapes(func)
    assert units.params["x"] is not None
    assert shapes.params["x"] == Shape(dims=("N",), dtype="f8")
    assert not units.issues and not shapes.issues


def test_garbage_bracketed_metadata_is_an_issue_for_the_shape_pass():
    # Valid under neither grammar: the shape pass must surface it
    # rather than silently treating it as someone else's metadata.
    func = _func(
        "def f(x: Annotated[np.ndarray, '[B,4'] ):\n"
        '    """D."""\n'
    )
    shapes = extract_function_shapes(func)
    assert "x" not in shapes.params


# ----------------------------------------------------------------------
# Symbolic-dim unification corners
# ----------------------------------------------------------------------
def test_repeated_symbol_must_bind_consistently():
    declared = Shape(dims=("N", "N"))
    assert _definite_conflict(declared, Shape(dims=(3, 3)), {}) is None
    message = _definite_conflict(declared, Shape(dims=(3, 4)), {})
    assert message is not None and "'N'" in message


def test_bindings_unify_across_a_call_site():
    bindings = {}
    declared = Shape(dims=("N",))
    assert _definite_conflict(declared, Shape(dims=(3,)), bindings) is None
    assert bindings["N"] == 3
    assert _definite_conflict(declared, Shape(dims=(4,)), bindings)


def test_unknown_axes_never_conflict():
    declared = Shape(dims=("N", 2))
    assert _definite_conflict(declared, Shape(dims=(None, None)), {}) is None
    assert _definite_conflict(declared, Shape(dims=None), {}) is None


def test_rank_mismatch_is_a_conflict():
    message = _definite_conflict(
        Shape(dims=(2, 1)), Shape(dims=(2,)), {}
    )
    assert message is not None and "rank" in message


def test_symbol_bound_to_symbol_stays_optimistic():
    bindings = {}
    declared = Shape(dims=("N",))
    assert _definite_conflict(declared, Shape(dims=("M",)), bindings) is None
    # A later concrete binding may still conflict with nothing: the
    # symbolic first binding must not poison it.
    assert (
        _definite_conflict(declared, Shape(dims=("K",)), bindings) is None
    )


def test_spec_issue_is_a_plain_value_object():
    issue = SpecIssue(3, "message")
    assert (issue.line, issue.message) == (3, "message")


# ----------------------------------------------------------------------
# Keyword payloads (the Effects: grammar)
# ----------------------------------------------------------------------
_VOCAB = frozenset({"does-io", "draws-rng", "mutates-args"})


def _parse_keywords(payload, issues):
    return parse_keyword_payload(
        payload,
        7,
        directive="Effects",
        vocabulary=_VOCAB,
        bottom_keyword="pure",
        issues=issues,
    )


def test_keyword_payload_parses_a_comma_list():
    issues = []
    parsed = _parse_keywords("draws-rng, mutates-args", issues)
    assert parsed == frozenset({"draws-rng", "mutates-args"})
    assert issues == []


def test_keyword_payload_pure_is_the_empty_set():
    issues = []
    assert _parse_keywords("pure", issues) == frozenset()
    assert issues == []


def test_keyword_payload_pure_must_stand_alone():
    issues = []
    parsed = _parse_keywords("pure, draws-rng", issues)
    assert parsed == frozenset({"draws-rng"})
    assert len(issues) == 1 and "stand alone" in issues[0].message


def test_keyword_payload_unknown_keyword_is_an_issue():
    issues = []
    assert _parse_keywords("draws-entropy", issues) is None
    assert len(issues) == 1
    assert "draws-entropy" in issues[0].message
    assert issues[0].line == 7


# ----------------------------------------------------------------------
# Effects: extraction from functions
# ----------------------------------------------------------------------
def test_effects_lines_merge_by_union():
    func = _func(
        "def f(x):\n"
        "    '''d.\n"
        "\n"
        "    Effects: draws-rng\n"
        "    Effects: mutates-args\n"
        "    '''\n"
        "    return x\n"
    )
    spec = extract_function_effects(func)
    assert spec.declared == frozenset({"draws-rng", "mutates-args"})
    assert spec.issues == ()


def test_effects_annotated_metadata_wins_over_docstring():
    func = _func(
        "def f(x) -> Annotated[float, 'effects: pure']:\n"
        "    '''d.\n"
        "\n"
        "    Effects: draws-rng\n"
        "    '''\n"
        "    return x\n"
    )
    spec = extract_function_effects(func)
    assert spec.declared == frozenset()


def test_effects_undeclared_function_has_no_spec():
    func = _func("def f(x):\n    '''d.'''\n    return x\n")
    spec = extract_function_effects(func)
    assert spec.declared is None
    assert spec.line == 1
