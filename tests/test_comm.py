"""Tests for messages, disturbance models, and the disturbed channel."""

import math

import pytest

from repro.comm.channel import Channel
from repro.comm.disturbance import (
    DisturbanceModel,
    messages_delayed,
    messages_lost,
    no_disturbance,
)
from repro.comm.message import Message
from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.utils.rng import RngStream

STATE = VehicleState(position=50.0, velocity=-12.0, acceleration=0.5)


class TestMessage:
    def test_fields(self):
        m = Message(sender=1, stamp=2.5, state=STATE)
        assert m.sender == 1
        assert m.stamp == 2.5
        assert m.state.position == 50.0

    def test_age(self):
        m = Message(sender=1, stamp=2.0, state=STATE)
        assert m.age(3.5) == pytest.approx(1.5)

    def test_negative_sender_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(sender=-1, stamp=0.0, state=STATE)

    def test_nan_stamp_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(sender=0, stamp=math.nan, state=STATE)


class TestDisturbanceModels:
    def test_no_disturbance(self):
        d = no_disturbance()
        assert d.delay == 0.0
        assert d.drop_probability == 0.0
        assert not d.always_drops

    def test_messages_delayed_defaults(self):
        d = messages_delayed()
        assert d.delay == 0.25

    def test_messages_lost(self):
        d = messages_lost()
        assert d.always_drops
        assert d.is_dropped(RngStream(0)) is True

    def test_drop_decision_extremes(self):
        rng = RngStream(1)
        assert DisturbanceModel(drop_probability=0.0).is_dropped(rng) is False
        assert DisturbanceModel(drop_probability=1.0).is_dropped(rng) is True

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            DisturbanceModel(drop_probability=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            DisturbanceModel(delay=-0.1)

    def test_describe(self):
        assert "no disturbance" in no_disturbance().describe()
        assert "lost" in messages_lost().describe()
        assert "0.25" in messages_delayed(0.25, 0.1).describe()


class TestChannelPerfect:
    def test_immediate_delivery(self):
        ch = Channel(period=0.1)
        ch.send(1, 0.0, STATE)
        delivered = ch.receive(0.0)
        assert len(delivered) == 1
        assert delivered[0].stamp == 0.0
        assert delivered[0].state == STATE

    def test_nothing_before_send(self):
        ch = Channel(period=0.1)
        assert ch.receive(10.0) == []

    def test_fifo_order(self):
        ch = Channel(period=0.1)
        for i in range(3):
            ch.send(1, i * 0.1, STATE)
        stamps = [m.stamp for m in ch.receive(1.0)]
        assert stamps == [0.0, 0.1, 0.2]

    def test_transmission_schedule(self):
        ch = Channel(period=0.1)
        assert ch.is_transmission_time(0.0)
        assert ch.is_transmission_time(0.3)
        assert not ch.is_transmission_time(0.05)


class TestChannelDelay:
    def test_delayed_delivery(self):
        ch = Channel(period=0.1, disturbance=messages_delayed(0.25))
        ch.send(1, 1.0, STATE)
        assert ch.receive(1.2) == []
        delivered = ch.receive(1.25)
        assert len(delivered) == 1
        assert delivered[0].stamp == 1.0

    def test_peek_next_delivery(self):
        ch = Channel(period=0.1, disturbance=messages_delayed(0.25))
        assert ch.peek_next_delivery() is None
        ch.send(1, 2.0, STATE)
        assert ch.peek_next_delivery() == pytest.approx(2.25)

    def test_stats_track_delay(self):
        ch = Channel(period=0.1, disturbance=messages_delayed(0.25))
        ch.send(1, 0.0, STATE)
        ch.receive(0.25)
        assert ch.stats.mean_delay == pytest.approx(0.25)


class TestChannelDrop:
    def test_always_drop(self):
        ch = Channel(period=0.1, disturbance=messages_lost())
        assert ch.send(1, 0.0, STATE) is False
        assert ch.receive(100.0) == []
        assert ch.stats.dropped == 1

    def test_probabilistic_drop_rate(self):
        ch = Channel(
            period=0.1,
            disturbance=messages_delayed(0.0, 0.4),
            rng=RngStream(9),
        )
        n = 2000
        for i in range(n):
            ch.send(1, i * 0.1, STATE)
        assert 0.33 < ch.stats.drop_rate < 0.47

    def test_probabilistic_drop_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Channel(period=0.1, disturbance=messages_delayed(0.0, 0.5))

    def test_drop_sequence_reproducible(self):
        def run(seed):
            ch = Channel(
                period=0.1,
                disturbance=messages_delayed(0.0, 0.5),
                rng=RngStream(seed),
            )
            return [ch.send(1, i * 0.1, STATE) for i in range(50)]

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestChannelStats:
    def test_counters(self):
        ch = Channel(period=0.1, disturbance=messages_delayed(0.5))
        ch.send(1, 0.0, STATE)
        ch.send(1, 0.1, STATE)
        assert ch.stats.sent == 2
        assert ch.stats.in_flight == 2
        ch.receive(0.5)
        assert ch.stats.delivered == 1
        assert ch.stats.in_flight == 1

    def test_empty_stats(self):
        ch = Channel(period=0.1)
        assert ch.stats.drop_rate == 0.0
        assert ch.stats.mean_delay == 0.0

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel(period=0.0)
