"""Tests for feature extraction, scaling, and the NN planner wrapper."""

import numpy as np
import pytest

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.filtering.fusion import FusedEstimate
from repro.planners.base import PlanningContext
from repro.planners.nn_planner import (
    WINDOW_FAR,
    WINDOW_PAST,
    FeatureScaler,
    planner_features,
)
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.utils.intervals import Interval


class TestPlannerFeatures:
    def test_layout(self):
        f = planner_features(1.0, -20.0, 8.0, Interval(3.0, 6.0))
        assert f.shape == (5,)
        assert list(f[:3]) == [1.0, -20.0, 8.0]
        assert f[3] == pytest.approx(2.0)  # 3.0 - 1.0
        assert f[4] == pytest.approx(5.0)

    def test_empty_window_encoded_as_past(self):
        f = planner_features(2.0, 0.0, 0.0, Interval.EMPTY)
        assert f[3] == WINDOW_PAST
        assert f[4] == WINDOW_PAST

    def test_clipping(self):
        f = planner_features(0.0, 0.0, 0.0, Interval(100.0, 500.0))
        assert f[3] == WINDOW_FAR
        assert f[4] == WINDOW_FAR
        f = planner_features(100.0, 0.0, 0.0, Interval(1.0, 2.0))
        assert f[3] == WINDOW_PAST


class TestFeatureScaler:
    def test_fit_transform_standardises(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=5.0, scale=3.0, size=(500, 5))
        scaler = FeatureScaler.fit(data)
        out = scaler.transform(data)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_passes_through(self):
        data = np.ones((10, 2))
        scaler = FeatureScaler.fit(data)
        out = scaler.transform(data)
        assert np.allclose(out, 0.0)

    def test_dict_roundtrip(self):
        scaler = FeatureScaler(mean=np.arange(5.0), std=np.ones(5))
        restored = FeatureScaler.from_dict(scaler.to_dict())
        assert np.allclose(restored.mean, scaler.mean)
        assert np.allclose(restored.std, scaler.std)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureScaler(mean=np.zeros(3), std=np.ones(4))

    def test_empty_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureScaler.fit(np.zeros((0, 5)))


class TestNNPlanner:
    def _planner(self, spec, scenario, aggressive=False):
        estimator = PassingWindowEstimator(
            scenario.geometry, scenario.oncoming_limits, aggressive=aggressive
        )
        return spec.build_planner(estimator, scenario.ego_limits)

    def _context(self, scenario):
        est = FusedEstimate(
            time=0.0,
            position=Interval.point(50.0),
            velocity=Interval.point(-10.0),
            nominal=VehicleState(position=50.0, velocity=-10.0),
        )
        return PlanningContext(
            time=0.0,
            ego=VehicleState(position=-30.0, velocity=10.0),
            estimates={1: est},
        )

    def test_output_within_limits(self, tiny_conservative_spec, scenario):
        planner = self._planner(tiny_conservative_spec, scenario)
        a = planner.plan(self._context(scenario))
        assert scenario.ego_limits.a_min <= a <= scenario.ego_limits.a_max

    def test_deterministic(self, tiny_conservative_spec, scenario):
        planner = self._planner(tiny_conservative_spec, scenario)
        ctx = self._context(scenario)
        assert planner.plan(ctx) == planner.plan(ctx)

    def test_with_window_estimator_shares_model(
        self, tiny_conservative_spec, scenario
    ):
        planner = self._planner(tiny_conservative_spec, scenario)
        other = planner.with_window_estimator(
            PassingWindowEstimator(
                scenario.geometry, scenario.oncoming_limits, aggressive=True
            )
        )
        assert other.model is planner.model
        assert other.scaler is planner.scaler
        assert other.window_estimator is not planner.window_estimator

    def test_different_estimators_can_differ_in_output(
        self, tiny_conservative_spec, scenario
    ):
        cons = self._planner(tiny_conservative_spec, scenario, aggressive=False)
        aggr = self._planner(tiny_conservative_spec, scenario, aggressive=True)
        ctx = self._context(scenario)
        # Same network; different window features. They need not always
        # differ, but plan_from_window on distinct windows must be what
        # drives any difference.
        w_cons = cons.window_estimator.window(ctx.estimates[1])
        w_aggr = aggr.window_estimator.window(ctx.estimates[1])
        assert w_cons != w_aggr

    def test_wrong_scaler_width_rejected(self, tiny_conservative_spec, scenario):
        from repro.planners.nn_planner import NNPlanner

        bad_scaler = FeatureScaler(mean=np.zeros(3), std=np.ones(3))
        with pytest.raises(ConfigurationError):
            NNPlanner(
                model=tiny_conservative_spec.model,
                scaler=bad_scaler,
                window_estimator=PassingWindowEstimator(
                    scenario.geometry, scenario.oncoming_limits
                ),
                limits=scenario.ego_limits,
            )
