"""Tests for the experiment configuration, harness, and reporting."""

import math
from dataclasses import replace

import pytest

from repro.experiments.config import SETTING_NAMES, ExperimentConfig
from repro.experiments.figure6 import run_filter_study, run_window_study
from repro.experiments.harness import (
    SettingRow,
    build_trio,
    run_setting,
    trained_spec,
)
from repro.experiments.reporting import (
    format_value,
    render_series,
    render_table_rows,
)
from repro.planners.training_data import DemonstrationConfig
from repro.sim.results import AggregateStats, Outcome, SimulationResult

#: A configuration small enough for unit tests (seconds, not minutes).
TINY = ExperimentConfig(
    n_sims=6,
    demo_config=DemonstrationConfig(n_random=200, n_rollouts=2),
    epochs=8,
    hidden=16,
    training_seed=21,
)


class TestConfig:
    def test_paper_constants(self):
        cfg = ExperimentConfig()
        assert cfg.dt_c == 0.05
        assert cfg.dt_m == cfg.dt_s
        assert cfg.message_delay == 0.25

    def test_named_settings(self):
        cfg = ExperimentConfig()
        for name in SETTING_NAMES:
            comm = cfg.comm_setting(name)
            assert comm.dt_m == cfg.dt_m
        assert cfg.comm_setting("messages_lost").disturbance.always_drops
        assert cfg.comm_setting("no_disturbance").disturbance.drop_probability == 0

    def test_unknown_setting_rejected(self):
        with pytest.raises(KeyError):
            ExperimentConfig().comm_setting("smoke_signals")

    def test_with_sims(self):
        assert ExperimentConfig().with_sims(77).n_sims == 77


class TestTrainedSpecCache:
    def test_cached_by_settings(self):
        a = trained_spec("conservative", TINY)
        b = trained_spec("conservative", TINY)
        assert a is b

    def test_distinct_styles_distinct_specs(self):
        a = trained_spec("conservative", TINY)
        b = trained_spec("aggressive", TINY)
        assert a is not b
        assert b.style == "aggressive"


class TestRunSetting:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_setting("aggressive", "no_disturbance", TINY)

    def test_three_rows(self, rows):
        assert {r.planner_type for r in rows} == {"pure", "basic", "ultimate"}

    def test_batch_sizes(self, rows):
        for row in rows:
            assert row.stats.n_runs == TINY.n_sims

    def test_ultimate_has_no_winning_column(self, rows):
        by_type = {r.planner_type: r for r in rows}
        assert by_type["ultimate"].ultimate_wins is None
        assert by_type["pure"].ultimate_wins is not None

    def test_compound_rows_are_safe(self, rows):
        by_type = {r.planner_type: r for r in rows}
        assert by_type["basic"].stats.safe_rate == 1.0
        assert by_type["ultimate"].stats.safe_rate == 1.0

    def test_trio_builder(self):
        spec = trained_spec("aggressive", TINY)
        trio = build_trio(spec, TINY.scenario(), TINY)
        assert trio.pure.window_estimator.aggressive
        assert not trio.basic.nn_planner.window_estimator.aggressive
        assert trio.ultimate.nn_planner.window_estimator.aggressive


class TestReporting:
    def test_format_value(self):
        assert format_value(None, "seconds") == "-"
        assert format_value(float("nan"), "seconds") == "n/a"
        assert format_value(6.4056, "seconds") == "6.406s"
        assert format_value(0.9997, "percent") == "99.97%"
        assert format_value(0.144, "eta") == "+0.144"
        with pytest.raises(ValueError):
            format_value(1.0, "furlongs")

    def test_render_table_rows(self):
        stats = AggregateStats.from_results(
            [
                SimulationResult(
                    outcome=Outcome.REACHED, reaching_time=5.0, steps=100
                )
            ]
        )
        row = SettingRow(
            setting="no_disturbance",
            planner_type="pure",
            stats=stats,
            ultimate_wins=0.5,
            results=[],
        )
        text = render_table_rows([row], "Title")
        assert "Title" in text
        assert "no_disturbance" in text
        assert "5.000s" in text
        assert "50.00%" in text

    def test_render_series(self):
        text = render_series(
            "Fig", "x", [1.0, 2.0], {"a": [0.1, 0.2], "b": [1.0, 2.0]}
        )
        assert "Fig" in text
        assert "0.1000" in text

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("Fig", "x", [1.0], {"a": [0.1, 0.2]})


class TestFigure6:
    def test_filter_study_reduces_rmse(self):
        study = run_filter_study(TINY, n_trajectories=8, horizon=4.0)
        assert study.rmse_position_filtered < study.rmse_position_raw
        assert study.rmse_velocity_filtered < study.rmse_velocity_raw
        assert 0.0 < study.position_reduction < 1.0

    def test_window_study_shapes(self):
        study = run_window_study(TINY, horizon=5.0)
        series = study["series"]
        times = study["times"]
        assert len(times) > 5
        for i in range(len(times)):
            # Aggressive window nested inside the conservative one.
            assert series["cons_lo"][i] <= series["aggr_lo"][i] + 1e-6
            assert series["aggr_hi"][i] <= series["cons_hi"][i] + 1e-6

    def test_window_study_brackets_true_passing(self):
        study = run_window_study(TINY, horizon=8.0)
        entry = study["true_entry"]
        exit_ = study["true_exit"]
        if entry is None or exit_ is None:
            pytest.skip("trajectory did not traverse within the horizon")
        series = study["series"]
        assert series["cons_lo"][0] <= entry + 1e-6
        assert series["cons_hi"][0] >= exit_ - 1e-6
