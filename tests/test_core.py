"""Tests for the runtime monitor and the compound planner."""

import math

import pytest

from repro.core.aggressive import AggressiveConfig
from repro.core.compound import CompoundPlanner
from repro.core.monitor import MonitorDecision, RuntimeMonitor
from repro.core.unsafe_set import SafetyModel
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ConfigurationError
from repro.planners.base import PlanningContext
from repro.planners.constant import ConstantPlanner

LIMITS = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)


class ScriptedSafetyModel:
    """Safety model driven by pre-scripted (boundary, unsafe) pairs."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def _current(self):
        item = self.script[min(self.calls, len(self.script) - 1)]
        return item

    def in_boundary_safe_set(self, time, ego, estimates):
        return self._current()[0]

    def in_estimated_unsafe_set(self, time, ego, estimates):
        boundary, unsafe = self.script[
            min(self.calls, len(self.script) - 1)
        ]
        self.calls += 1
        return unsafe


def _context():
    return PlanningContext(
        time=0.0, ego=VehicleState(position=0.0, velocity=5.0)
    )


class TestAggressiveConfig:
    def test_defaults(self):
        cfg = AggressiveConfig()
        assert cfg.enabled
        assert cfg.a_buf == 0.5

    def test_disabled(self):
        assert not AggressiveConfig.disabled().enabled

    def test_negative_buffers_rejected(self):
        with pytest.raises(ConfigurationError):
            AggressiveConfig(a_buf=-0.1)


class TestRuntimeMonitor:
    def test_selects_nn_when_clear(self):
        monitor = RuntimeMonitor(ScriptedSafetyModel([(False, False)]))
        decision = monitor.evaluate(_context())
        assert not decision.use_emergency

    def test_selects_emergency_in_boundary(self):
        monitor = RuntimeMonitor(ScriptedSafetyModel([(True, False)]))
        assert monitor.evaluate(_context()).use_emergency

    def test_selects_emergency_in_unsafe(self):
        monitor = RuntimeMonitor(ScriptedSafetyModel([(False, True)]))
        decision = monitor.evaluate(_context())
        assert decision.use_emergency
        assert decision.in_unsafe

    def test_counters(self):
        monitor = RuntimeMonitor(
            ScriptedSafetyModel([(False, False), (True, False), (True, True)])
        )
        for _ in range(3):
            monitor.evaluate(_context())
        assert monitor.decisions == 3
        assert monitor.emergency_decisions == 2
        assert monitor.unsafe_decisions == 1
        assert monitor.emergency_frequency == pytest.approx(2 / 3)

    def test_reset(self):
        monitor = RuntimeMonitor(ScriptedSafetyModel([(True, False)]))
        monitor.evaluate(_context())
        monitor.reset()
        assert monitor.decisions == 0
        assert monitor.emergency_frequency == 0.0

    def test_frequency_without_decisions(self):
        monitor = RuntimeMonitor(ScriptedSafetyModel([(False, False)]))
        assert monitor.emergency_frequency == 0.0

    def test_protocol_conformance(self, scenario):
        assert isinstance(scenario.safety_model(), SafetyModel)


class TestCompoundPlanner:
    def _compound(self, script, nn_value=2.0, emergency_value=-6.0):
        return CompoundPlanner(
            nn_planner=ConstantPlanner(nn_value),
            emergency_planner=ConstantPlanner(emergency_value),
            monitor=RuntimeMonitor(ScriptedSafetyModel(script)),
            limits=LIMITS,
        )

    def test_routes_to_nn(self):
        planner = self._compound([(False, False)])
        assert planner.plan(_context()) == 2.0
        assert not planner.last_decision.use_emergency

    def test_routes_to_emergency(self):
        planner = self._compound([(True, False)])
        assert planner.plan(_context()) == -6.0
        assert planner.last_decision.use_emergency

    def test_nan_from_nn_becomes_full_brake(self):
        planner = self._compound([(False, False)], nn_value=math.nan)
        assert planner.plan(_context()) == LIMITS.a_min

    def test_inf_from_nn_clipped(self):
        planner = self._compound([(False, False)], nn_value=math.inf)
        assert planner.plan(_context()) == LIMITS.a_max

    def test_out_of_range_emergency_clipped(self):
        planner = self._compound([(True, False)], emergency_value=-50.0)
        assert planner.plan(_context()) == LIMITS.a_min

    def test_emergency_frequency_passthrough(self):
        planner = self._compound([(True, False), (False, False)])
        planner.plan(_context())
        planner.plan(_context())
        assert planner.emergency_frequency == pytest.approx(0.5)

    def test_reset_clears_state(self):
        planner = self._compound([(True, False)])
        planner.plan(_context())
        planner.reset()
        assert planner.last_decision is None
        assert planner.monitor.decisions == 0

    def test_accessors(self):
        planner = self._compound([(False, False)])
        assert isinstance(planner.nn_planner, ConstantPlanner)
        assert isinstance(planner.emergency_planner, ConstantPlanner)
        assert isinstance(planner.monitor, RuntimeMonitor)
