"""Flight recorder frames/sidecars and exact-sum fleet aggregation.

The unit half of the fleet telemetry plane: delta computation against
registry snapshots, monotonic merging on the coordinator side, and the
crash-tolerant sidecar read path.  The end-to-end half (real worker
subprocesses) lives in ``test_shard_fleet.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.fleet import (
    FLEET_PREFIX,
    delta_is_empty,
    empty_snapshot,
    merge_delta,
    snapshot_delta,
)
from repro.obs.metrics import MetricsRegistry, metric_key
from repro.obs.recorder import (
    TELEMETRY_FORMAT,
    FlightRecorder,
    frame_rates,
    read_telemetry,
)


class TestSnapshotDelta:
    def test_counter_difference_omits_unchanged(self):
        registry = MetricsRegistry()
        registry.count("a", 3)
        registry.count("b", 1)
        before = registry.snapshot()
        registry.count("a", 2)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"] == {"a": 2}

    def test_empty_delta_detection(self):
        snapshot = MetricsRegistry().snapshot()
        assert delta_is_empty(snapshot_delta(snapshot, snapshot))
        assert not delta_is_empty({"counters": {"a": 1}})

    def test_histogram_delta_diffs_counts_keeps_envelope(self):
        registry = MetricsRegistry()
        registry.register_histogram("h", (1.0, 2.0))
        registry.observe("h", 0.5)
        before = registry.snapshot()
        registry.observe("h", 1.5)
        delta = snapshot_delta(before, registry.snapshot())
        hist = delta["histograms"]["h"]
        assert hist["count"] == 1
        assert hist["counts"] == [0, 1, 0]
        assert hist["sum"] == pytest.approx(1.5)
        # min/max stay cumulative: re-absorbing them is idempotent.
        assert hist["min"] == 0.5
        assert hist["max"] == 1.5

    def test_unchanged_histogram_omitted(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.5)
        snapshot = registry.snapshot()
        assert "h" not in snapshot_delta(snapshot, snapshot)["histograms"]


class TestMergeDelta:
    def test_exact_sum_across_workers(self):
        fleet = MetricsRegistry()
        per_worker = {"w0": 5, "w1": 3, "w2": 7}
        for worker, n in per_worker.items():
            merge_delta(
                fleet, {"counters": {"engine.runs": n}}, worker=worker
            )
        total = fleet.counter_value("fleet.engine.runs")
        assert total == sum(per_worker.values())
        assert total == sum(
            fleet.counter_value("fleet.engine.runs", worker=w)
            for w in per_worker
        )

    def test_negative_deltas_are_dropped(self):
        fleet = MetricsRegistry()
        merge_delta(fleet, {"counters": {"x": 4}}, worker="w0")
        merge_delta(fleet, {"counters": {"x": -2}}, worker="w0")
        assert fleet.counter_value("fleet.x") == 4
        assert fleet.counter_value("fleet.x", worker="w0") == 4

    def test_labelled_counters_keep_their_labels(self):
        fleet = MetricsRegistry()
        key = metric_key("serve.decisions", {"ladder": "2"})
        merge_delta(fleet, {"counters": {key: 3}}, worker="w1")
        assert fleet.counter_value("fleet.serve.decisions", ladder="2") == 3
        assert (
            fleet.counter_value(
                "fleet.serve.decisions", ladder="2", worker="w1"
            )
            == 3
        )

    def test_gauges_are_per_worker_only(self):
        fleet = MetricsRegistry()
        merge_delta(fleet, {"gauges": {"filter.width": 0.4}}, worker="w0")
        assert fleet.gauge_value("fleet.filter.width", worker="w0") == 0.4
        assert fleet.gauge_value("fleet.filter.width") is None

    def test_histograms_absorb_bucketwise(self):
        source = MetricsRegistry()
        source.register_histogram("h", (1.0,))
        source.observe("h", 0.5)
        source.observe("h", 2.0)
        hist = source.snapshot()["histograms"]["h"]
        fleet = MetricsRegistry()
        merge_delta(fleet, {"histograms": {"h": hist}}, worker="w0")
        merge_delta(fleet, {"histograms": {"h": hist}}, worker="w1")
        merged = fleet.snapshot()["histograms"][FLEET_PREFIX + "h"]
        assert merged["count"] == 4
        assert merged["counts"] == [2, 2]

    def test_empty_snapshot_shape(self):
        snapshot = empty_snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


class TestFlightRecorder:
    def test_ring_buffer_bounded(self):
        recorder = FlightRecorder(MetricsRegistry(), capacity=3)
        for _ in range(5):
            recorder.record()
        assert len(recorder.frames()) == 3
        assert recorder.latest() is recorder.frames()[-1]

    def test_capacity_must_hold_a_window(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(MetricsRegistry(), capacity=1)

    def test_frames_carry_format_and_snapshot(self):
        registry = MetricsRegistry()
        registry.count("engine.runs", 2)
        frame = FlightRecorder(registry).record()
        assert frame["format"] == TELEMETRY_FORMAT
        assert frame["counters"] == {"engine.runs": 2}
        assert frame["t"] >= 0.0
        assert frame["wall"] > 0.0

    def test_tick_throttles_and_force_overrides(self):
        recorder = FlightRecorder(MetricsRegistry(), min_interval=3600.0)
        assert recorder.tick() is not None  # first frame always records
        assert recorder.tick() is None
        assert recorder.tick(force=True) is not None

    def test_window_rates(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry)
        recorder.record()
        registry.count("engine.runs", 10)
        recorder.record()
        rates = recorder.window_rates()
        assert rates["engine.runs"] > 0.0
        assert recorder.window_seconds() > 0.0

    def test_sidecar_appends_one_line_per_frame(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry, sidecar=path)
        recorder.record()
        registry.count("x")
        recorder.record()
        frames = read_telemetry(path)
        assert len(frames) == 2
        assert frames[1]["counters"] == {"x": 1}
        assert recorder.sidecar == path


class TestFrameRates:
    def _frame(self, t, counters):
        return {
            "format": TELEMETRY_FORMAT,
            "t": t,
            "wall": t,
            "counters": counters,
            "gauges": {},
            "histograms": {},
        }

    def test_rate_per_second(self):
        rates = frame_rates(
            self._frame(0.0, {"a": 10}), self._frame(2.0, {"a": 16})
        )
        assert rates["a"] == pytest.approx(3.0)

    def test_reset_uses_absolute_newer_value(self):
        rates = frame_rates(
            self._frame(0.0, {"a": 100}), self._frame(2.0, {"a": 6})
        )
        assert rates["a"] == pytest.approx(3.0)

    def test_zero_window_is_empty(self):
        frame = self._frame(1.0, {"a": 1})
        assert frame_rates(frame, frame) == {}


class TestReadTelemetry:
    def test_missing_file_is_empty(self, tmp_path):
        assert read_telemetry(tmp_path / "nope.jsonl") == []

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        good = {
            "format": TELEMETRY_FORMAT,
            "t": 1.0,
            "wall": 1.0,
            "counters": {"a": 1},
            "gauges": {},
            "histograms": {},
        }
        lines = [
            json.dumps(good),
            '{"format": "other/1", "t": 2.0}',  # foreign format
            '{"torn": ',  # killed mid-write
            "",
            json.dumps({**good, "t": 3.0}),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        frames = read_telemetry(path)
        assert [frame["t"] for frame in frames] == [1.0, 3.0]
