"""Tests for slack, passing windows, and the boundary-safe-set logic."""

import math

import pytest

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ScenarioError
from repro.filtering.fusion import FusedEstimate
from repro.scenarios.left_turn.geometry import LeftTurnGeometry
from repro.scenarios.left_turn.unsafe_set import (
    LeftTurnSafetyModel,
    boundary_slack_margin,
    ego_passing_window,
    slack,
)
from repro.utils.intervals import Interval

GEOMETRY = LeftTurnGeometry()
EGO = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)
ONCOMING = VehicleLimits(v_min=-20.0, v_max=-2.0, a_min=-3.0, a_max=3.0)
DT = 0.05


def _model():
    return LeftTurnSafetyModel(
        geometry=GEOMETRY,
        ego_limits=EGO,
        oncoming_limits=ONCOMING,
        dt_c=DT,
    )


def _oncoming_estimate(time, position, velocity):
    return {
        1: FusedEstimate(
            time=time,
            position=Interval.point(position),
            velocity=Interval.point(velocity),
            nominal=VehicleState(position=position, velocity=velocity),
            message_age=0.0,
        )
    }


class TestSlack:
    def test_before_area(self):
        # d_b = 100/12 at v=10; slack = 5 - (-30) - 8.333 = 26.667.
        assert slack(-30.0, 10.0, GEOMETRY, EGO) == pytest.approx(80 / 3)

    def test_zero_speed_is_full_distance(self):
        assert slack(-30.0, 0.0, GEOMETRY, EGO) == pytest.approx(35.0)

    def test_inside_area_negative(self):
        assert slack(10.0, 5.0, GEOMETRY, EGO) == pytest.approx(-5.0)

    def test_past_area_infinite(self):
        assert slack(16.0, 5.0, GEOMETRY, EGO) == math.inf

    def test_negative_velocity_clamped(self):
        assert slack(-30.0, -3.0, GEOMETRY, EGO) == pytest.approx(35.0)

    def test_exactly_at_back_line_zero(self):
        assert slack(15.0, 0.0, GEOMETRY, EGO) == pytest.approx(0.0)


class TestEgoPassingWindow:
    def test_before_area_at_speed(self):
        w = ego_passing_window(2.0, -5.0, 10.0, GEOMETRY)
        assert w.lo == pytest.approx(3.0)
        assert w.hi == pytest.approx(4.0)

    def test_stationary_before_area_empty(self):
        assert ego_passing_window(0.0, -5.0, 0.0, GEOMETRY).is_empty

    def test_inside_area_opens_now(self):
        w = ego_passing_window(1.0, 10.0, 5.0, GEOMETRY)
        assert w.lo == 1.0
        assert w.hi == pytest.approx(2.0)

    def test_stationary_inside_area_unbounded(self):
        w = ego_passing_window(1.0, 10.0, 0.0, GEOMETRY)
        assert w.hi == math.inf

    def test_past_area_empty(self):
        assert ego_passing_window(0.0, 16.0, 10.0, GEOMETRY).is_empty


class TestBoundaryMargin:
    def test_positive(self):
        assert boundary_slack_margin(10.0, DT, EGO) > 0.0

    def test_grows_with_speed(self):
        assert boundary_slack_margin(15.0, DT, EGO) > boundary_slack_margin(
            5.0, DT, EGO
        )

    def test_formula(self):
        v = 10.0
        travel = v * DT + 0.5 * EGO.a_max * DT * DT
        factor = 1.0 - EGO.a_max / EGO.a_min
        assert boundary_slack_margin(v, DT, EGO) == pytest.approx(
            travel * factor
        )

    def test_margin_bounds_one_step_slack_drop(self):
        """No admissible step drops the slack by more than the margin."""
        from repro.dynamics.vehicle import VehicleModel

        model = VehicleModel(EGO)
        for v in (0.0, 3.0, 8.0, 15.0, 20.0):
            for p in (-20.0, -10.0, -3.0):
                s_now = slack(p, v, GEOMETRY, EGO)
                margin = boundary_slack_margin(v, DT, EGO)
                for a in (-6.0, -2.0, 0.0, 2.0, 4.0):
                    nxt = model.step(
                        VehicleState(position=p, velocity=v), a, DT
                    )
                    s_next = slack(
                        nxt.position, nxt.velocity, GEOMETRY, EGO
                    )
                    assert s_next >= s_now - margin - 1e-9


class TestSafetyModel:
    def test_unsafe_requires_negative_slack(self):
        model = _model()
        ego = VehicleState(position=-30.0, velocity=10.0)
        estimates = _oncoming_estimate(0.0, 40.0, -10.0)
        assert not model.in_estimated_unsafe_set(0.0, ego, estimates)

    def test_unsafe_inside_area_with_overlap(self):
        model = _model()
        # Ego inside the area at low speed; oncoming about to arrive.
        ego = VehicleState(position=8.0, velocity=2.0)
        estimates = _oncoming_estimate(0.0, 20.0, -12.0)
        assert model.in_estimated_unsafe_set(0.0, ego, estimates)

    def test_not_unsafe_when_oncoming_cleared(self):
        model = _model()
        ego = VehicleState(position=8.0, velocity=2.0)
        estimates = _oncoming_estimate(0.0, 3.0, -12.0)
        assert not model.in_estimated_unsafe_set(0.0, ego, estimates)

    def test_boundary_false_when_window_passed(self):
        model = _model()
        ego = VehicleState(position=4.9, velocity=0.5)
        estimates = _oncoming_estimate(0.0, 3.0, -12.0)
        assert not model.in_boundary_safe_set(0.0, ego, estimates)

    def test_parked_ego_cannot_creep_into_occupied_area(self):
        """The creep hole: a parked ego guarded by the monitor never
        crosses the line even if the embedded planner floors it every
        step the monitor leaves it in control."""
        from repro.dynamics.vehicle import VehicleModel

        model = _model()
        dynamics = VehicleModel(EGO)
        ego = VehicleState(position=4.9, velocity=0.0)
        oncoming_pos = 16.0
        for step in range(100):
            t = step * DT
            estimates = _oncoming_estimate(t, oncoming_pos, -10.0)
            if model.in_boundary_safe_set(t, ego, estimates):
                command = EGO.a_min  # emergency stops/holds
            else:
                command = EGO.a_max  # adversarial embedded planner
            ego = dynamics.step(ego, command, DT)
            oncoming_pos -= 10.0 * DT
            if oncoming_pos > GEOMETRY.oncoming_back:
                assert ego.position <= GEOMETRY.p_front + 1e-9

    def test_boundary_true_approaching_fast_with_conflict(self):
        model = _model()
        # Slack close to zero: v=12 -> braking 12 m; front gap 12.5 m.
        ego = VehicleState(position=-7.5, velocity=12.0)
        estimates = _oncoming_estimate(0.0, 30.0, -12.0)
        assert model.in_boundary_safe_set(0.0, ego, estimates)

    def test_boundary_false_with_large_slack_and_far_conflict(self):
        model = _model()
        ego = VehicleState(position=-30.0, velocity=5.0)
        estimates = _oncoming_estimate(0.0, 55.0, -10.0)
        assert not model.in_boundary_safe_set(0.0, ego, estimates)

    def test_committed_state_with_overlap_needs_escape(self):
        model = _model()
        # Inside the area while the oncoming vehicle may still arrive.
        ego = VehicleState(position=6.0, velocity=3.0)
        estimates = _oncoming_estimate(0.0, 25.0, -12.0)
        assert model.in_boundary_safe_set(0.0, ego, estimates)

    def test_committed_state_outwaiting_window_is_free(self):
        model = _model()
        # Ego committed but slow and far; full-throttle entry is later
        # than the latest possible oncoming exit.
        ego = VehicleState(position=-14.0, velocity=13.0)
        estimates = _oncoming_estimate(0.0, 15.5, -18.0)
        entry_ff, _ = model._full_throttle_times(0.0, -14.0, 13.0)
        window = model.oncoming_window(estimates)
        if entry_ff >= window.hi:
            assert not model.in_boundary_safe_set(0.0, ego, estimates)

    def test_past_area_never_boundary(self):
        model = _model()
        ego = VehicleState(position=16.0, velocity=5.0)
        estimates = _oncoming_estimate(0.0, 30.0, -12.0)
        assert not model.in_boundary_safe_set(0.0, ego, estimates)

    def test_missing_estimate_rejected(self):
        model = _model()
        ego = VehicleState(position=0.0, velocity=5.0)
        with pytest.raises(ScenarioError):
            model.in_boundary_safe_set(0.0, ego, {})

    def test_invalid_oncoming_index_rejected(self):
        with pytest.raises(ScenarioError):
            LeftTurnSafetyModel(
                geometry=GEOMETRY,
                ego_limits=EGO,
                oncoming_limits=ONCOMING,
                dt_c=DT,
                oncoming_index=0,
            )


class TestDegenerateWindows:
    """Degenerate ``[x, x]`` occupancy windows in set membership."""

    def test_ego_window_at_back_line_is_a_point(self):
        # An ego crossing the back line at speed occupies the area for
        # one instant: the projected window is the degenerate [t, t].
        window = ego_passing_window(3.0, GEOMETRY.p_back, 5.0, GEOMETRY)
        assert window.is_point
        assert window.lo == window.hi == 3.0
        # Closed-interval semantics: that instant still counts.
        assert window.overlaps(Interval(2.0, 4.0))
        assert not window.overlaps(Interval(3.5, 4.0))

    def test_unsafe_membership_with_point_ego_window(self):
        # Exactly at the back line the slack is zero, so the degenerate
        # window never puts the ego in the *unsafe* set on its own.
        time = 3.0
        ego = VehicleState(position=GEOMETRY.p_back, velocity=5.0)
        estimates = _oncoming_estimate(time, 60.0, -10.0)
        assert not _model().in_estimated_unsafe_set(time, ego, estimates)

    def test_boundary_membership_with_point_ego_window(self):
        # ...but the boundary set stays engaged while the conflict
        # window is open: the committed branch must not be fooled by a
        # zero-width projected occupancy.
        time = 3.0
        ego = VehicleState(position=GEOMETRY.p_back, velocity=5.0)
        estimates = _oncoming_estimate(time, 60.0, -10.0)
        model = _model()
        oncoming = model.oncoming_window(estimates)
        assert oncoming.hi > time  # the conflict is genuinely ahead
        assert model.in_boundary_safe_set(time, ego, estimates)
