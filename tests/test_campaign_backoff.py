"""Deterministic seeded backoff for chunk retries."""

from __future__ import annotations

import pytest

from repro.campaign.backoff import BackoffPolicy
from repro.errors import CampaignError

FP = "deadbeef" + "0" * 56
OTHER_FP = "cafebabe" + "0" * 56


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"cap": 0.0, "base_delay": 1.0},
            {"jitter": -0.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(CampaignError):
            BackoffPolicy(**kwargs)

    def test_attempt_numbers_start_at_one(self):
        with pytest.raises(CampaignError):
            BackoffPolicy().delay(FP, 0, 0)


class TestSchedule:
    def test_deterministic_in_all_three_arguments(self):
        policy = BackoffPolicy()
        assert policy.delay(FP, 3, 2) == policy.delay(FP, 3, 2)
        assert policy.delay(FP, 3, 2) != policy.delay(FP, 4, 2)
        assert policy.delay(FP, 3, 2) != policy.delay(FP, 3, 1)
        assert policy.delay(FP, 3, 2) != policy.delay(OTHER_FP, 3, 2)

    def test_exponential_growth_up_to_cap(self):
        policy = BackoffPolicy(base_delay=0.1, cap=1.0, jitter=0.0)
        assert policy.delay(FP, 0, 1) == pytest.approx(0.1)
        assert policy.delay(FP, 0, 2) == pytest.approx(0.2)
        assert policy.delay(FP, 0, 3) == pytest.approx(0.4)
        assert policy.delay(FP, 0, 4) == pytest.approx(0.8)
        assert policy.delay(FP, 0, 5) == pytest.approx(1.0)  # capped
        assert policy.delay(FP, 0, 12) == pytest.approx(1.0)

    def test_jitter_stays_within_relative_band(self):
        policy = BackoffPolicy(base_delay=0.1, cap=10.0, jitter=0.25)
        for attempt in range(1, 6):
            raw = min(10.0, 0.1 * 2 ** (attempt - 1))
            delay = policy.delay(FP, 7, attempt)
            assert raw <= delay <= raw * 1.25

    def test_zero_base_delay_yields_zero(self):
        policy = BackoffPolicy(base_delay=0.0, cap=1.0)
        assert policy.delay(FP, 0, 1) == 0.0

    def test_no_wall_clock_in_decision_path(self):
        # Delays for a fixed (fingerprint, chunk, attempt) are identical
        # across policy instances and call times.
        a = BackoffPolicy().delay(FP, 1, 3)
        b = BackoffPolicy().delay(FP, 1, 3)
        assert a == b  # safelint: disable=SFL001 - exact reproducibility is the contract under test
