"""Tests for band fusion and the fused-estimate container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dynamics.state import VehicleState
from repro.errors import FilterError
from repro.filtering.fusion import (
    FusedEstimate,
    fuse_bands,
    intersect_or_fallback,
)
from repro.filtering.reachability import ReachBand
from repro.utils.intervals import Interval

finite = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
ivs = st.tuples(finite, finite).map(lambda ab: Interval(*ab))


class TestIntersectOrFallback:
    def test_overlapping_intersects(self):
        out = intersect_or_fallback(Interval(0.0, 10.0), Interval(5.0, 15.0))
        assert out == Interval(5.0, 10.0)

    def test_disjoint_falls_back_to_sound(self):
        sound = Interval(0.0, 1.0)
        assert intersect_or_fallback(sound, Interval(5.0, 6.0)) == sound

    def test_empty_refiner_falls_back(self):
        sound = Interval(0.0, 1.0)
        assert intersect_or_fallback(sound, Interval.EMPTY) == sound

    def test_empty_sound_rejected(self):
        with pytest.raises(FilterError):
            intersect_or_fallback(Interval.EMPTY, Interval(0.0, 1.0))

    @given(ivs.filter(bool), ivs)
    def test_result_always_within_sound(self, sound, refining):
        out = intersect_or_fallback(sound, refining)
        assert sound.contains_interval(out)
        assert not out.is_empty


class TestFuseBands:
    def _reach(self):
        return ReachBand(
            time=1.0,
            position=Interval(0.0, 10.0),
            velocity=Interval(-15.0, -5.0),
        )

    def test_tightens_both_axes(self):
        fused = fuse_bands(
            self._reach(), Interval(2.0, 8.0), Interval(-12.0, -6.0)
        )
        assert fused.position == Interval(2.0, 8.0)
        assert fused.velocity == Interval(-12.0, -6.0)

    def test_keeps_time(self):
        fused = fuse_bands(self._reach(), Interval(0, 1), Interval(-10, -9))
        assert fused.time == 1.0

    def test_disjoint_kalman_band_ignored(self):
        fused = fuse_bands(
            self._reach(), Interval(100.0, 200.0), Interval(-12.0, -6.0)
        )
        assert fused.position == Interval(0.0, 10.0)


class TestFusedEstimate:
    def _nominal(self):
        return VehicleState(position=5.0, velocity=-10.0, acceleration=0.5)

    def test_fields(self):
        est = FusedEstimate(
            time=2.0,
            position=Interval(0.0, 10.0),
            velocity=Interval(-12.0, -8.0),
            nominal=self._nominal(),
            message_age=0.3,
        )
        assert est.position_uncertainty == 10.0
        assert est.velocity_uncertainty == 4.0
        assert est.message_age == 0.3

    def test_empty_band_rejected(self):
        with pytest.raises(FilterError):
            FusedEstimate(
                time=0.0,
                position=Interval.EMPTY,
                velocity=Interval(0.0, 1.0),
                nominal=self._nominal(),
            )

    def test_str_without_message(self):
        est = FusedEstimate(
            time=0.0,
            position=Interval(0.0, 1.0),
            velocity=Interval(0.0, 1.0),
            nominal=self._nominal(),
        )
        assert "msg_age=-" in str(est)
