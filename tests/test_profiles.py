"""Tests for acceleration profiles."""

import pytest

from repro.dynamics.profiles import (
    BrakeThenGoProfile,
    ConstantProfile,
    PiecewiseProfile,
    RandomSequenceProfile,
    RandomWalkProfile,
    SinusoidProfile,
    SpeedHoldProfile,
)
from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.utils.rng import RngStream

STATE = VehicleState(position=0.0, velocity=10.0)


class TestConstant:
    def test_value(self):
        profile = ConstantProfile(1.5)
        assert profile(0, 0.0, STATE) == 1.5
        assert profile(100, 5.0, STATE) == 1.5

    def test_default_zero(self):
        assert ConstantProfile()(0, 0.0, STATE) == 0.0


class TestRandomSequence:
    def test_bounded(self):
        profile = RandomSequenceProfile(RngStream(1), a_low=-2.0, a_high=2.0)
        values = [profile(i, i * 0.05, STATE) for i in range(100)]
        assert all(-2.0 <= v <= 2.0 for v in values)

    def test_consistent_on_requery(self):
        profile = RandomSequenceProfile(RngStream(2))
        first = profile(7, 0.35, STATE)
        assert profile(7, 0.35, STATE) == first

    def test_reproducible_across_instances(self):
        a = RandomSequenceProfile(RngStream(3))
        b = RandomSequenceProfile(RngStream(3))
        assert [a(i, 0.0, STATE) for i in range(10)] == [
            b(i, 0.0, STATE) for i in range(10)
        ]

    def test_realized_sequence(self):
        profile = RandomSequenceProfile(RngStream(4))
        profile(2, 0.1, STATE)
        assert len(profile.realized_sequence) == 3

    def test_negative_index_rejected(self):
        profile = RandomSequenceProfile(RngStream(5))
        with pytest.raises(ConfigurationError):
            profile(-1, 0.0, STATE)

    def test_bad_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSequenceProfile(RngStream(0), a_low=2.0, a_high=-2.0)


class TestRandomWalk:
    def test_bounded(self):
        profile = RandomWalkProfile(RngStream(1), a_low=-1.0, a_high=1.0)
        values = [profile(i, 0.0, STATE) for i in range(200)]
        assert all(-1.0 <= v <= 1.0 for v in values)

    def test_step_size_bounded(self):
        profile = RandomWalkProfile(RngStream(2), max_step=0.3)
        values = [profile(i, 0.0, STATE) for i in range(100)]
        diffs = [abs(b - a) for a, b in zip(values, values[1:])]
        assert max(diffs) <= 0.3 + 1e-12

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomWalkProfile(RngStream(0), a_low=-1.0, a_high=1.0, initial=5.0)


class TestPiecewise:
    def test_knot_selection(self):
        profile = PiecewiseProfile([(0.0, 1.0), (2.0, -1.0)])
        assert profile(0, 0.5, STATE) == 1.0
        assert profile(0, 2.0, STATE) == -1.0
        assert profile(0, 5.0, STATE) == -1.0

    def test_before_first_knot_is_zero(self):
        profile = PiecewiseProfile([(1.0, 2.0)])
        assert profile(0, 0.5, STATE) == 0.0

    def test_unordered_knots_sorted(self):
        profile = PiecewiseProfile([(2.0, -1.0), (0.0, 1.0)])
        assert profile(0, 1.0, STATE) == 1.0

    def test_duplicate_times_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseProfile([(1.0, 2.0), (1.0, 3.0)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseProfile([])


class TestSinusoid:
    def test_amplitude_bound(self):
        profile = SinusoidProfile(amplitude=2.0, period=4.0)
        values = [profile(0, t * 0.1, STATE) for t in range(100)]
        assert all(abs(v) <= 2.0 for v in values)

    def test_zero_at_phase_zero(self):
        assert SinusoidProfile(amplitude=1.0)(0, 0.0, STATE) == pytest.approx(
            0.0
        )

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigurationError):
            SinusoidProfile(period=0.0)


class TestBrakeThenGo:
    def test_phases(self):
        profile = BrakeThenGoProfile(
            t_brake=1.0, t_go=3.0, brake_accel=-3.0, go_accel=2.0
        )
        assert profile(0, 0.5, STATE) == 0.0
        assert profile(0, 2.0, STATE) == -3.0
        assert profile(0, 4.0, STATE) == 2.0

    def test_ordering_validated(self):
        with pytest.raises(ConfigurationError):
            BrakeThenGoProfile(t_brake=3.0, t_go=1.0)


class TestSpeedHold:
    def test_tracks_target(self):
        profile = SpeedHoldProfile(v_target=15.0, gain=1.0)
        slow = VehicleState(position=0.0, velocity=10.0)
        fast = VehicleState(position=0.0, velocity=20.0)
        assert profile(0, 0.0, slow) > 0.0
        assert profile(0, 0.0, fast) < 0.0

    def test_clipped(self):
        profile = SpeedHoldProfile(v_target=30.0, gain=10.0, a_high=2.0)
        assert profile(0, 0.0, STATE) == 2.0

    def test_switch_target(self):
        profile = SpeedHoldProfile(
            v_target=10.0, switch_time=5.0, v_target_after=0.0
        )
        at_speed = VehicleState(position=0.0, velocity=10.0)
        assert profile(0, 0.0, at_speed) == pytest.approx(0.0)
        assert profile(0, 6.0, at_speed) < 0.0

    def test_switch_requires_both_fields(self):
        with pytest.raises(ConfigurationError):
            SpeedHoldProfile(v_target=10.0, switch_time=5.0)
