"""Tests for left-turn geometry and arrival-time kinematics."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.errors import ScenarioError
from repro.scenarios.left_turn.geometry import (
    NEVER,
    LeftTurnGeometry,
    arrival_time_under,
    earliest_arrival_time,
    latest_arrival_time,
    traversal_window,
)


class TestGeometryConstruction:
    def test_defaults_match_paper(self):
        g = LeftTurnGeometry()
        assert g.p_front == 5.0
        assert g.p_back == 15.0
        assert g.p_target == 20.0

    def test_reversed_area_rejected(self):
        with pytest.raises(ScenarioError):
            LeftTurnGeometry(p_front=15.0, p_back=5.0)

    def test_oncoming_lines_ordering_enforced(self):
        with pytest.raises(ScenarioError):
            LeftTurnGeometry(oncoming_front=5.0, oncoming_back=15.0)

    def test_target_before_back_rejected(self):
        with pytest.raises(ScenarioError):
            LeftTurnGeometry(p_target=10.0)


class TestEgoSide:
    g = LeftTurnGeometry()

    def test_distances(self):
        assert self.g.ego_distance_to_front(-30.0) == 35.0
        assert self.g.ego_distance_to_back(-30.0) == 45.0

    def test_inside_open_interval(self):
        assert not self.g.ego_inside(5.0)
        assert self.g.ego_inside(5.001)
        assert self.g.ego_inside(14.999)
        assert not self.g.ego_inside(15.0)

    def test_cleared(self):
        assert self.g.ego_cleared(15.1)
        assert not self.g.ego_cleared(15.0)

    def test_target(self):
        assert self.g.ego_reached_target(20.0)
        assert not self.g.ego_reached_target(19.9)


class TestOncomingSide:
    g = LeftTurnGeometry()

    def test_distances_along_travel(self):
        # The oncoming vehicle travels toward decreasing coordinates.
        assert self.g.oncoming_distance_to_front(50.0) == 35.0
        assert self.g.oncoming_distance_to_back(50.0) == 45.0

    def test_inside_open_interval(self):
        assert not self.g.oncoming_inside(15.0)
        assert self.g.oncoming_inside(14.9)
        assert not self.g.oncoming_inside(5.0)

    def test_cleared(self):
        assert self.g.oncoming_cleared(4.9)
        assert not self.g.oncoming_cleared(5.0)

    def test_collision_requires_both_inside(self):
        assert self.g.collision(10.0, 10.0)
        assert not self.g.collision(10.0, 20.0)
        assert not self.g.collision(2.0, 10.0)


class TestEarliestArrival:
    def test_already_arrived(self):
        assert earliest_arrival_time(-1.0, 10.0, 20.0, 3.0) == 0.0
        assert earliest_arrival_time(0.0, 10.0, 20.0, 3.0) == 0.0

    def test_constant_speed(self):
        assert earliest_arrival_time(30.0, 10.0, 20.0, 0.0) == pytest.approx(
            3.0
        )

    def test_stationary_no_accel_never_arrives(self):
        assert earliest_arrival_time(10.0, 0.0, 20.0, 0.0) == NEVER

    def test_pure_acceleration_branch(self):
        # d = v t + a t^2 / 2 with v=0, a=2, d=4 -> t=2.
        assert earliest_arrival_time(4.0, 0.0, 100.0, 2.0) == pytest.approx(
            2.0
        )

    def test_saturating_branch(self):
        # v=18, cap 20, a=4: d_th = (400-324)/8 = 9.5.
        # For d=29.5: 0.5 s ramp + 20/20 = 1 s cruise = 1.5 s.
        assert earliest_arrival_time(29.5, 18.0, 20.0, 4.0) == pytest.approx(
            1.5
        )

    def test_invalid_cap_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            earliest_arrival_time(1.0, 0.0, 0.0, 1.0)

    def test_negative_accel_cap_rejected(self):
        with pytest.raises(ScenarioError):
            earliest_arrival_time(1.0, 0.0, 10.0, -1.0)


class TestLatestArrival:
    def test_already_arrived(self):
        assert latest_arrival_time(0.0, 10.0, 2.0, -3.0) == 0.0

    def test_can_stop_short_never_arrives(self):
        # v=5, decel 3: stop distance 25/6 < 10.
        assert latest_arrival_time(10.0, 5.0, 0.0, -3.0) == NEVER

    def test_cannot_stop_before(self):
        # v=10, decel 2: stop distance 25 > 16; d = vt - t^2:
        # 16 = 10 t - t^2 -> t = 2.
        assert latest_arrival_time(16.0, 10.0, 0.0, -2.0) == pytest.approx(2.0)

    def test_floor_then_crawl(self):
        # v=10 -> floor 2 at decel 2 after 4 s covering 24 m; then
        # 6 m at 2 m/s = 3 s.
        assert latest_arrival_time(30.0, 10.0, 2.0, -2.0) == pytest.approx(7.0)

    def test_constant_speed(self):
        assert latest_arrival_time(30.0, 10.0, 2.0, 0.0) == pytest.approx(3.0)

    def test_invalid_floor_rejected(self):
        with pytest.raises(ScenarioError):
            latest_arrival_time(1.0, 5.0, -1.0, -2.0)

    def test_positive_a_floor_rejected(self):
        with pytest.raises(ScenarioError):
            latest_arrival_time(1.0, 5.0, 0.0, 1.0)


class TestArrivalTimeUnder:
    def test_positive_accel_matches_earliest(self):
        assert arrival_time_under(20.0, 8.0, 2.0, 15.0, 0.0) == pytest.approx(
            earliest_arrival_time(20.0, 8.0, 15.0, 2.0)
        )

    def test_negative_accel_matches_latest(self):
        assert arrival_time_under(20.0, 8.0, -2.0, 30.0, 2.0) == pytest.approx(
            latest_arrival_time(20.0, 8.0, 2.0, -2.0)
        )

    def test_zero_accel(self):
        assert arrival_time_under(20.0, 8.0, 0.0, 30.0, 0.0) == pytest.approx(
            2.5
        )

    def test_decelerating_to_stop_never_arrives(self):
        assert arrival_time_under(100.0, 5.0, -3.0, 30.0, 0.0) == NEVER

    def test_invalid_velocity_bounds_rejected(self):
        with pytest.raises(ScenarioError):
            arrival_time_under(1.0, 0.0, 0.0, 1.0, 2.0)


class TestArrivalAgainstSimulation:
    """Closed forms must match the saturating integrator."""

    LIMITS = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)

    def _simulated_arrival(self, distance, v0, accel, dt=0.001):
        model = VehicleModel(self.LIMITS)
        state = VehicleState(position=0.0, velocity=v0)
        t = 0.0
        for _ in range(200_000):
            if state.position >= distance:
                return t
            state = model.step(state, accel, dt)
            t += dt
        return NEVER

    @given(
        distance=st.floats(1.0, 60.0),
        v0=st.floats(0.0, 20.0),
        accel=st.floats(0.5, 4.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_earliest_matches_integration(self, distance, v0, accel):
        closed = earliest_arrival_time(distance, v0, 20.0, accel)
        simulated = self._simulated_arrival(distance, v0, accel)
        assert simulated == pytest.approx(closed, abs=0.01)

    @given(
        distance=st.floats(1.0, 40.0),
        v0=st.floats(1.0, 20.0),
        decel=st.floats(-4.0, -0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_latest_matches_integration(self, distance, v0, decel):
        # Exactly at the reach/no-reach boundary (stopping distance ==
        # target distance) the dt=1e-3 integrator cannot resolve the
        # outcome the closed form decides by sub-ulp margins; the
        # property is only well-posed away from the knife edge.
        assume(abs(v0 * v0 / (2.0 * -decel) - distance) > 0.01)
        closed = latest_arrival_time(distance, v0, 0.0, decel)
        simulated = self._simulated_arrival(distance, v0, decel)
        if closed == NEVER:
            assert simulated == NEVER
        else:
            assert simulated == pytest.approx(closed, abs=0.01)


class TestTraversalWindow:
    def test_basic_window(self):
        w = traversal_window(
            d_front=20.0,
            d_back=30.0,
            velocity=10.0,
            v_cap=20.0,
            a_cap=3.0,
            v_floor=2.0,
            a_floor=-3.0,
        )
        assert w.lo < w.hi
        assert w.lo <= 20.0 / 10.0  # at least as early as constant speed

    def test_cleared_vehicle_empty(self):
        w = traversal_window(-10.0, -1.0, 10.0, 20.0, 3.0, 2.0, -3.0)
        assert w.is_empty

    def test_bad_ordering_rejected(self):
        with pytest.raises(ScenarioError):
            traversal_window(10.0, 5.0, 10.0, 20.0, 3.0, 2.0, -3.0)

    def test_unreachable_entry_empty(self):
        w = traversal_window(10.0, 20.0, 0.0, 20.0, 0.0, 0.0, 0.0)
        assert w.is_empty
