"""Tests for losses and their gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.nn.losses import HuberLoss, MAELoss, MSELoss

SHAPE = (4, 2)
batch = arrays(
    float,
    SHAPE,
    elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
)


def numerical_gradient(loss, p, t, eps=1e-6):
    grad = np.zeros_like(p)
    it = np.nditer(p, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = p[idx]
        p[idx] = orig + eps
        hi = loss.value(p, t)
        p[idx] = orig - eps
        lo = loss.value(p, t)
        p[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestMSE:
    def test_zero_at_perfect_prediction(self):
        x = np.ones(SHAPE)
        assert MSELoss().value(x, x) == 0.0

    def test_known_value(self):
        p = np.array([[1.0], [3.0]])
        t = np.array([[0.0], [0.0]])
        assert MSELoss().value(p, t) == pytest.approx(5.0)

    def test_gradient_numerically(self):
        rng = np.random.default_rng(0)
        p = rng.normal(size=SHAPE)
        t = rng.normal(size=SHAPE)
        assert np.allclose(
            MSELoss().gradient(p, t), numerical_gradient(MSELoss(), p, t),
            atol=1e-6,
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MSELoss().value(np.zeros((2, 1)), np.zeros((3, 1)))

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            MSELoss().value(np.zeros(3), np.zeros(3))


class TestMAE:
    def test_known_value(self):
        p = np.array([[1.0], [-3.0]])
        t = np.array([[0.0], [0.0]])
        assert MAELoss().value(p, t) == pytest.approx(2.0)

    def test_gradient_numerically_away_from_kink(self):
        rng = np.random.default_rng(1)
        p = rng.normal(size=SHAPE) + 5.0  # residuals well away from 0
        t = rng.normal(size=SHAPE) - 5.0
        assert np.allclose(
            MAELoss().gradient(p, t), numerical_gradient(MAELoss(), p, t),
            atol=1e-6,
        )


class TestHuber:
    def test_quadratic_region_matches_half_mse(self):
        p = np.full(SHAPE, 0.3)
        t = np.zeros(SHAPE)
        assert HuberLoss(delta=1.0).value(p, t) == pytest.approx(
            0.5 * 0.3**2
        )

    def test_linear_region(self):
        p = np.full(SHAPE, 5.0)
        t = np.zeros(SHAPE)
        assert HuberLoss(delta=1.0).value(p, t) == pytest.approx(
            1.0 * (5.0 - 0.5)
        )

    def test_gradient_numerically(self):
        rng = np.random.default_rng(2)
        p = rng.normal(size=SHAPE) * 3
        t = rng.normal(size=SHAPE)
        loss = HuberLoss(delta=1.0)
        assert np.allclose(
            loss.gradient(p, t), numerical_gradient(loss, p, t), atol=1e-5
        )

    def test_bad_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            HuberLoss(delta=0.0)


class TestProperties:
    @given(batch, batch)
    @settings(max_examples=50)
    def test_losses_nonnegative(self, p, t):
        for loss in (MSELoss(), MAELoss(), HuberLoss()):
            assert loss.value(p, t) >= 0.0

    @given(batch)
    @settings(max_examples=50)
    def test_zero_at_identity(self, p):
        for loss in (MSELoss(), MAELoss(), HuberLoss()):
            assert loss.value(p, p.copy()) == 0.0

    @given(batch, batch)
    @settings(max_examples=50)
    def test_huber_bounded_by_mse_and_mae_regimes(self, p, t):
        # Huber <= 0.5 * MSE pointwise mean and Huber <= delta * MAE.
        huber = HuberLoss(delta=1.0).value(p, t)
        assert huber <= 0.5 * MSELoss().value(p, t) + 1e-9
        assert huber <= 1.0 * MAELoss().value(p, t) + 1e-9
