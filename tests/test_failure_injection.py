"""Failure-injection tests: the compound planner under pathological inputs.

The framework's promise is that the monitor + emergency planner are the
"last line of defense" regardless of the embedded planner or the
environment.  These tests inject the failures a deployment would see —
broken networks, garbage sensors, adversarial or numerically broken
planners — and assert safety survives all of them.
"""

import math

import pytest

from repro.comm.disturbance import messages_lost, no_disturbance
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.planners.base import PlanningContext
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import BatchRunner, EstimatorKind

N_RUNS = 15


class NaNPlanner:
    """A numerically broken planner: always NaN."""

    def plan(self, context: PlanningContext) -> float:
        return math.nan


class InfPlanner:
    """A numerically broken planner: always +inf."""

    def plan(self, context: PlanningContext) -> float:
        return math.inf


class OscillatingPlanner:
    """Worst-case chattering: alternates full throttle and full brake."""

    def __init__(self, limits):
        self._limits = limits
        self._flip = False

    def plan(self, context: PlanningContext) -> float:
        self._flip = not self._flip
        return self._limits.a_max if self._flip else self._limits.a_min


class AdversarialMonitorProbe:
    """Accelerates exactly when near the unsafe area, brakes elsewhere.

    Designed to probe the boundary set: it pushes hardest where pushing
    is most dangerous.
    """

    def __init__(self, scenario):
        self._scenario = scenario

    def plan(self, context: PlanningContext) -> float:
        distance = self._scenario.geometry.ego_distance_to_front(
            context.ego.position
        )
        limits = self._scenario.ego_limits
        if -5.0 < distance < 15.0:
            return limits.a_max
        return 1.0


def _compound(scenario, embedded):
    return CompoundPlanner(
        nn_planner=embedded,
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
    )


def _engine(scenario, comm):
    return SimulationEngine(
        scenario,
        comm,
        SimulationConfig(max_time=30.0, record_trajectories=False),
    )


GOOD_COMM = CommSetup(
    0.1, 0.1, no_disturbance(), NoiseBounds.uniform_all(1.0)
)
#: Total communication blackout with near-useless sensors.
AWFUL_COMM = CommSetup(
    0.1, 0.1, messages_lost(), NoiseBounds.uniform_all(5.0)
)


class TestBrokenPlanners:
    @pytest.mark.parametrize("planner_cls", [NaNPlanner, InfPlanner])
    def test_numerically_broken_planner_is_contained(
        self, scenario, planner_cls
    ):
        planner = _compound(scenario, planner_cls())
        results = BatchRunner(
            _engine(scenario, GOOD_COMM), EstimatorKind.FILTERED
        ).run_batch(planner, N_RUNS, seed=300)
        assert all(r.outcome is not Outcome.COLLISION for r in results)

    def test_nan_planner_alone_is_sanitised_to_braking(self, scenario):
        # Even unwrapped, the compound's clipping maps NaN to full brake,
        # so the NaN planner just parks the vehicle: timeout, no crash.
        planner = _compound(scenario, NaNPlanner())
        result = BatchRunner(
            _engine(scenario, GOOD_COMM), EstimatorKind.FILTERED
        ).run_one(planner, seed=1)
        assert result.outcome in (Outcome.TIMEOUT, Outcome.REACHED)

    def test_oscillating_planner_is_contained(self, scenario):
        planner = _compound(
            scenario, OscillatingPlanner(scenario.ego_limits)
        )
        results = BatchRunner(
            _engine(scenario, GOOD_COMM), EstimatorKind.FILTERED
        ).run_batch(planner, N_RUNS, seed=301)
        assert all(r.outcome is not Outcome.COLLISION for r in results)

    def test_adversarial_probe_is_contained(self, scenario):
        planner = _compound(scenario, AdversarialMonitorProbe(scenario))
        results = BatchRunner(
            _engine(scenario, GOOD_COMM), EstimatorKind.FILTERED
        ).run_batch(planner, N_RUNS, seed=302)
        assert all(r.outcome is not Outcome.COLLISION for r in results)


class TestBrokenEnvironment:
    def test_blackout_with_terrible_sensors(self, scenario):
        """No messages, sensors at 5x the paper's worst uncertainty."""
        planner = _compound(scenario, AdversarialMonitorProbe(scenario))
        for kind in (EstimatorKind.RAW, EstimatorKind.FILTERED):
            results = BatchRunner(
                _engine(scenario, AWFUL_COMM), kind
            ).run_batch(planner, N_RUNS, seed=303)
            assert all(
                r.outcome is not Outcome.COLLISION for r in results
            )

    def test_blackout_costs_efficiency_not_safety(
        self, scenario, tiny_aggressive_spec
    ):
        from repro.scenarios.left_turn.passing_time import (
            PassingWindowEstimator,
        )

        nn = tiny_aggressive_spec.build_planner(
            PassingWindowEstimator(
                scenario.geometry, scenario.oncoming_limits, aggressive=True
            ),
            scenario.ego_limits,
        )
        good = BatchRunner(
            _engine(scenario, GOOD_COMM), EstimatorKind.FILTERED
        ).run_batch(_compound(scenario, nn), N_RUNS, seed=304)
        awful = BatchRunner(
            _engine(scenario, AWFUL_COMM), EstimatorKind.FILTERED
        ).run_batch(_compound(scenario, nn), N_RUNS, seed=304)
        assert all(r.is_safe for r in good)
        assert all(r.is_safe for r in awful)
        good_reached = [r for r in good if r.outcome is Outcome.REACHED]
        awful_reached = [r for r in awful if r.outcome is Outcome.REACHED]
        if good_reached and awful_reached:
            mean_good = sum(r.reaching_time for r in good_reached) / len(
                good_reached
            )
            mean_awful = sum(r.reaching_time for r in awful_reached) / len(
                awful_reached
            )
            assert mean_awful >= mean_good - 0.25


class TestSlowSchedules:
    def test_sparse_sensing_and_messaging_still_safe(self, scenario):
        """1.6 s between updates (32 control steps of blindness)."""
        comm = CommSetup(
            dt_m=1.6,
            dt_s=1.6,
            disturbance=no_disturbance(),
            sensor_bounds=NoiseBounds.uniform_all(2.0),
        )
        planner = _compound(scenario, AdversarialMonitorProbe(scenario))
        results = BatchRunner(
            _engine(scenario, comm), EstimatorKind.FILTERED
        ).run_batch(planner, N_RUNS, seed=305)
        assert all(r.outcome is not Outcome.COLLISION for r in results)
