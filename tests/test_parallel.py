"""Tests for the multiprocess batch runner."""

import pytest

from repro.comm.disturbance import messages_delayed
from repro.errors import SimulationError
from repro.planners.constant import ConstantPlanner
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.parallel import ParallelBatchRunner
from repro.sim.runner import BatchRunner, EstimatorKind


def _comm():
    return CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=messages_delayed(0.25, 0.3),
        sensor_bounds=NoiseBounds.uniform_all(1.0),
    )


def _config():
    return SimulationConfig(max_time=8.0, record_trajectories=False)


class TestEquivalence:
    def test_matches_sequential_runner_exactly(self, scenario):
        planner = ConstantPlanner(2.0)
        sequential = BatchRunner(
            SimulationEngine(scenario, _comm(), _config()),
            EstimatorKind.RAW,
        ).run_batch(planner, 8, seed=11)
        parallel = ParallelBatchRunner(
            scenario,
            _comm(),
            _config(),
            estimator_kind=EstimatorKind.RAW,
            n_workers=3,
        ).run_batch(planner, 8, seed=11)
        assert len(parallel) == len(sequential)
        for a, b in zip(parallel, sequential):
            assert a.outcome == b.outcome
            assert a.reaching_time == b.reaching_time
            assert a.steps == b.steps

    def test_single_worker_path(self, scenario):
        runner = ParallelBatchRunner(
            scenario, _comm(), _config(),
            estimator_kind=EstimatorKind.RAW, n_workers=1,
        )
        results = runner.run_batch(ConstantPlanner(2.0), 3, seed=0)
        assert len(results) == 3

    def test_more_workers_than_sims(self, scenario):
        runner = ParallelBatchRunner(
            scenario, _comm(), _config(),
            estimator_kind=EstimatorKind.RAW, n_workers=8,
        )
        results = runner.run_batch(ConstantPlanner(2.0), 2, seed=0)
        assert len(results) == 2


class TestValidation:
    def test_bad_batch_size(self, scenario):
        runner = ParallelBatchRunner(
            scenario, _comm(), _config(), n_workers=2
        )
        with pytest.raises(SimulationError):
            runner.run_batch(ConstantPlanner(0.0), 0)

    def test_bad_worker_count(self, scenario):
        with pytest.raises(SimulationError):
            ParallelBatchRunner(scenario, _comm(), _config(), n_workers=0)

    def test_default_config_disables_trajectories(self, scenario):
        runner = ParallelBatchRunner(
            scenario, _comm(), estimator_kind=EstimatorKind.RAW, n_workers=2
        )
        results = runner.run_batch(ConstantPlanner(2.0), 2, seed=1)
        assert all(r.trajectories == [] for r in results)
