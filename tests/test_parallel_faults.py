"""Failure-path tests for the crash-tolerant parallel runner.

Each test injects one of the infrastructure failures the runner must
contain — an in-episode exception, a dying worker, a garbage payload, a
hung worker — and asserts the contract: surviving episodes are
bit-identical to the sequential runner's, failed episodes surface as
structured records, and bounded retries with the same seeds recover
transient failures exactly.
"""

import time

import pytest

from repro.comm.disturbance import messages_delayed
from repro.errors import PlannerError, SimulationError
from repro.faults import WorkerChaosOnce
from repro.planners.constant import ConstantPlanner
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.parallel import ParallelBatchRunner
from repro.sim.runner import BatchRunner, EstimatorKind


def _comm():
    return CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=messages_delayed(0.25, 0.3),
        sensor_bounds=NoiseBounds.uniform_all(1.0),
    )


def _config():
    return SimulationConfig(max_time=8.0, record_trajectories=False)


def _fingerprint(result):
    return (
        result.outcome,
        result.reaching_time,
        result.collision_time,
        result.steps,
        result.emergency_steps,
    )


class FlakyPlanner:
    """Raises for a deterministic, seed-derived subset of episodes.

    The failure decision hashes the first step's fused estimate — a pure
    function of the episode seed — so sequential and parallel execution
    fail exactly the same episodes regardless of worker scheduling or
    retry order.
    """

    def __init__(self, acceleration=2.0, threshold=0.5):
        self._acceleration = acceleration
        self._threshold = threshold
        self.reset()

    def reset(self):
        self._decided = False
        self._fail = False

    def plan(self, context):
        if not self._decided:
            self._decided = True
            probe = context.estimates[1].nominal.position
            self._fail = (probe * 7.919) % 1.0 < self._threshold
        if self._fail:
            raise PlannerError("flaky planner: injected episode failure")
        return self._acceleration


class SleepyPlanner:
    """Sleeps far past any per-simulation budget on every step."""

    def plan(self, context):
        time.sleep(60.0)
        return 0.0


def _runner(scenario, **kwargs):
    kwargs.setdefault("estimator_kind", EstimatorKind.RAW)
    kwargs.setdefault("n_workers", 2)
    return ParallelBatchRunner(scenario, _comm(), _config(), **kwargs)


def _sequential(scenario):
    return BatchRunner(
        SimulationEngine(scenario, _comm(), _config()), EstimatorKind.RAW
    )


class TestSimulationErrors:
    def test_matches_sequential_failures_and_survivors(self, scenario):
        planner = FlakyPlanner()
        reference = _sequential(scenario).run_batch_detailed(
            planner, 8, seed=11
        )
        batch = _runner(scenario, n_workers=3).run_batch_detailed(
            planner, 8, seed=11
        )
        # The probe threshold must actually split the batch.
        assert 0 < reference.n_failed < reference.n_total
        assert batch.failed_indices == reference.failed_indices
        assert all(f.stage == "simulation" for f in batch.failures)
        assert all(f.error_type == "PlannerError" for f in batch.failures)
        for mine, ref in zip(batch.results, reference.results):
            if ref is None:
                assert mine is None
            else:
                assert _fingerprint(mine) == _fingerprint(ref)

    def test_in_episode_errors_are_not_retried(self, scenario):
        batch = _runner(scenario, max_retries=3).run_batch_detailed(
            FlakyPlanner(), 6, seed=11
        )
        assert batch.n_failed > 0
        assert all(f.attempts == 1 for f in batch.failures)

    def test_run_batch_raises_with_failure_summary(self, scenario):
        with pytest.raises(SimulationError, match="simulations failed"):
            _runner(scenario).run_batch(FlakyPlanner(), 6, seed=11)

    def test_single_worker_path_records_failures(self, scenario):
        batch = _runner(scenario, n_workers=1).run_batch_detailed(
            FlakyPlanner(), 6, seed=11
        )
        reference = _sequential(scenario).run_batch_detailed(
            FlakyPlanner(), 6, seed=11
        )
        assert batch.failed_indices == reference.failed_indices


class TestWorkerCrash:
    def test_crash_is_retried_to_bit_identical_results(self, scenario, tmp_path):
        chaos = WorkerChaosOnce(str(tmp_path / "crash"), mode="exit")
        planner = ConstantPlanner(2.0)
        clean = _runner(scenario).run_batch(planner, 6, seed=3)
        crashed = _runner(scenario, chaos=chaos).run_batch(planner, 6, seed=3)
        assert not chaos.armed()  # the crash really happened
        assert [_fingerprint(r) for r in crashed] == [
            _fingerprint(r) for r in clean
        ]

    def test_crash_with_retries_exhausted_surfaces_worker_records(
        self, scenario, tmp_path
    ):
        chaos = WorkerChaosOnce(str(tmp_path / "crash"), mode="exit")
        batch = _runner(scenario, chaos=chaos, max_retries=0).run_batch_detailed(
            ConstantPlanner(2.0), 6, seed=3
        )
        assert not chaos.armed()
        # A worker death marks the whole pool broken, so with zero
        # retries every chunk of the round fails (retries are how
        # siblings normally recover — see the test above).
        assert batch.n_failed > 0
        assert all(f.stage == "worker" for f in batch.failures)
        assert all(f.attempts == 1 for f in batch.failures)


class TestGarbagePayload:
    def test_garbage_is_retried_to_bit_identical_results(
        self, scenario, tmp_path
    ):
        chaos = WorkerChaosOnce(str(tmp_path / "garbage"), mode="garbage")
        planner = ConstantPlanner(2.0)
        clean = _runner(scenario).run_batch(planner, 6, seed=3)
        garbled = _runner(scenario, chaos=chaos).run_batch(planner, 6, seed=3)
        assert not chaos.armed()
        assert [_fingerprint(r) for r in garbled] == [
            _fingerprint(r) for r in clean
        ]

    def test_garbage_with_retries_exhausted_is_marked_malformed(
        self, scenario, tmp_path
    ):
        chaos = WorkerChaosOnce(str(tmp_path / "garbage"), mode="garbage")
        batch = _runner(scenario, chaos=chaos, max_retries=0).run_batch_detailed(
            ConstantPlanner(2.0), 6, seed=3
        )
        assert not chaos.armed()
        assert batch.n_failed > 0
        assert all(f.stage == "worker" for f in batch.failures)
        assert any("MalformedPayload" == f.error_type for f in batch.failures)


class TestTimeout:
    def test_hung_simulations_surface_timeout_records(self, scenario):
        batch = _runner(
            scenario, timeout_per_sim=0.75, max_retries=0
        ).run_batch_detailed(SleepyPlanner(), 2, seed=0)
        assert batch.n_failed == 2
        assert all(f.stage == "timeout" for f in batch.failures)
        assert batch.completed == []

    def test_timeout_budget_scales_with_chunk_size(self, scenario):
        """A healthy batch under a generous per-sim budget completes."""
        batch = _runner(
            scenario, timeout_per_sim=120.0, max_retries=0
        ).run_batch_detailed(ConstantPlanner(2.0), 4, seed=1)
        assert batch.n_failed == 0
        assert len(batch.completed) == 4


class TestValidation:
    def test_negative_max_retries_rejected(self, scenario):
        with pytest.raises(SimulationError):
            _runner(scenario, max_retries=-1)

    def test_nonpositive_timeout_rejected(self, scenario):
        with pytest.raises(SimulationError):
            _runner(scenario, timeout_per_sim=0.0)

    def test_engine_in_place_of_scenario_rejected(self, scenario):
        # Easy mixup with BatchRunner (which wraps an engine); without
        # the guard this only fails inside the workers, after retries.
        engine = SimulationEngine(scenario, _comm(), _config())
        with pytest.raises(SimulationError, match="not a SimulationEngine"):
            ParallelBatchRunner(engine, _comm(), _config())
