"""The ``repro-campaign`` command line: lifecycle and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.campaign.cli import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_VERIFY_FAILED,
    main,
)
from repro.campaign.journal import JournalWriter
from repro.campaign.manifest import CampaignManifest


@pytest.fixture()
def manifest_path(tmp_path):
    manifest = CampaignManifest(
        name="cli-test",
        scenario={"kind": "left_turn"},
        comm={"sensor_noise": 0.3},
        planner={"kind": "constant", "acceleration": 2.0},
        n_sims=2,
        seed=5,
        chunk_size=1,
        config={"max_time": 8.0},
    )
    return manifest.save(tmp_path / "manifest.json")


class TestLifecycle:
    def test_run_status_verify_resume(self, manifest_path, tmp_path, capsys):
        directory = tmp_path / "campaign"

        code = main(
            ["run", "--manifest", str(manifest_path), "--dir", str(directory)]
        )
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "completed" in out
        assert "results digest:" in out

        code = main(["status", "--dir", str(directory), "--json"])
        status = json.loads(capsys.readouterr().out)
        assert code == EXIT_OK
        assert status["finished"] is True
        assert status["completed_chunks"] == 2
        # Operational fields from the journal: retries and wall time.
        assert status["total_retries"] == 0
        assert status["chunk_retries"] == {}
        assert status["elapsed"]["chunks_timed"] == 2
        assert status["elapsed"]["total_seconds"] >= 0.0

        code = main(["verify", "--dir", str(directory)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "verify ok" in out

        # resuming a finished campaign succeeds without re-running
        code = main(["resume", "--dir", str(directory)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "0 run now" in out


class TestErrorPaths:
    def test_missing_manifest_is_campaign_error(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--manifest",
                str(tmp_path / "absent.json"),
                "--dir",
                str(tmp_path / "campaign"),
            ]
        )
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_resume_without_journal_is_error(self, manifest_path, tmp_path, capsys):
        directory = tmp_path / "campaign"
        directory.mkdir()
        CampaignManifest.load(manifest_path).save(directory / "manifest.json")
        code = main(["resume", "--dir", str(directory)])
        assert code == EXIT_ERROR
        assert "no journal" in capsys.readouterr().err

    def test_bad_planner_kind_is_error(self, tmp_path, capsys):
        manifest = CampaignManifest(
            name="bad",
            scenario={"kind": "left_turn"},
            comm={},
            planner={"kind": "teleporting"},
            n_sims=1,
            seed=0,
            chunk_size=1,
        )
        path = manifest.save(tmp_path / "manifest.json")
        code = main(
            ["run", "--manifest", str(path), "--dir", str(tmp_path / "c")]
        )
        assert code == EXIT_ERROR
        assert "unknown planner kind" in capsys.readouterr().err

    def test_status_on_header_only_journal(self, manifest_path, tmp_path, capsys):
        """A campaign killed right after the header record still reports."""
        directory = tmp_path / "campaign"
        directory.mkdir()
        manifest = CampaignManifest.load(manifest_path)
        manifest.save(directory / "manifest.json")
        with JournalWriter(directory / "journal.jsonl") as journal:
            journal.append(
                "campaign_started",
                fingerprint=manifest.fingerprint,
                name=manifest.name,
                n_sims=manifest.n_sims,
                n_chunks=manifest.n_chunks,
            )
        code = main(["status", "--dir", str(directory), "--json"])
        status = json.loads(capsys.readouterr().out)
        assert code == EXIT_OK
        assert status["completed_chunks"] == 0
        assert status["journal_records"] == 1
        assert status["finished"] is False
        assert status["interrupted"] is False
        assert status["total_retries"] == 0
        assert status["elapsed"] is None  # no chunk carried a duration yet

    def test_verify_failure_exit_code(self, manifest_path, tmp_path, capsys):
        directory = tmp_path / "campaign"
        assert (
            main(
                [
                    "run",
                    "--manifest",
                    str(manifest_path),
                    "--dir",
                    str(directory),
                ]
            )
            == EXIT_OK
        )
        capsys.readouterr()
        chunk = directory / "chunks" / "chunk-00000.json"
        snapshot = json.loads(chunk.read_text())
        for record in snapshot["results"].values():
            record["steps"] = record.get("steps", 0) + 1
        chunk.write_text(json.dumps(snapshot))
        code = main(["verify", "--dir", str(directory), "--json"])
        outcome = json.loads(capsys.readouterr().out)
        assert code == EXIT_VERIFY_FAILED
        assert outcome["ok"] is False
        assert outcome["problems"]


class TestFlagValidation:
    """Nonsensical knob values fail fast, before anything touches disk."""

    @pytest.mark.parametrize(
        ("command", "flags", "message"),
        [
            ("run", ["--workers", "0"], "--workers"),
            ("run", ["--max-retries", "-1"], "--max-retries"),
            ("run", ["--chunk-attempts", "0"], "--chunk-attempts"),
            ("run", ["--chunk-timeout", "0"], "--chunk-timeout"),
            ("run", ["--chunk-timeout", "-2.5"], "--chunk-timeout"),
            ("shard-run", ["--lease-ttl", "0"], "--lease-ttl"),
            ("shard-run", ["--lease-ttl", "nan"], "--lease-ttl"),
            ("shard-run", ["--lease-ttl", "-3"], "--lease-ttl"),
            ("shard-run", ["--heartbeat-interval", "0"], "--heartbeat-interval"),
            (
                "shard-run",
                ["--heartbeat-interval", "nan"],
                "--heartbeat-interval",
            ),
            (
                "shard-run",
                ["--lease-ttl", "1", "--heartbeat-interval", "2"],
                "--heartbeat-interval",
            ),
            ("shard-run", ["--straggler-factor", "0.5"], "--straggler-factor"),
            ("shard-run", ["--workers", "-3"], "--workers"),
        ],
    )
    def test_bad_flag_is_error(
        self, manifest_path, tmp_path, capsys, command, flags, message
    ):
        directory = tmp_path / "campaign"
        code = main(
            [
                command,
                "--manifest",
                str(manifest_path),
                "--dir",
                str(directory),
                *flags,
            ]
        )
        err = capsys.readouterr().err
        assert code == EXIT_ERROR
        assert message in err
        # validation fired before the campaign directory was created
        assert not directory.exists()
