"""The ``repro-campaign`` command line: lifecycle and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.campaign.cli import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_VERIFY_FAILED,
    main,
)
from repro.campaign.manifest import CampaignManifest


@pytest.fixture()
def manifest_path(tmp_path):
    manifest = CampaignManifest(
        name="cli-test",
        scenario={"kind": "left_turn"},
        comm={"sensor_noise": 0.3},
        planner={"kind": "constant", "acceleration": 2.0},
        n_sims=2,
        seed=5,
        chunk_size=1,
        config={"max_time": 8.0},
    )
    return manifest.save(tmp_path / "manifest.json")


class TestLifecycle:
    def test_run_status_verify_resume(self, manifest_path, tmp_path, capsys):
        directory = tmp_path / "campaign"

        code = main(
            ["run", "--manifest", str(manifest_path), "--dir", str(directory)]
        )
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "completed" in out
        assert "results digest:" in out

        code = main(["status", "--dir", str(directory), "--json"])
        status = json.loads(capsys.readouterr().out)
        assert code == EXIT_OK
        assert status["finished"] is True
        assert status["completed_chunks"] == 2
        # Operational fields from the journal: retries and wall time.
        assert status["total_retries"] == 0
        assert status["chunk_retries"] == {}
        assert status["elapsed"]["chunks_timed"] == 2
        assert status["elapsed"]["total_seconds"] >= 0.0

        code = main(["verify", "--dir", str(directory)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "verify ok" in out

        # resuming a finished campaign succeeds without re-running
        code = main(["resume", "--dir", str(directory)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "0 run now" in out


class TestErrorPaths:
    def test_missing_manifest_is_campaign_error(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--manifest",
                str(tmp_path / "absent.json"),
                "--dir",
                str(tmp_path / "campaign"),
            ]
        )
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_resume_without_journal_is_error(self, manifest_path, tmp_path, capsys):
        directory = tmp_path / "campaign"
        directory.mkdir()
        CampaignManifest.load(manifest_path).save(directory / "manifest.json")
        code = main(["resume", "--dir", str(directory)])
        assert code == EXIT_ERROR
        assert "no journal" in capsys.readouterr().err

    def test_bad_planner_kind_is_error(self, tmp_path, capsys):
        manifest = CampaignManifest(
            name="bad",
            scenario={"kind": "left_turn"},
            comm={},
            planner={"kind": "teleporting"},
            n_sims=1,
            seed=0,
            chunk_size=1,
        )
        path = manifest.save(tmp_path / "manifest.json")
        code = main(
            ["run", "--manifest", str(path), "--dir", str(tmp_path / "c")]
        )
        assert code == EXIT_ERROR
        assert "unknown planner kind" in capsys.readouterr().err

    def test_verify_failure_exit_code(self, manifest_path, tmp_path, capsys):
        directory = tmp_path / "campaign"
        assert (
            main(
                [
                    "run",
                    "--manifest",
                    str(manifest_path),
                    "--dir",
                    str(directory),
                ]
            )
            == EXIT_OK
        )
        capsys.readouterr()
        chunk = directory / "chunks" / "chunk-00000.json"
        snapshot = json.loads(chunk.read_text())
        for record in snapshot["results"].values():
            record["steps"] = record.get("steps", 0) + 1
        chunk.write_text(json.dumps(snapshot))
        code = main(["verify", "--dir", str(directory), "--json"])
        outcome = json.loads(capsys.readouterr().out)
        assert code == EXIT_VERIFY_FAILED
        assert outcome["ok"] is False
        assert outcome["problems"]
