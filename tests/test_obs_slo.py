"""SLO specs: validation, document adapters, evaluation, and the CLI.

The spec in ``slo/serve_bench.json`` is the CI gate over the recorded
serve benchmark; these tests pin both halves of its contract — a
healthy recording passes, the deliberately degraded fixture in
``tests/data/BENCH_serve_degraded.json`` fails — plus every rule-type
semantic the spec language defines.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import SloError
from repro.obs.metrics import MetricsRegistry
from repro.obs.obs_cli import main as obs_main
from repro.obs.recorder import TELEMETRY_FORMAT
from repro.obs.slo import (
    SloRule,
    evaluate_slo,
    load_slo_spec,
    measurements_from_document,
    render_report,
    spec_from_dict,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SERVE_SPEC = REPO_ROOT / "slo" / "serve_bench.json"
LIVE_SPEC = REPO_ROOT / "slo" / "serve_live.json"
DEGRADED_FIXTURE = REPO_ROOT / "tests" / "data" / "BENCH_serve_degraded.json"


def _healthy_bench_document() -> dict:
    """A BENCH_serve.json shaped document that satisfies the CI gate."""

    def entry(test, duration, extra):
        return {
            "nodeid": f"benchmarks/test_bench_serve.py::{test}",
            "outcome": "passed",
            "duration_seconds": duration,
            "extra": extra,
        }

    return {
        "schema_version": "1.0",
        "area": "serve",
        "context": {},
        "benchmarks": [
            entry(
                "test_bench_serve_throughput",
                24.5,
                {
                    "p50_ms": 1.2,
                    "p99_ms": 4.8,
                    "shed_rate": 0.0,
                    "verify_replaced": 0,
                    "shed": 0,
                    "offered": 400,
                },
            ),
            entry(
                "test_bench_serve_degraded_ladder",
                3.4,
                {
                    "p50_ms": 10.0,
                    "p99_ms": 11.2,
                    "shed_rate": 0.0,
                    "verify_replaced": 0,
                    "shed": 0,
                    "offered": 20,
                },
            ),
        ],
    }


class TestSpecValidation:
    def test_unknown_rule_type_rejected(self):
        with pytest.raises(SloError, match="unknown SLO rule type"):
            SloRule(rule_type="median_max", description="", metric="x")

    def test_unknown_rule_fields_rejected(self):
        with pytest.raises(SloError, match="unknown SLO rule fields"):
            spec_from_dict(
                {
                    "name": "s",
                    "rules": [
                        {"type": "counter_max", "metric": "x", "max": 1,
                         "treshold": 2}
                    ],
                }
            )

    def test_min_rules_need_min_and_max_rules_need_max(self):
        with pytest.raises(SloError, match="'min' bound"):
            spec_from_dict(
                {"name": "s",
                 "rules": [{"type": "counter_min", "metric": "x", "max": 1}]}
            )
        with pytest.raises(SloError, match="'max' bound"):
            spec_from_dict(
                {"name": "s",
                 "rules": [{"type": "gauge_max", "metric": "x", "min": 1}]}
            )

    def test_ratio_needs_both_sides(self):
        with pytest.raises(SloError, match="numerator"):
            spec_from_dict(
                {"name": "s",
                 "rules": [{"type": "ratio_max", "numerator": "a", "max": 1}]}
            )

    def test_empty_rules_rejected(self):
        with pytest.raises(SloError, match="non-empty"):
            spec_from_dict({"name": "s", "rules": []})

    def test_metric_labels_normalised(self):
        spec = spec_from_dict(
            {
                "name": "s",
                "rules": [
                    {"type": "gauge_max", "max": 1,
                     "metric": "m{b=2,a=1}"}
                ],
            }
        )
        assert spec.rules[0].metric == "m{a=1,b=2}"

    def test_checked_in_specs_load(self):
        assert load_slo_spec(SERVE_SPEC).name == "serve-bench"
        assert load_slo_spec(LIVE_SPEC).name == "serve-live"


class TestDocumentAdapters:
    def test_snapshot_passthrough(self):
        registry = MetricsRegistry()
        registry.count("serve.offered", 3)
        measurements = measurements_from_document(registry.snapshot())
        assert measurements["counters"]["serve.offered"] == 3

    def test_bench_document_adapter(self):
        measurements = measurements_from_document(_healthy_bench_document())
        assert measurements["counters"]["bench.recorded"] == 2
        assert measurements["counters"]["bench.failed"] == 0
        gauges = measurements["gauges"]
        assert (
            gauges["bench.p99_ms{test=test_bench_serve_throughput}"] == 4.8
        )
        assert (
            gauges[
                "bench.duration_seconds{test=test_bench_serve_throughput}"
            ]
            == 24.5
        )

    def test_stats_payload_adapter(self):
        stats = {
            "event": "stats",
            "enabled": True,
            "offered": 5,
            "served": 4,
            "degraded": 1,
            "shed": 0,
            "verify_replaced": 0,
            "ladder": {"1": 4, "2": 1, "3": 0},
            "shed_rate": 0.0,
            "p50_ms": 1.5,
            "p99_ms": 3.0,
        }
        measurements = measurements_from_document(stats)
        assert measurements["counters"]["serve.offered"] == 5
        assert measurements["counters"]["serve.decisions{ladder=2}"] == 1
        assert measurements["gauges"]["serve.p99_ms"] == 3.0

    def test_unrecognised_document_raises(self):
        with pytest.raises(SloError, match="unrecognised"):
            measurements_from_document({"hello": "world"})


class TestEvaluation:
    def _spec(self, *rules):
        return spec_from_dict({"name": "t", "rules": list(rules)})

    def test_absent_counter_reads_zero(self):
        spec = self._spec(
            {"type": "counter_max", "metric": "errors", "max": 0}
        )
        report = evaluate_slo(spec, {"counters": {}, "gauges": {}})
        assert report.passed

    def test_absent_gauge_fails_unless_allowed(self):
        strict = self._spec({"type": "gauge_max", "metric": "g", "max": 1})
        lenient = self._spec(
            {"type": "gauge_max", "metric": "g", "max": 1, "absent_ok": True}
        )
        document = {"counters": {}, "gauges": {}}
        assert not evaluate_slo(strict, document).passed
        assert evaluate_slo(lenient, document).passed

    def test_quantile_rule_over_histogram(self):
        registry = MetricsRegistry()
        registry.register_histogram("lat", (0.01, 0.1, 1.0))
        for value in (0.005, 0.006, 0.007, 0.5):
            registry.observe("lat", value)
        tight = self._spec(
            {"type": "quantile_max", "metric": "lat", "q": 0.5, "max": 0.01}
        )
        loose = self._spec(
            {"type": "quantile_max", "metric": "lat", "q": 0.99, "max": 0.001}
        )
        assert evaluate_slo(tight, registry.snapshot()).passed
        assert not evaluate_slo(loose, registry.snapshot()).passed

    def test_ratio_with_zero_denominator(self):
        spec = self._spec(
            {"type": "ratio_max", "numerator": "shed",
             "denominator": "offered", "max": 0.1}
        )
        assert evaluate_slo(spec, {"counters": {}}).passed
        assert not evaluate_slo(spec, {"counters": {"shed": 1}}).passed

    def test_counter_min(self):
        spec = self._spec(
            {"type": "counter_min", "metric": "runs", "min": 3}
        )
        assert evaluate_slo(spec, {"counters": {"runs": 3}}).passed
        assert not evaluate_slo(spec, {"counters": {"runs": 2}}).passed

    def test_report_serialises(self):
        spec = self._spec(
            {"type": "counter_max", "metric": "e", "max": 0,
             "description": "no errors"}
        )
        report = evaluate_slo(spec, {"counters": {"e": 2}})
        payload = report.to_dict()
        assert payload["passed"] is False
        assert payload["checks"][0]["ok"] is False
        assert payload["checks"][0]["value"] == 2.0
        text = render_report(report)
        assert "[FAIL] no errors" in text
        assert "result: FAIL (0/1 checks)" in text


class TestServeBenchGate:
    def test_healthy_recording_passes(self):
        spec = load_slo_spec(SERVE_SPEC)
        report = evaluate_slo(spec, _healthy_bench_document())
        assert report.passed, render_report(report)

    def test_degraded_fixture_fails(self):
        spec = load_slo_spec(SERVE_SPEC)
        document = json.loads(DEGRADED_FIXTURE.read_text(encoding="utf-8"))
        report = evaluate_slo(spec, document)
        assert not report.passed
        failed = {
            check.rule.metric for check in report.checks if not check.ok
        }
        # The fixture degrades several dimensions at once; the gate
        # must catch the safety-critical one at minimum.
        assert (
            "bench.verify_replaced{test=test_bench_serve_throughput}"
            in failed
        )
        assert "bench.failed" in failed


class TestObsCli:
    def _write_healthy(self, tmp_path) -> Path:
        path = tmp_path / "BENCH_serve.json"
        path.write_text(
            json.dumps(_healthy_bench_document()), encoding="utf-8"
        )
        return path

    def test_slo_check_passes_healthy(self, tmp_path, capsys):
        code = obs_main(
            ["slo", "check", str(self._write_healthy(tmp_path)),
             "--spec", str(SERVE_SPEC)]
        )
        assert code == 0
        assert "result: PASS" in capsys.readouterr().out

    def test_slo_check_fails_degraded(self, capsys):
        code = obs_main(
            ["slo", "check", str(DEGRADED_FIXTURE),
             "--spec", str(SERVE_SPEC)]
        )
        assert code == 1
        assert "result: FAIL" in capsys.readouterr().out

    def test_slo_check_json_report(self, tmp_path, capsys):
        code = obs_main(
            ["slo", "check", str(self._write_healthy(tmp_path)),
             "--spec", str(SERVE_SPEC), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"] == "serve-bench"
        assert payload["passed"] is True

    def test_slo_check_bad_spec_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "rules": []}', encoding="utf-8")
        code = obs_main(
            ["slo", "check", str(DEGRADED_FIXTURE), "--spec", str(bad)]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_expo_renders_document(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.count("serve.offered", 7)
        snapshot_path = tmp_path / "snapshot.json"
        snapshot_path.write_text(
            json.dumps(registry.snapshot()), encoding="utf-8"
        )
        assert obs_main(["expo", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_offered counter" in out
        assert "repro_serve_offered 7" in out

    def test_top_renders_sidecar(self, tmp_path, capsys):
        frames = []
        for i in range(3):
            frames.append(
                {
                    "format": TELEMETRY_FORMAT,
                    "t": float(i),
                    "wall": 1000.0 + i,
                    "counters": {
                        "fleet.engine.runs": 10.0 * i,
                        "fleet.engine.runs{worker=w0}": 10.0 * i,
                        "fleet.worker.chunks_completed{worker=w0}": float(i),
                        "fleet.worker.chunks_completed": float(i),
                    },
                    "gauges": {"fleet.worker_up{worker=w0}": 1.0},
                    "histograms": {},
                }
            )
        sidecar = tmp_path / "telemetry.jsonl"
        sidecar.write_text(
            "".join(json.dumps(frame) + "\n" for frame in frames),
            encoding="utf-8",
        )
        assert obs_main(["top", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro fleet telemetry" in out
        assert "sims/s" in out
        assert "w0" in out and "up" in out

    def test_top_empty_sidecar_still_renders(self, tmp_path, capsys):
        assert obs_main(["top", "--dir", str(tmp_path)]) == 0
        assert "no telemetry frames yet" in capsys.readouterr().out

    def test_expo_missing_document_is_exit_2(self, tmp_path, capsys):
        code = obs_main(["expo", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err
