"""Tests for JSON archiving of simulation results."""

import pytest

from repro.comm.channel import ChannelStats
from repro.dynamics.state import VehicleState
from repro.dynamics.trajectory import Trajectory
from repro.errors import SerializationError
from repro.sim.results import AggregateStats, Outcome, SimulationResult
from repro.sim.serialization import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)


def _result(with_trajectory=False):
    trajectories = []
    if with_trajectory:
        trajectory = Trajectory()
        for i in range(4):
            trajectory.append(
                i * 0.05,
                VehicleState(
                    position=float(i), velocity=2.0, acceleration=0.5
                ),
            )
        trajectories = [trajectory]
    return SimulationResult(
        outcome=Outcome.REACHED,
        reaching_time=6.4,
        steps=128,
        emergency_steps=9,
        trajectories=trajectories,
        channel_stats={
            1: ChannelStats(sent=64, dropped=20, delivered=40, total_delay=10.0)
        },
    )


class TestRoundTrip:
    def test_dict_roundtrip(self):
        original = _result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.outcome == original.outcome
        assert restored.reaching_time == original.reaching_time
        assert restored.steps == original.steps
        assert restored.eta == original.eta
        assert restored.channel_stats[1].drop_rate == pytest.approx(
            20 / 64
        )

    def test_file_roundtrip(self, tmp_path):
        batch = [_result(), _result()]
        path = save_results(batch, tmp_path / "run", metadata={"seed": 7})
        assert path.suffix == ".json"
        restored, metadata = load_results(path)
        assert len(restored) == 2
        assert metadata == {"seed": 7}
        assert AggregateStats.from_results(
            restored
        ).mean_eta == AggregateStats.from_results(batch).mean_eta

    def test_trajectories_optional(self, tmp_path):
        path = save_results(
            [_result(with_trajectory=True)],
            tmp_path / "with_traj",
            include_trajectories=True,
        )
        restored, _ = load_results(path)
        assert len(restored[0].trajectories) == 1
        assert restored[0].trajectories[0][2].position == 2.0

    def test_trajectories_dropped_by_default(self, tmp_path):
        path = save_results(
            [_result(with_trajectory=True)], tmp_path / "no_traj"
        )
        restored, _ = load_results(path)
        assert restored[0].trajectories == []

    def test_collision_record(self):
        crashed = SimulationResult(
            outcome=Outcome.COLLISION, collision_time=3.2, steps=64
        )
        restored = result_from_dict(result_to_dict(crashed))
        assert restored.eta == -1.0
        assert restored.collision_time == 3.2


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_results(tmp_path / "nope.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_results(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"format_version": 99, "results": []}')
        with pytest.raises(SerializationError):
            load_results(path)

    def test_invalid_outcome(self):
        with pytest.raises(SerializationError):
            result_from_dict({"outcome": "vaporised"})


class TestEndToEnd:
    def test_engine_batch_survives_archive(self, scenario, tmp_path):
        from repro.planners.constant import ConstantPlanner
        from repro.sim.engine import CommSetup, SimulationEngine
        from repro.sim.runner import BatchRunner, EstimatorKind

        engine = SimulationEngine(scenario, CommSetup.perfect())
        batch = BatchRunner(engine, EstimatorKind.RAW).run_batch(
            ConstantPlanner(2.0), 3, seed=0
        )
        path = save_results(batch, tmp_path / "campaign")
        restored, _ = load_results(path)
        for a, b in zip(batch, restored):
            assert a.outcome == b.outcome
            assert a.reaching_time == b.reaching_time
