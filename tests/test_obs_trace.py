"""Unit tests for the observability core: tracer, metrics, exporters."""

import json

import pytest

from repro.errors import SerializationError
from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, metric_key
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer, resolve_observer
from repro.obs.trace import Tracer


class FakeClock:
    """Deterministic clock so span durations are asserted exactly."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestTracer:
    def test_span_records_relative_ts_and_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.now = 101.0
        handle = tracer.begin("engine.step", step=3)
        clock.now = 101.5
        tracer.end(handle, outcome="ok")
        (event,) = tracer.events
        assert event["kind"] == "span"
        assert event["name"] == "engine.step"
        assert event["ts"] == pytest.approx(1.0)
        assert event["dur"] == pytest.approx(0.5)
        assert event["attrs"] == {"step": 3, "outcome": "ok"}

    def test_end_unknown_handle_is_silent(self):
        tracer = Tracer(clock=FakeClock())
        tracer.end(999)
        tracer.end(-1)
        assert tracer.events == []

    def test_spans_may_close_out_of_order(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(outer)
        tracer.end(inner)
        assert [e["name"] for e in tracer.events] == ["outer", "inner"]
        assert tracer.n_open == 0

    def test_span_context_manager(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("chunk", index=2):
            pass
        (event,) = tracer.events
        assert event["name"] == "chunk"
        assert event["attrs"] == {"index": 2}

    def test_instant_and_sample(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.now = 100.25
        tracer.instant("shield.engage", cause="boundary")
        tracer.sample("shield.margin", 3.5, t=1.0)
        instant, sample = tracer.events
        assert instant["kind"] == "instant"
        assert instant["ts"] == pytest.approx(0.25)
        assert sample["kind"] == "sample"
        assert sample["value"] == 3.5
        assert tracer.events_named("shield.margin") == [sample]


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.count("runs")
        registry.count("runs", 2)
        assert registry.counter_value("runs") == 3

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.count("sent", channel="veh1")
        registry.count("sent", channel="veh2")
        assert registry.counter_value("sent", channel="veh1") == 1
        series = registry.counter_series("sent")
        assert set(series) == {"sent{channel=veh1}", "sent{channel=veh2}"}

    def test_metric_key_is_order_stable(self):
        assert metric_key("m", {"b": 1, "a": 2}) == metric_key("m", {"a": 2, "b": 1})

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("margin", 3.0)
        registry.gauge("margin", -1.0)
        assert registry.gauge_value("margin") == -1.0

    def test_histogram_snapshot(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.01, 0.1):
            registry.observe("delay", value)
        snapshot = registry.snapshot()
        hist = snapshot["histograms"]["delay"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.111)
        assert sum(hist["counts"]) == 3
        assert len(hist["counts"]) == len(DEFAULT_BUCKETS) + 1
        assert hist["min"] == pytest.approx(0.001)
        assert hist["max"] == pytest.approx(0.1)


class TestObserverFacade:
    def test_resolve_defaults_to_shared_null(self):
        assert resolve_observer(None) is NULL_OBSERVER
        observer = Observer()
        assert resolve_observer(observer) is observer

    def test_null_observer_is_inert(self):
        null = NullObserver()
        assert null.enabled is False
        assert null.begin("x") == -1
        null.end(-1)
        null.instant("x")
        null.sample("x", 1.0)
        null.count("x")
        null.gauge("x", 1.0)
        null.observe("x", 1.0)
        with null.span("x") as handle:
            assert handle == -1

    def test_observer_routes_to_tracer_and_metrics(self):
        observer = Observer(tracer=Tracer(clock=FakeClock()))
        with observer.span("s"):
            observer.instant("i")
        observer.count("c", 2)
        observer.gauge("g", 1.5)
        observer.observe("h", 0.01)
        assert [e["name"] for e in observer.tracer.events] == ["i", "s"]
        assert observer.metrics.counter_value("c") == 2


class TestExport:
    def _observer(self):
        clock = FakeClock()
        observer = Observer(tracer=Tracer(clock=clock))
        handle = observer.begin("engine.step", step=0)
        clock.now = 100.001
        observer.end(handle)
        observer.instant("shield.engage", cause="unsafe", t=0.5)
        observer.sample("shield.margin", 2.5, t=0.5)
        observer.sample("shield.margin", float("nan"), t=0.6)
        observer.count("engine.runs")
        return observer

    def test_jsonl_roundtrip(self, tmp_path):
        observer = self._observer()
        path = write_jsonl(
            tmp_path / "trace.jsonl", observer.tracer, observer.metrics
        )
        header, events, snapshot = read_jsonl(path)
        assert header["stream"] == "reprotrace"
        assert len(events) == len(observer.tracer.events)
        assert snapshot["counters"]["engine.runs"] == 1

    def test_read_rejects_foreign_stream(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "stream": "other"}\n')
        with pytest.raises(SerializationError):
            read_jsonl(path)

    def test_read_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "instant", "name": "x", "ts": 0}\n')
        with pytest.raises(SerializationError):
            read_jsonl(path)

    def test_chrome_trace_shapes(self):
        observer = self._observer()
        document = to_chrome_trace(observer.tracer.events)
        phases = [e["ph"] for e in document["traceEvents"]]
        assert phases[0] == "M"
        assert "X" in phases and "i" in phases and "C" in phases
        # The NaN sample must be skipped, not emitted.
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        span = next(e for e in document["traceEvents"] if e["ph"] == "X")
        assert span["dur"] == pytest.approx(1000.0)  # 1 ms in microseconds

    def test_written_chrome_trace_validates(self, tmp_path):
        observer = self._observer()
        path = write_chrome_trace(tmp_path / "t.json", observer.tracer.events)
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []

    def test_validator_reports_problems(self):
        assert validate_chrome_trace([]) == ["trace document is not a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents is missing or not an array"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "s", "ts": 0.0, "dur": -1.0, "pid": 0, "tid": 0}]}
        )
        assert any("negative" in p for p in problems)
        problems = validate_chrome_trace({"traceEvents": [{"ph": "??"}]})
        assert any("unknown phase" in p for p in problems)
