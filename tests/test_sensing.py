"""Tests for noise bounds and the periodic sensor."""

import numpy as np
import pytest

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.sensing.noise import NoiseBounds, UniformNoise
from repro.sensing.sensor import Sensor
from repro.utils.rng import RngStream

TRUE = VehicleState(position=40.0, velocity=-11.0, acceleration=1.0)


class TestNoiseBounds:
    def test_uniform_all(self):
        b = NoiseBounds.uniform_all(1.4)
        assert b.delta_p == b.delta_v == b.delta_a == 1.4

    def test_noiseless(self):
        b = NoiseBounds.noiseless()
        assert b.delta_p == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseBounds(delta_p=-1.0, delta_v=0.0, delta_a=0.0)

    def test_variances_are_uniform_variances(self):
        # Var of U(-d, d) is d^2 / 3 — the paper's R and Q entries.
        b = NoiseBounds(delta_p=3.0, delta_v=1.5, delta_a=0.9)
        assert b.position_variance == pytest.approx(3.0)
        assert b.velocity_variance == pytest.approx(0.75)
        assert b.acceleration_variance == pytest.approx(0.27)

    def test_bands_contain_truth(self):
        b = NoiseBounds.uniform_all(2.0)
        assert b.position_band(10.0).contains(11.9)
        assert not b.position_band(10.0).contains(12.1)


class TestUniformNoise:
    def test_within_bounds(self):
        noise = UniformNoise(NoiseBounds.uniform_all(0.5), RngStream(1))
        for _ in range(200):
            assert abs(noise.perturb_position(10.0) - 10.0) <= 0.5
            assert abs(noise.perturb_velocity(-3.0) + 3.0) <= 0.5
            assert abs(noise.perturb_acceleration(0.0)) <= 0.5

    def test_noiseless_passthrough(self):
        noise = UniformNoise(NoiseBounds.noiseless(), RngStream(2))
        assert noise.perturb_position(7.0) == 7.0

    def test_roughly_uniform(self):
        noise = UniformNoise(NoiseBounds.uniform_all(1.0), RngStream(3))
        samples = np.array(
            [noise.perturb_position(0.0) for _ in range(4000)]
        )
        assert abs(samples.mean()) < 0.05
        assert abs(samples.std() - np.sqrt(1.0 / 3.0)) < 0.03


class TestSensor:
    def _sensor(self, delta=1.0, seed=5):
        return Sensor(
            target=1,
            period=0.1,
            bounds=NoiseBounds.uniform_all(delta),
            rng=RngStream(seed),
        )

    def test_reading_fields(self):
        reading = self._sensor().measure(0.2, TRUE)
        assert reading.target == 1
        assert reading.time == 0.2

    def test_reading_within_bounds(self):
        sensor = self._sensor(delta=0.5)
        for i in range(100):
            r = sensor.measure(i * 0.1, TRUE)
            assert abs(r.position - TRUE.position) <= 0.5
            assert abs(r.velocity - TRUE.velocity) <= 0.5
            assert abs(r.acceleration - TRUE.acceleration) <= 0.5

    def test_history_and_latest(self):
        sensor = self._sensor()
        assert sensor.latest() is None
        sensor.measure(0.0, TRUE)
        sensor.measure(0.1, TRUE)
        assert len(sensor.history) == 2
        assert sensor.latest().time == 0.1

    def test_schedule(self):
        sensor = self._sensor()
        assert sensor.is_sample_time(0.0)
        assert sensor.is_sample_time(0.4)
        assert not sensor.is_sample_time(0.15)

    def test_as_state(self):
        reading = self._sensor().measure(0.0, TRUE)
        state = reading.as_state()
        assert state.position == reading.position
        assert state.velocity == reading.velocity

    def test_reproducible(self):
        a = self._sensor(seed=8).measure(0.0, TRUE)
        b = self._sensor(seed=8).measure(0.0, TRUE)
        assert a.position == b.position
        assert a.velocity == b.velocity

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigurationError):
            Sensor(
                target=1,
                period=0.0,
                bounds=NoiseBounds.noiseless(),
                rng=RngStream(0),
            )
