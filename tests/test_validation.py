"""Tests for argument-validation helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_finite,
    check_multiple,
    check_nonnegative,
    check_optional_positive,
    check_positive,
    check_probability,
    check_range,
)


class TestCheckFinite:
    def test_passes_value_through(self):
        assert check_finite(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_finite(bad, "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.05, "dt") == 0.05

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ConfigurationError, match="dt"):
            check_positive(bad, "dt")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "m") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_nonnegative(-0.1, "m")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects_outside(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability(bad, "p")


class TestCheckRange:
    def test_ordered(self):
        assert check_range(1.0, 2.0, "lo", "hi") == (1.0, 2.0)

    def test_equal_allowed(self):
        assert check_range(2.0, 2.0, "lo", "hi") == (2.0, 2.0)

    def test_infinite_endpoints_allowed(self):
        lo, hi = check_range(-math.inf, math.inf, "lo", "hi")
        assert lo == -math.inf and hi == math.inf

    def test_reversed_rejected(self):
        with pytest.raises(ConfigurationError, match="lo"):
            check_range(2.0, 1.0, "lo", "hi")

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            check_range(math.nan, 1.0, "lo", "hi")


class TestCheckMultiple:
    def test_exact_multiple(self):
        assert check_multiple(0.1, 0.05, "dt_m", "dt_c") == 0.1

    def test_float_accumulation_tolerated(self):
        # 0.3 is not exactly 6 * 0.05 in binary; must still pass.
        assert check_multiple(0.3, 0.05, "dt_m", "dt_c") == 0.3

    def test_non_multiple_rejected(self):
        with pytest.raises(ConfigurationError, match="dt_m"):
            check_multiple(0.07, 0.05, "dt_m", "dt_c")

    def test_base_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            check_multiple(0.1, 0.0, "dt_m", "dt_c")


class TestOptionalPositive:
    def test_none_passes(self):
        assert check_optional_positive(None, "x") is None

    def test_value_checked(self):
        with pytest.raises(ConfigurationError):
            check_optional_positive(-1.0, "x")
