"""Tests for interval reachability — including soundness vs the dynamics.

The safety theorem rests on Eq. (2) being a true over-approximation of
the saturating vehicle model; the hypothesis tests here drive the model
with arbitrary admissible acceleration sequences and assert containment.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.errors import ConfigurationError
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.utils.intervals import Interval

#: Oncoming-style limits (negative velocities) and ego-style limits.
ONCOMING = VehicleLimits(v_min=-20.0, v_max=-2.0, a_min=-3.0, a_max=3.0)
EGO = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)


class TestScalarBounds:
    def test_zero_elapsed_is_identity(self):
        r = ReachabilityAnalyzer(EGO)
        assert r.max_position(5.0, 10.0, 0.0) == 5.0
        assert r.min_position(5.0, 10.0, 0.0) == 5.0

    def test_max_position_no_saturation(self):
        r = ReachabilityAnalyzer(EGO)
        # 10 m/s + 4 m/s^2 for 1 s stays below 20 m/s.
        assert r.max_position(0.0, 10.0, 1.0) == pytest.approx(12.0)

    def test_max_position_with_saturation(self):
        r = ReachabilityAnalyzer(EGO)
        # From 18 m/s: reach 20 after 0.5 s (9.5 m), cruise 1.5 s (30 m).
        assert r.max_position(0.0, 18.0, 2.0) == pytest.approx(39.5)

    def test_min_position_braking_to_standstill(self):
        r = ReachabilityAnalyzer(EGO)
        # From 6 m/s braking at 6: stops after 1 s covering 3 m.
        assert r.min_position(0.0, 6.0, 5.0) == pytest.approx(3.0)

    def test_velocity_bounds(self):
        r = ReachabilityAnalyzer(EGO)
        assert r.max_velocity(10.0, 1.0) == pytest.approx(14.0)
        assert r.max_velocity(19.0, 1.0) == 20.0
        assert r.min_velocity(10.0, 1.0) == pytest.approx(4.0)
        assert r.min_velocity(3.0, 1.0) == 0.0

    def test_negative_elapsed_rejected(self):
        r = ReachabilityAnalyzer(EGO)
        with pytest.raises(ConfigurationError):
            r.max_position(0.0, 0.0, -1.0)


class TestBands:
    def test_band_from_state(self):
        r = ReachabilityAnalyzer(EGO)
        band = r.band_from_state(
            VehicleState(position=0.0, velocity=10.0), stamp=1.0, now=2.0
        )
        assert band.time == 2.0
        assert band.position.lo < band.position.hi
        assert band.velocity.contains(10.0)

    def test_band_from_state_zero_age_is_point(self):
        r = ReachabilityAnalyzer(EGO)
        band = r.band_from_state(
            VehicleState(position=3.0, velocity=5.0), stamp=1.0, now=1.0
        )
        assert band.position.is_point
        assert band.position.lo == 3.0

    def test_band_from_intervals_contains_point_bands(self):
        r = ReachabilityAnalyzer(EGO)
        p_band = Interval(0.0, 2.0)
        v_band = Interval(8.0, 12.0)
        band = r.band_from_intervals(p_band, v_band, stamp=0.0, now=1.0)
        for p0 in (0.0, 1.0, 2.0):
            for v0 in (8.0, 10.0, 12.0):
                inner = r.band_from_state(
                    VehicleState(position=p0, velocity=v0), 0.0, 1.0
                )
                assert band.position.contains_interval(inner.position)
                assert band.velocity.contains_interval(inner.velocity)

    def test_empty_initial_band_rejected(self):
        r = ReachabilityAnalyzer(EGO)
        with pytest.raises(ConfigurationError):
            r.band_from_intervals(Interval.EMPTY, Interval(0, 1), 0.0, 1.0)

    def test_query_before_stamp_rejected(self):
        r = ReachabilityAnalyzer(EGO)
        with pytest.raises(ConfigurationError):
            r.band_from_state(
                VehicleState(position=0.0, velocity=0.0), stamp=2.0, now=1.0
            )


def _rollout(limits, p0, v0, accels, dt):
    model = VehicleModel(limits)
    state = VehicleState(position=p0, velocity=v0)
    for a in accels:
        state = model.step(state, a, dt)
    return state


class TestSoundness:
    """Eq. (2) over-approximates every admissible behaviour."""

    @given(
        v0=st.floats(0.0, 20.0),
        accels=st.lists(st.floats(-6.0, 4.0), min_size=1, max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_ego_style_rollouts_contained(self, v0, accels):
        dt = 0.05
        r = ReachabilityAnalyzer(EGO)
        final = _rollout(EGO, 0.0, v0, accels, dt)
        elapsed = len(accels) * dt
        band = r.band_from_state(
            VehicleState(position=0.0, velocity=v0), 0.0, elapsed
        )
        assert band.position.expand(1e-9).contains(final.position)
        assert band.velocity.expand(1e-9).contains(final.velocity)

    @given(
        v0=st.floats(-20.0, -2.0),
        accels=st.lists(st.floats(-3.0, 3.0), min_size=1, max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_oncoming_style_rollouts_contained(self, v0, accels):
        """Negative-velocity (raw oncoming) coordinates work unchanged."""
        dt = 0.05
        r = ReachabilityAnalyzer(ONCOMING)
        final = _rollout(ONCOMING, 50.0, v0, accels, dt)
        elapsed = len(accels) * dt
        band = r.band_from_state(
            VehicleState(position=50.0, velocity=v0), 0.0, elapsed
        )
        assert band.position.expand(1e-9).contains(final.position)
        assert band.velocity.expand(1e-9).contains(final.velocity)

    @given(
        v0=st.floats(0.0, 20.0),
        p_err=st.floats(-1.0, 1.0),
        v_err=st.floats(-0.5, 0.5),
        accels=st.lists(st.floats(-6.0, 4.0), min_size=1, max_size=25),
    )
    @settings(max_examples=100, deadline=None)
    def test_interval_initial_knowledge_contained(
        self, v0, p_err, v_err, accels
    ):
        """Sensor-band propagation: truth inside band stays inside."""
        dt = 0.05
        r = ReachabilityAnalyzer(EGO)
        p_band = Interval.around(0.0 + p_err, 1.0)  # truth 0+p_err in band
        v_true = min(max(v0 + v_err, 0.0), 20.0)
        v_band = Interval.around(v0, 0.5 + 1e-9).intersect(Interval(0.0, 20.0))
        if not v_band.contains(v_true):
            return  # corner clipped away; not a valid premise
        final = _rollout(EGO, 0.0 + p_err, v_true, accels, dt)
        band = r.band_from_intervals(p_band, v_band, 0.0, len(accels) * dt)
        assert band.position.expand(1e-9).contains(final.position)
        assert band.velocity.expand(1e-9).contains(final.velocity)

    @given(
        v0=st.floats(0.0, 20.0),
        t1=st.floats(0.0, 3.0),
        t2=st.floats(0.0, 3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_band_width_monotone_in_elapsed(self, v0, t1, t2):
        r = ReachabilityAnalyzer(EGO)
        s = VehicleState(position=0.0, velocity=v0)
        early, late = sorted((t1, t2))
        b_early = r.band_from_state(s, 0.0, early)
        b_late = r.band_from_state(s, 0.0, late)
        assert b_late.position.width >= b_early.position.width - 1e-9
