"""Tests for the emergency planner, including the Eq. (4) property.

Eq. (4): from any boundary-safe state, the emergency planner keeps the
ego in the safe set.  The property tests drive the closed loop
``monitor-selects -> kappa_e commands -> dynamics step`` from sampled
boundary states against adversarial oncoming behaviour and assert the
ego never enters the (open) unsafe area while the oncoming vehicle is
inside.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.planners.base import PlanningContext
from repro.scenarios.left_turn.emergency import LeftTurnEmergencyPlanner
from repro.scenarios.left_turn.geometry import LeftTurnGeometry
from repro.scenarios.left_turn.unsafe_set import slack

GEOMETRY = LeftTurnGeometry()
EGO = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)
DT = 0.05


def _planner(stop_margin=0.05):
    return LeftTurnEmergencyPlanner(GEOMETRY, EGO, stop_margin=stop_margin)


def _context(position, velocity):
    return PlanningContext(
        time=0.0, ego=VehicleState(position=position, velocity=velocity)
    )


class TestBrakingBranch:
    def test_least_required_braking(self):
        # v=6, gap to (front - margin) = 10 - 0.05: a = -36 / 19.9.
        a = _planner().plan(_context(-5.0, 6.0))
        assert a == pytest.approx(-36.0 / (2.0 * 9.95))

    def test_stopped_before_line_holds(self):
        assert _planner().plan(_context(-5.0, 0.0)) == 0.0

    def test_within_margin_band_full_brake(self):
        assert _planner(stop_margin=0.5).plan(_context(4.8, 1.0)) == EGO.a_min

    def test_clipped_to_actuation_limit(self):
        # Stoppable before the line (braking distance 0.9 < 1.0 m gap)
        # but the 0.5 m margin target demands ~-10.9: clipped to a_min.
        assert _planner(stop_margin=0.5).plan(
            _context(4.0, 3.3)
        ) == EGO.a_min

    def test_committed_state_escapes_forward(self):
        # v=15 cannot stop within 8 m (needs 18.75 m): escape at a_max.
        assert _planner().plan(_context(-3.0, 15.0)) == EGO.a_max
        # Same at 1 m out with v=15.
        assert _planner().plan(_context(4.0, 15.0)) == EGO.a_max


class TestEscapeBranch:
    def test_inside_area_full_throttle(self):
        assert _planner().plan(_context(10.0, 5.0)) == EGO.a_max

    def test_past_area_full_throttle(self):
        assert _planner().plan(_context(16.0, 5.0)) == EGO.a_max

    def test_exactly_at_line_moving_full_brake(self):
        assert _planner().plan(_context(5.0, 1.0)) == EGO.a_min

    def test_exactly_at_line_stopped_holds(self):
        assert _planner().plan(_context(5.0, 0.0)) == 0.0


class TestConstruction:
    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            _planner(stop_margin=-0.1)

    def test_geometry_accessor(self):
        assert _planner().geometry is GEOMETRY
        assert _planner().stop_margin == 0.05


class TestEquationFourProperty:
    """From nonneg-slack states, kappa_e never crosses the front line."""

    @given(
        position=st.floats(-30.0, 4.5),
        velocity=st.floats(0.0, 20.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_braking_keeps_ego_out_of_area(self, position, velocity):
        if slack(position, velocity, GEOMETRY, EGO) < 0.0:
            return  # committed states use the escape branch; not Eq. (4)
        planner = _planner()
        model = VehicleModel(EGO)
        state = VehicleState(position=position, velocity=velocity)
        v_prev = state.velocity
        for _ in range(600):  # 30 simulated seconds
            a = planner.plan(
                PlanningContext(time=0.0, ego=state)
            )
            state = model.step(state, a, DT)
            assert state.position <= GEOMETRY.p_front + 1e-9
            # Least-required braking decays asymptotically near the
            # stop point; the invariants are "never crosses the line"
            # and "never speeds up".
            assert state.velocity <= v_prev + 1e-12
            v_prev = state.velocity
            if state.velocity == 0.0:
                break

    @given(
        position=st.floats(-30.0, 4.5),
        velocity=st.floats(0.0, 20.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_slack_never_goes_negative_under_braking(self, position, velocity):
        if slack(position, velocity, GEOMETRY, EGO) < 0.0:
            return
        planner = _planner()
        model = VehicleModel(EGO)
        state = VehicleState(position=position, velocity=velocity)
        for _ in range(600):
            a = planner.plan(PlanningContext(time=0.0, ego=state))
            state = model.step(state, a, DT)
            assert (
                slack(state.position, state.velocity, GEOMETRY, EGO) >= -1e-9
            )
            if state.velocity == 0.0:
                break

    @given(
        position=st.floats(5.01, 14.9),
        velocity=st.floats(0.0, 20.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_escape_branch_clears_area(self, position, velocity):
        planner = _planner()
        model = VehicleModel(EGO)
        state = VehicleState(position=position, velocity=velocity)
        for _ in range(600):
            a = planner.plan(PlanningContext(time=0.0, ego=state))
            assert a == EGO.a_max  # escape is always full throttle inside
            state = model.step(state, a, DT)
            if state.position > GEOMETRY.p_back:
                return
        pytest.fail("ego failed to clear the area under the escape branch")
