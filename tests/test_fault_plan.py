"""Tests for engine-level fault plans and the embedded FaultyPlanner."""

import math

import pytest

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.errors import FaultInjectionError, PlannerFaultError
from repro.faults import (
    FaultPlan,
    FaultyPlanner,
    PlannerFault,
    PlannerFaultKind,
    SensorFault,
    SensorFaultKind,
    StepWindow,
)
from repro.planners.base import PlanningContext
from repro.planners.constant import ConstantPlanner
from repro.sensing.noise import NoiseBounds
from repro.sensing.sensor import SensorReading
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import BatchRunner, EstimatorKind
from repro.utils.rng import RngStream
from repro.comm.disturbance import no_disturbance


def _comm():
    return CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=no_disturbance(),
        sensor_bounds=NoiseBounds.uniform_all(1.0),
    )


def _run(scenario, fault_plan=None, planner=None, seed=4, max_time=8.0):
    engine = SimulationEngine(
        scenario,
        _comm(),
        SimulationConfig(
            max_time=max_time,
            record_trajectories=False,
            fault_plan=fault_plan,
        ),
    )
    runner = BatchRunner(engine, EstimatorKind.FILTERED)
    return runner.run_one(planner or ConstantPlanner(2.0), seed=seed)


def _fingerprint(result):
    return (
        result.outcome,
        result.reaching_time,
        result.collision_time,
        result.steps,
        result.emergency_steps,
    )


class TestStepWindow:
    def test_half_open_containment(self):
        window = StepWindow(5, 8)
        assert not window.contains(4)
        assert window.contains(5)
        assert window.contains(7)
        assert not window.contains(8)

    def test_empty_window_rejected(self):
        with pytest.raises(FaultInjectionError):
            StepWindow(5, 5)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultInjectionError):
            StepWindow(-1, 3)


class TestFaultPlanCompile:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.describe() == "no faults"

    def test_probability_resolved_from_seed(self):
        fault = SensorFault(
            window=StepWindow(0, 10),
            kind=SensorFaultKind.DROPOUT,
            probability=0.5,
        )
        plan = FaultPlan(sensor_faults=(fault,) * 8)
        active_a = len(plan.compile(RngStream(1)).sensor_faults)
        active_b = len(plan.compile(RngStream(1)).sensor_faults)
        assert active_a == active_b  # same seed, same activation
        counts = {
            len(plan.compile(RngStream(s)).sensor_faults) for s in range(30)
        }
        assert len(counts) > 1  # different seeds differ

    def test_describe_lists_faults(self):
        plan = FaultPlan(
            sensor_faults=(
                SensorFault(StepWindow(0, 5), SensorFaultKind.FREEZE),
            ),
            planner_faults=(
                PlannerFault(StepWindow(3, 4), PlannerFaultKind.NAN),
            ),
        )
        text = plan.describe()
        assert "freeze" in text and "nan" in text


class TestInjectorSensorSemantics:
    def _reading(self, t, p=50.0, v=-12.0, a=0.0):
        return SensorReading(
            target=1, time=t, position=p, velocity=v, acceleration=a
        )

    def _injector(self, *faults):
        return FaultPlan(sensor_faults=tuple(faults)).compile(RngStream(0))

    def test_dropout_suppresses_reading(self):
        injector = self._injector(
            SensorFault(StepWindow(1, 2), SensorFaultKind.DROPOUT)
        )
        assert injector.apply_sensor(0, 1, self._reading(0.0)) is not None
        assert injector.apply_sensor(1, 1, self._reading(0.1)) is None
        assert injector.sensor_faults_injected == 1

    def test_freeze_replays_last_clean_values_restamped(self):
        injector = self._injector(
            SensorFault(StepWindow(1, 3), SensorFaultKind.FREEZE)
        )
        injector.apply_sensor(0, 1, self._reading(0.0, p=50.0))
        frozen = injector.apply_sensor(1, 1, self._reading(0.1, p=48.0))
        # Freezing copies the old reading verbatim; exact equality IS the
        # contract (no arithmetic happens on the values).
        assert frozen.position == 50.0  # safelint: disable=SFL001 - verbatim copy
        assert frozen.time == 0.1  # safelint: disable=SFL001 - verbatim restamp

    def test_freeze_before_any_reading_acts_as_dropout(self):
        injector = self._injector(
            SensorFault(StepWindow(0, 2), SensorFaultKind.FREEZE)
        )
        assert injector.apply_sensor(0, 1, self._reading(0.0)) is None

    def test_stuck_reports_constants(self):
        injector = self._injector(
            SensorFault(
                StepWindow(0, 2),
                SensorFaultKind.STUCK,
                stuck_position=99.0,
                stuck_velocity=-1.0,
            )
        )
        stuck = injector.apply_sensor(0, 1, self._reading(0.0))
        # Stuck-at reports the configured constants verbatim.
        assert stuck.position == 99.0  # safelint: disable=SFL001 - verbatim constant
        assert stuck.velocity == -1.0  # safelint: disable=SFL001 - verbatim constant

    def test_target_scoping(self):
        injector = self._injector(
            SensorFault(StepWindow(0, 5), SensorFaultKind.DROPOUT, target=2)
        )
        assert injector.apply_sensor(0, 1, self._reading(0.0)) is not None
        assert injector.apply_sensor(0, 2, self._reading(0.0)) is None


class TestEngineLevelInjection:
    def test_no_plan_and_empty_plan_are_byte_identical(self, scenario):
        baseline = _run(scenario, fault_plan=None)
        empty = _run(scenario, fault_plan=FaultPlan())
        assert _fingerprint(empty) == _fingerprint(baseline)
        assert empty.sensor_faults_injected == 0
        assert empty.planner_faults_injected == 0

    def test_never_activated_plan_is_byte_identical(self, scenario):
        """A compiled-but-inactive plan must not disturb the run: the
        fault rng is a dedicated child, so children 0-3 are untouched."""
        plan = FaultPlan(
            sensor_faults=(
                SensorFault(
                    StepWindow(0, 5),
                    SensorFaultKind.DROPOUT,
                    probability=0.0,
                ),
            )
        )
        assert _fingerprint(_run(scenario, plan)) == _fingerprint(
            _run(scenario, None)
        )

    def test_sensor_dropout_counted(self, scenario):
        plan = FaultPlan(
            sensor_faults=(
                SensorFault(StepWindow(0, 20), SensorFaultKind.DROPOUT),
            )
        )
        result = _run(scenario, plan)
        assert result.sensor_faults_injected > 0

    def test_planner_nan_fault_brakes(self, scenario):
        """Injected NaN is sanitised to full braking, so the run slows
        down relative to the fault-free constant-throttle run."""
        plan = FaultPlan(
            planner_faults=(
                PlannerFault(StepWindow(0, 40), PlannerFaultKind.NAN),
            )
        )
        faulted = _run(scenario, plan, max_time=12.0)
        clean = _run(scenario, None, max_time=12.0)
        assert faulted.planner_faults_injected > 0
        if (
            faulted.outcome is Outcome.REACHED
            and clean.outcome is Outcome.REACHED
        ):
            assert faulted.reaching_time >= clean.reaching_time

    def test_planner_exception_fault_brakes_like_nan(self, scenario):
        nan_plan = FaultPlan(
            planner_faults=(
                PlannerFault(StepWindow(0, 40), PlannerFaultKind.NAN),
            )
        )
        exc_plan = FaultPlan(
            planner_faults=(
                PlannerFault(StepWindow(0, 40), PlannerFaultKind.EXCEPTION),
            )
        )
        # Both sanitise to the watchdog's full braking.
        assert _fingerprint(_run(scenario, exc_plan)) == _fingerprint(
            _run(scenario, nan_plan)
        )

    def test_planner_latency_repeats_last_command(self, scenario):
        """Latency over a window where a command already exists repeats
        it; with a constant planner that is indistinguishable from the
        clean run."""
        plan = FaultPlan(
            planner_faults=(
                PlannerFault(StepWindow(5, 15), PlannerFaultKind.LATENCY),
            )
        )
        faulted = _run(scenario, plan)
        assert faulted.planner_faults_injected > 0
        assert _fingerprint(faulted) == _fingerprint(_run(scenario, None))


class TestFaultyPlanner:
    def _context(self):
        return PlanningContext(time=0.0, ego=None, estimates={})

    def test_rejects_stochastic_faults(self):
        with pytest.raises(FaultInjectionError):
            FaultyPlanner(
                ConstantPlanner(1.0),
                [
                    PlannerFault(
                        StepWindow(0, 1),
                        PlannerFaultKind.EXCEPTION,
                        probability=0.5,
                    )
                ],
            )

    def test_exception_fault_raises_planner_fault_error(self):
        planner = FaultyPlanner(
            ConstantPlanner(1.0),
            [PlannerFault(StepWindow(1, 2), PlannerFaultKind.EXCEPTION)],
        )
        assert planner.plan(self._context()) == 1.0
        with pytest.raises(PlannerFaultError):
            planner.plan(self._context())
        assert planner.faults_injected == 1

    def test_nan_fault_returns_nan(self):
        planner = FaultyPlanner(
            ConstantPlanner(1.0),
            [PlannerFault(StepWindow(0, 1), PlannerFaultKind.NAN)],
        )
        assert math.isnan(planner.plan(self._context()))

    def test_latency_fault_repeats_command(self):
        planner = FaultyPlanner(
            ConstantPlanner(1.5),
            [PlannerFault(StepWindow(1, 2), PlannerFaultKind.LATENCY)],
        )
        planner.plan(self._context())
        assert planner.plan(self._context()) == 1.5

    def test_latency_before_any_command_raises(self):
        planner = FaultyPlanner(
            ConstantPlanner(1.5),
            [PlannerFault(StepWindow(0, 1), PlannerFaultKind.LATENCY)],
        )
        with pytest.raises(PlannerFaultError):
            planner.plan(self._context())

    def test_reset_restarts_schedule(self):
        planner = FaultyPlanner(
            ConstantPlanner(1.0),
            [PlannerFault(StepWindow(0, 1), PlannerFaultKind.NAN)],
        )
        assert math.isnan(planner.plan(self._context()))
        planner.reset()
        assert math.isnan(planner.plan(self._context()))


class TestCompoundContainment:
    """Embedded-planner faults stay inside the shield (the theorem's
    configuration): the compound planner falls back to the emergency
    command and the episode stays safe."""

    def _compound(self, scenario, embedded):
        return CompoundPlanner(
            nn_planner=embedded,
            emergency_planner=scenario.emergency_planner(),
            monitor=RuntimeMonitor(scenario.safety_model()),
            limits=scenario.ego_limits,
        )

    def test_raising_embedded_planner_is_contained(self, scenario):
        embedded = FaultyPlanner(
            ConstantPlanner(2.0),
            [PlannerFault(StepWindow(10, 30), PlannerFaultKind.EXCEPTION)],
        )
        compound = self._compound(scenario, embedded)
        result = _run(scenario, planner=compound, max_time=12.0)
        assert result.outcome is not Outcome.COLLISION
        assert compound.embedded_failures + embedded.faults_injected > 0

    def test_embedded_failures_counted_and_reset(self, scenario):
        embedded = FaultyPlanner(
            ConstantPlanner(2.0),
            [PlannerFault(StepWindow(0, 5), PlannerFaultKind.EXCEPTION)],
        )
        compound = self._compound(scenario, embedded)
        _run(scenario, planner=compound)
        first = compound.embedded_failures
        # The engine resets the planner at the start of each run, so a
        # second run reports per-run (not cumulative) counts.
        _run(scenario, planner=compound)
        assert compound.embedded_failures == first

    def test_nan_embedded_planner_safe_across_seeds(self, scenario):
        for seed in range(5):
            embedded = FaultyPlanner(
                ConstantPlanner(2.0),
                [PlannerFault(StepWindow(0, 200), PlannerFaultKind.NAN)],
            )
            result = _run(
                scenario,
                planner=self._compound(scenario, embedded),
                seed=seed,
                max_time=12.0,
            )
            assert result.outcome is not Outcome.COLLISION
