"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense, Sequential
from repro.nn.losses import MSELoss
from repro.nn.optimizers import SGD, Adam


def _quadratic_model(seed=0):
    """A 1-parameter-layer model for convergence checks."""
    rng = np.random.default_rng(seed)
    return Sequential([Dense(2, 1, rng)])


def _train(model, optimizer, steps=500):
    rng = np.random.default_rng(42)
    x = rng.normal(size=(64, 2))
    w_true = np.array([[2.0], [-3.0]])
    y = x @ w_true + 0.5
    loss = MSELoss()
    for _ in range(steps):
        optimizer.zero_grad()
        pred = model.forward(x)
        model.backward(loss.gradient(pred, y))
        optimizer.step()
    return loss.value(model.forward(x), y)


class TestSGD:
    def test_converges_on_linear_regression(self):
        model = _quadratic_model()
        assert _train(model, SGD(model, learning_rate=0.05)) < 1e-4

    def test_momentum_converges(self):
        model = _quadratic_model(1)
        assert _train(model, SGD(model, 0.02, momentum=0.9)) < 1e-4

    def test_step_moves_parameters(self):
        model = _quadratic_model()
        opt = SGD(model, 0.1)
        model.forward(np.ones((1, 2)))
        model.backward(np.ones((1, 1)))
        before = model.parameters()["layer0.weight"].copy()
        opt.step()
        assert not np.allclose(before, model.parameters()["layer0.weight"])

    def test_bad_learning_rate_rejected(self):
        model = _quadratic_model()
        with pytest.raises(ConfigurationError):
            SGD(model, learning_rate=0.0)

    def test_bad_momentum_rejected(self):
        model = _quadratic_model()
        with pytest.raises(ConfigurationError):
            SGD(model, 0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_linear_regression(self):
        model = _quadratic_model(2)
        assert _train(model, Adam(model, 0.05)) < 1e-4

    def test_bias_correction_first_step_magnitude(self):
        """The first Adam step has magnitude ~learning_rate."""
        model = _quadratic_model(3)
        opt = Adam(model, learning_rate=0.01)
        model.forward(np.ones((1, 2)))
        model.backward(np.ones((1, 1)))
        before = model.parameters()["layer0.weight"].copy()
        opt.step()
        delta = np.abs(model.parameters()["layer0.weight"] - before)
        assert np.all(delta < 0.011)
        assert np.all(delta > 0.009)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta1": 1.0},
            {"beta2": -0.1},
            {"eps": 0.0},
            {"learning_rate": -1.0},
        ],
    )
    def test_bad_hyperparameters_rejected(self, kwargs):
        model = _quadratic_model()
        with pytest.raises(ConfigurationError):
            Adam(model, **{"learning_rate": 1e-3, **kwargs})

    def test_zero_grad_clears(self):
        model = _quadratic_model()
        opt = Adam(model)
        model.forward(np.ones((1, 2)))
        model.backward(np.ones((1, 1)))
        opt.zero_grad()
        assert np.allclose(model.gradients()["layer0.weight"], 0.0)
