"""Observation parsing and the per-connection decision session."""

import math

import pytest

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleModel
from repro.errors import ServeError
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.scenarios.car_following import CarFollowingScenario
from repro.serve.session import (
    DecisionSession,
    Observation,
    RemoteReport,
    parse_observation,
)

SCENARIO = CarFollowingScenario()


def _session(max_age=1.0):
    return DecisionSession(
        {1: ReachabilityAnalyzer(SCENARIO.leader_limits)},
        max_state_age=max_age,
    )


def _payload(**overrides):
    payload = {
        "op": "decide",
        "time": 1.0,
        "ego": {"position": 0.0, "velocity": 20.0},
        "messages": [
            {"vehicle": 1, "stamp": 0.9, "position": 40.0, "velocity": 15.0}
        ],
    }
    payload.update(overrides)
    return payload


class TestParseObservation:
    def test_minimal_valid(self):
        obs = parse_observation(_payload())
        assert obs.time == pytest.approx(1.0)
        assert obs.ego.velocity == pytest.approx(20.0)
        assert len(obs.reports) == 1
        assert obs.reports[0].vehicle == 1
        assert obs.deadline_s is None

    def test_deadline_ms_converts_to_seconds(self):
        obs = parse_observation(_payload(deadline_ms=25.0))
        assert obs.deadline_s == pytest.approx(0.025)

    def test_acceleration_defaults_to_zero(self):
        obs = parse_observation(_payload())
        assert obs.reports[0].acceleration == pytest.approx(0.0)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"time": None},
            {"time": math.nan},
            {"time": "soon"},
            {"ego": None},
            {"ego": {"position": math.inf, "velocity": 1.0}},
            {"ego": {"position": 0.0, "velocity": math.nan}},
            {"messages": "not-a-list"},
            {"messages": [{"stamp": 0.5}]},
            {"messages": [{"vehicle": 1, "stamp": math.nan, "position": 1.0, "velocity": 1.0}]},
            {"deadline_ms": math.nan},
            {"deadline_ms": 0.0},
            {"deadline_ms": -10.0},
        ],
    )
    def test_malformed_rejected(self, mutation):
        with pytest.raises(ServeError):
            parse_observation(_payload(**mutation))

    def test_future_stamped_report_rejected(self):
        bad = _payload(
            messages=[
                {"vehicle": 1, "stamp": 2.0, "position": 1.0, "velocity": 1.0}
            ]
        )
        with pytest.raises(ServeError, match="future"):
            parse_observation(bad)


class TestDecisionSession:
    def test_requires_vehicles_and_sane_age(self):
        with pytest.raises(ServeError):
            DecisionSession({}, max_state_age=1.0)
        with pytest.raises(ServeError):
            _session(max_age=0.0)
        with pytest.raises(ServeError):
            _session(max_age=math.nan)

    def test_no_report_means_no_context(self):
        session = _session()
        obs = parse_observation(_payload(messages=[]))
        assert session.context_for(obs) is None
        assert session.staleness(obs.time) is None

    def test_fresh_report_builds_context(self):
        session = _session()
        obs = parse_observation(_payload())
        assert session.ingest(obs) == 1
        context = session.context_for(obs)
        assert context is not None
        estimate = context.estimates[1]
        assert estimate.message_age == pytest.approx(0.1)
        # The band must contain every dynamically reachable leader
        # state: simulate the leader coasting and braking to the
        # request time and check containment (soundness, not shape).
        model = VehicleModel(SCENARIO.leader_limits)
        start = VehicleState(position=40.0, velocity=15.0)
        for accel in (-6.0, -2.0, 0.0, 3.0):
            reached = model.step(start, accel, 0.1)
            assert estimate.position.contains(reached.position)
            assert estimate.velocity.contains(reached.velocity)

    def test_newest_stamp_wins_out_of_order(self):
        session = _session()
        fresh = Observation(
            time=1.0,
            ego=VehicleState(0.0, 20.0),
            reports=(RemoteReport(1, stamp=0.9, position=40.0, velocity=15.0),),
        )
        stale = Observation(
            time=1.1,
            ego=VehicleState(0.0, 20.0),
            reports=(RemoteReport(1, stamp=0.4, position=35.0, velocity=14.0),),
        )
        assert session.ingest(fresh) == 1
        assert session.ingest(stale) == 0  # older stamp never overwrites
        assert session.reports_superseded == 1
        assert session.last_stamp(1) == pytest.approx(0.9)

    def test_unknown_vehicle_ignored(self):
        session = _session()
        obs = Observation(
            time=1.0,
            ego=VehicleState(0.0, 20.0),
            reports=(RemoteReport(7, stamp=0.9, position=1.0, velocity=1.0),),
        )
        assert session.ingest(obs) == 0
        assert session.context_for(obs) is None

    def test_stale_report_yields_no_context(self):
        session = _session(max_age=0.5)
        first = parse_observation(_payload())
        session.ingest(first)
        later = Observation(time=2.0, ego=VehicleState(0.0, 20.0))
        assert session.context_for(later) is None
        # but staleness is reported (vehicle *has* spoken)
        assert session.staleness(2.0) == pytest.approx(1.1)

    def test_clock_regression_yields_no_context(self):
        session = _session()
        session.ingest(parse_observation(_payload()))
        earlier = Observation(time=0.5, ego=VehicleState(0.0, 20.0))
        assert session.context_for(earlier) is None

    def test_band_widens_with_age(self):
        session = _session()
        session.ingest(parse_observation(_payload()))
        near = session.context_for(
            Observation(time=1.0, ego=VehicleState(0.0, 20.0))
        )
        far = session.context_for(
            Observation(time=1.5, ego=VehicleState(0.0, 20.0))
        )
        assert near is not None and far is not None
        assert (
            far.estimates[1].position.width
            > near.estimates[1].position.width
        )
