"""Tests for the closed-interval algebra."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EmptyIntervalError, IntervalError
from repro.utils.intervals import Interval

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def intervals(allow_empty: bool = True):
    """Strategy producing (possibly empty) intervals."""
    base = st.tuples(finite, finite).map(lambda ab: Interval(*ab))
    if allow_empty:
        return base
    return base.filter(lambda iv: not iv.is_empty)


class TestConstruction:
    def test_ordered_endpoints(self):
        iv = Interval(1.0, 2.0)
        assert iv.lo == 1.0
        assert iv.hi == 2.0

    def test_reversed_endpoints_become_empty(self):
        assert Interval(2.0, 1.0).is_empty

    def test_reversed_normalises_to_canonical_empty(self):
        assert Interval(5.0, 3.0) == Interval.EMPTY

    def test_nan_rejected(self):
        with pytest.raises(IntervalError):
            Interval(math.nan, 1.0)
        with pytest.raises(IntervalError):
            Interval(0.0, math.nan)

    def test_point(self):
        iv = Interval.point(3.5)
        assert iv.lo == iv.hi == 3.5
        assert iv.is_point

    def test_around(self):
        iv = Interval.around(10.0, 2.0)
        assert iv == Interval(8.0, 12.0)

    def test_around_negative_radius_rejected(self):
        with pytest.raises(IntervalError):
            Interval.around(0.0, -1.0)

    def test_hull_of_values(self):
        assert Interval.hull_of([3.0, -1.0, 2.0]) == Interval(-1.0, 3.0)

    def test_hull_of_empty_iterable(self):
        assert Interval.hull_of([]).is_empty

    def test_unbounded(self):
        iv = Interval.unbounded()
        assert iv.contains(1e300)
        assert not iv.is_bounded


class TestPredicates:
    def test_contains_endpoints(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(2.0)
        assert 1.5 in iv

    def test_empty_contains_nothing(self):
        assert not Interval.EMPTY.contains(0.0)

    def test_contains_interval(self):
        assert Interval(0.0, 10.0).contains_interval(Interval(2.0, 3.0))
        assert not Interval(0.0, 10.0).contains_interval(Interval(2.0, 11.0))

    def test_empty_is_subset_of_anything(self):
        assert Interval(0.0, 1.0).contains_interval(Interval.EMPTY)
        assert Interval.EMPTY.contains_interval(Interval.EMPTY)

    def test_overlaps_touching(self):
        # Closed intervals: sharing an endpoint counts as overlap.
        assert Interval(0.0, 1.0).overlaps(Interval(1.0, 2.0))

    def test_overlaps_disjoint(self):
        assert not Interval(0.0, 1.0).overlaps(Interval(1.1, 2.0))

    def test_overlaps_empty(self):
        assert not Interval.EMPTY.overlaps(Interval(0.0, 1.0))
        assert not Interval(0.0, 1.0).overlaps(Interval.EMPTY)

    def test_truthiness(self):
        assert Interval(0.0, 1.0)
        assert not Interval.EMPTY


class TestMeasures:
    def test_width(self):
        assert Interval(1.0, 4.0).width == 3.0

    def test_width_of_empty_is_zero(self):
        assert Interval.EMPTY.width == 0.0

    def test_midpoint(self):
        assert Interval(2.0, 4.0).midpoint == 3.0

    def test_midpoint_of_empty_raises(self):
        with pytest.raises(EmptyIntervalError):
            _ = Interval.EMPTY.midpoint

    def test_midpoint_of_unbounded_raises(self):
        with pytest.raises(IntervalError):
            _ = Interval.unbounded().midpoint


class TestAlgebra:
    def test_intersect(self):
        assert Interval(0.0, 5.0).intersect(Interval(3.0, 8.0)) == Interval(
            3.0, 5.0
        )

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)).is_empty

    def test_intersect_with_empty(self):
        assert Interval(0.0, 1.0).intersect(Interval.EMPTY).is_empty

    def test_hull(self):
        assert Interval(0.0, 1.0).hull(Interval(3.0, 4.0)) == Interval(0.0, 4.0)

    def test_hull_with_empty_is_identity(self):
        iv = Interval(1.0, 2.0)
        assert iv.hull(Interval.EMPTY) == iv
        assert Interval.EMPTY.hull(iv) == iv

    def test_expand(self):
        assert Interval(1.0, 2.0).expand(0.5) == Interval(0.5, 2.5)

    def test_expand_negative_can_empty(self):
        assert Interval(1.0, 2.0).expand(-1.0).is_empty

    def test_expand_empty_stays_empty(self):
        assert Interval.EMPTY.expand(100.0).is_empty

    def test_shift(self):
        assert Interval(1.0, 2.0).shift(3.0) == Interval(4.0, 5.0)

    def test_scale_negative_factor_flips(self):
        assert Interval(1.0, 2.0).scale(-2.0) == Interval(-4.0, -2.0)

    def test_clamp(self):
        iv = Interval(0.0, 10.0)
        assert iv.clamp(-5.0) == 0.0
        assert iv.clamp(5.0) == 5.0
        assert iv.clamp(15.0) == 10.0

    def test_clamp_empty_raises(self):
        with pytest.raises(EmptyIntervalError):
            Interval.EMPTY.clamp(1.0)

    def test_sample_endpoints(self):
        iv = Interval(2.0, 6.0)
        assert iv.sample(0.0) == 2.0
        assert iv.sample(1.0) == 6.0
        assert iv.sample(0.5) == 4.0

    def test_sample_out_of_range_raises(self):
        with pytest.raises(IntervalError):
            Interval(0.0, 1.0).sample(1.5)

    def test_minkowski_sum(self):
        assert Interval(0.0, 1.0) + Interval(2.0, 3.0) == Interval(2.0, 4.0)

    def test_minkowski_difference(self):
        assert Interval(5.0, 6.0) - Interval(1.0, 2.0) == Interval(3.0, 5.0)

    def test_negation(self):
        assert -Interval(1.0, 2.0) == Interval(-2.0, -1.0)

    def test_unpacking(self):
        lo, hi = Interval(1.0, 2.0)
        assert (lo, hi) == (1.0, 2.0)


class TestProperties:
    @given(intervals(), intervals())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_hull_commutes(self, a, b):
        assert a.hull(b) == b.hull(a)

    @given(intervals(), intervals())
    def test_intersection_contained_in_both(self, a, b):
        joined = a.intersect(b)
        assert a.contains_interval(joined)
        assert b.contains_interval(joined)

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains_interval(a)
        assert hull.contains_interval(b)

    @given(intervals(allow_empty=False), finite)
    def test_clamp_lands_inside(self, iv, x):
        assert iv.contains(iv.clamp(x))

    @given(intervals(), intervals())
    def test_overlap_iff_nonempty_intersection(self, a, b):
        assert a.overlaps(b) == (not a.intersect(b).is_empty)

    @given(intervals(allow_empty=False), st.floats(0.0, 1.0))
    def test_sample_lands_inside(self, iv, u):
        assert iv.contains(iv.sample(u))

    @given(intervals(), finite)
    def test_shift_preserves_width(self, iv, offset):
        # Width is preserved up to the rounding of the shifted
        # endpoints (a few ulps at the shifted magnitude).
        import math

        magnitude = max(abs(iv.lo), abs(iv.hi), abs(offset), 1.0) * 2.0
        tolerance = 4 * math.ulp(magnitude)
        assert iv.shift(offset).width == pytest.approx(
            iv.width, abs=tolerance
        )


class TestEdgeCases:
    """Degenerate and infinite inputs the safety algebra relies on."""

    def test_empty_absorbs_chained_intersections(self):
        chain = (
            Interval(0.0, 10.0)
            .intersect(Interval.EMPTY)
            .intersect(Interval(2.0, 8.0))
            .intersect(Interval.unbounded())
        )
        assert chain.is_empty
        assert chain == Interval.EMPTY

    def test_disjoint_intersection_stays_empty_downstream(self):
        chain = Interval(0.0, 1.0).intersect(Interval(2.0, 3.0))
        assert chain == Interval.EMPTY
        assert chain.intersect(Interval(0.0, 3.0)) == Interval.EMPTY

    def test_infinite_endpoints_through_hull(self):
        left = Interval(-math.inf, 0.0)
        right = Interval(5.0, math.inf)
        hull = left.hull(right)
        assert hull == Interval.unbounded()
        assert hull.width == math.inf

    def test_hull_with_empty_is_identity(self):
        iv = Interval(-math.inf, 3.0)
        assert iv.hull(Interval.EMPTY) == iv
        assert Interval.EMPTY.hull(iv) == iv

    def test_width_of_half_infinite_intervals(self):
        assert Interval(-math.inf, 0.0).width == math.inf
        assert Interval(0.0, math.inf).width == math.inf
        assert Interval.EMPTY.width == 0.0

    def test_degenerate_point_interval_membership(self):
        pt = Interval.point(4.0)
        assert pt.is_point
        assert pt.width == 0.0
        assert pt.overlaps(Interval(4.0, 9.0))
        assert not pt.overlaps(Interval(4.5, 9.0))
        assert pt.intersect(Interval(0.0, 4.0)) == pt
