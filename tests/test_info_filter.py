"""Tests for the two estimate providers.

The load-bearing property: both providers produce bands that contain the
observed vehicle's true state at every control step, under message
delay/drop and sensor noise — the soundness premise of the safety
theorem.  The information filter must additionally be tighter than the
raw estimator.
"""

import pytest

from repro.comm.channel import Channel
from repro.comm.disturbance import messages_delayed, messages_lost
from repro.comm.message import Message
from repro.dynamics.profiles import RandomSequenceProfile
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.errors import FilterError
from repro.filtering.info_filter import InformationFilter, RawEstimator
from repro.sensing.noise import NoiseBounds
from repro.sensing.sensor import Sensor
from repro.utils.rng import RngStream

LIMITS = VehicleLimits(v_min=-20.0, v_max=-2.0, a_min=-3.0, a_max=3.0)
BOUNDS = NoiseBounds.uniform_all(1.5)
DT_C = 0.05
DT_S = 0.1


def _drive(estimator, seed, n_steps=120, drop_p=0.3, delay=0.25):
    """Closed-loop feed: returns (errors, widths, truth trace)."""
    rng = RngStream(seed)
    profile_rng, sensor_rng, channel_rng, init_rng = rng.spawn(4)
    state = VehicleState(
        position=55.0, velocity=float(init_rng.uniform(-14.0, -9.0))
    )
    model = VehicleModel(LIMITS)
    profile = RandomSequenceProfile(profile_rng, -2.0, 2.0)
    sensor = Sensor(target=1, period=DT_S, bounds=BOUNDS, rng=sensor_rng)
    channel = Channel(
        period=DT_S,
        disturbance=messages_delayed(delay, drop_p),
        rng=channel_rng,
    )
    sensor_every = int(round(DT_S / DT_C))
    containment = []
    widths = []
    for step in range(n_steps):
        t = step * DT_C
        accel = profile(step, t, state)
        stamped = state.with_acceleration(accel)
        if step % sensor_every == 0:
            channel.send(1, t, stamped)
            estimator.on_sensor_reading(sensor.measure(t, stamped))
        for message in channel.receive(t):
            estimator.on_message(message, t)
        est = estimator.estimate(t)
        containment.append(
            est.position.expand(1e-9).contains(stamped.position)
            and est.velocity.expand(1e-9).contains(stamped.velocity)
        )
        widths.append(est.position.width)
        state = model.step(state, accel, DT_C)
    return containment, widths


def _make_filtered():
    return InformationFilter(
        limits=LIMITS, sensor_bounds=BOUNDS, sensing_period=DT_S
    )


def _make_raw():
    return RawEstimator(limits=LIMITS, sensor_bounds=BOUNDS)


class TestSoundness:
    @pytest.mark.parametrize("seed", range(6))
    def test_raw_bands_contain_truth(self, seed):
        containment, _ = _drive(_make_raw(), seed)
        assert all(containment)

    @pytest.mark.parametrize("seed", range(6))
    def test_filtered_bands_contain_truth_at_confidence(self, seed):
        """The fused band is confidence-based, not guaranteed.

        The information filter intersects the guaranteed reachability
        band with the Kalman ``±3 sigma`` band (the paper's join), so
        the truth can occasionally fall outside — especially between
        sensor samples, where extrapolation uses a stale acceleration
        while the i.i.d. workload re-draws it every control step.  The
        design property is *high-rate* containment, with the guaranteed
        band (tested above via the raw estimator) as the sound envelope.
        """
        containment, _ = _drive(_make_filtered(), seed)
        assert sum(containment) / len(containment) >= 0.90

    def test_filtered_tighter_on_average(self):
        _, raw_w = _drive(_make_raw(), 42)
        _, filt_w = _drive(_make_filtered(), 42)
        assert sum(filt_w) <= sum(raw_w) + 1e-9


class TestNoInformation:
    def test_estimate_before_any_input_raises(self):
        with pytest.raises(FilterError):
            _make_filtered().estimate(0.0)
        with pytest.raises(FilterError):
            _make_raw().estimate(0.0)


class TestMessageHandling:
    def _msg(self, stamp, p=50.0, v=-12.0, a=0.5):
        return Message(
            sender=1,
            stamp=stamp,
            state=VehicleState(position=p, velocity=v, acceleration=a),
        )

    def test_message_only_estimation(self):
        est_f = _make_filtered()
        est_f.on_message(self._msg(0.0), 0.0)
        out = est_f.estimate(0.5)
        assert out.position.contains(50.0 - 12.0 * 0.5)
        assert out.message_age == pytest.approx(0.5)

    def test_raw_keeps_newest_stamp(self):
        raw = _make_raw()
        raw.on_message(self._msg(1.0, p=40.0), 1.3)
        raw.on_message(self._msg(0.5, p=45.0), 1.35)  # late, stale
        assert raw.latest_message.stamp == 1.0

    def test_filtered_keeps_newest_stamp(self):
        filt = _make_filtered()
        filt.on_message(self._msg(1.0, p=40.0), 1.3)
        filt.on_message(self._msg(0.5, p=45.0), 1.35)
        assert filt.latest_message.stamp == 1.0

    def test_nominal_acceleration_from_message(self):
        raw = _make_raw()
        raw.on_message(self._msg(0.0, a=0.75), 0.0)
        assert raw.estimate(0.1).nominal.acceleration == 0.75

    def test_band_widens_with_message_age(self):
        filt = _make_raw()
        filt.on_message(self._msg(0.0), 0.0)
        early = filt.estimate(0.1).position.width
        late = filt.estimate(1.0).position.width
        assert late > early


class TestSensorOnly:
    """The messages-lost setting: sensing is the sole source."""

    def test_sensor_only_estimation_sound(self):
        for estimator in (_make_raw(), _make_filtered()):
            containment, _ = _drive(estimator, 3, drop_p=1.0)
            assert all(containment)

    def test_velocity_band_clipped_to_physical(self):
        raw = _make_raw()
        # Measurement pushed past the physical max speed.
        from repro.sensing.sensor import SensorReading

        raw.on_sensor_reading(
            SensorReading(
                target=1,
                time=0.0,
                position=50.0,
                velocity=-21.0,  # beyond v_min=-20
                acceleration=0.0,
            )
        )
        est = raw.estimate(0.0)
        assert est.velocity.lo >= LIMITS.v_min - 1e-9

    def test_fully_out_of_range_velocity_measurement(self):
        bounds = NoiseBounds(delta_p=1.0, delta_v=0.1, delta_a=0.1)
        raw = RawEstimator(limits=LIMITS, sensor_bounds=bounds)
        from repro.sensing.sensor import SensorReading

        raw.on_sensor_reading(
            SensorReading(
                target=1,
                time=0.0,
                position=50.0,
                velocity=-25.0,  # band [-25.1, -24.9] outside physical
                acceleration=0.0,
            )
        )
        est = raw.estimate(0.0)
        assert est.velocity.contains(LIMITS.v_min)
