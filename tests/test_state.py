"""Tests for vehicle and system state containers."""

import math

import numpy as np
import pytest

from repro.dynamics.state import SystemState, VehicleState
from repro.errors import ConfigurationError


class TestVehicleState:
    def test_fields(self):
        s = VehicleState(position=1.0, velocity=2.0, acceleration=0.5)
        assert (s.position, s.velocity, s.acceleration) == (1.0, 2.0, 0.5)

    def test_default_acceleration(self):
        assert VehicleState(position=0.0, velocity=0.0).acceleration == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            VehicleState(position=math.nan, velocity=0.0)

    def test_as_vector(self):
        vec = VehicleState(position=3.0, velocity=4.0).as_vector()
        assert vec.shape == (2, 1)
        assert vec[0, 0] == 3.0
        assert vec[1, 0] == 4.0

    def test_with_acceleration_copies(self):
        s = VehicleState(position=1.0, velocity=2.0)
        s2 = s.with_acceleration(1.5)
        assert s2.acceleration == 1.5
        assert s.acceleration == 0.0
        assert s2.position == s.position

    def test_shifted(self):
        s = VehicleState(position=1.0, velocity=2.0).shifted(dp=3.0, dv=-1.0)
        assert s.position == 4.0
        assert s.velocity == 1.0

    def test_immutability(self):
        s = VehicleState(position=0.0, velocity=0.0)
        with pytest.raises(AttributeError):
            s.position = 1.0  # type: ignore[misc]

    def test_str_mentions_values(self):
        assert "1.500" in str(VehicleState(position=1.5, velocity=0.0))


class TestSystemState:
    def _two(self):
        return SystemState(
            time=0.5,
            vehicles=(
                VehicleState(position=0.0, velocity=1.0),
                VehicleState(position=10.0, velocity=-2.0),
            ),
        )

    def test_ego_is_index_zero(self):
        assert self._two().ego.position == 0.0

    def test_others(self):
        others = self._two().others
        assert len(others) == 1
        assert others[0].position == 10.0

    def test_n_vehicles(self):
        assert self._two().n_vehicles == 2

    def test_requires_at_least_one_vehicle(self):
        with pytest.raises(ConfigurationError):
            SystemState(time=0.0, vehicles=())

    def test_nan_time_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemState(
                time=math.nan,
                vehicles=(VehicleState(position=0.0, velocity=0.0),),
            )

    def test_with_vehicle_replaces_one(self):
        s = self._two()
        replaced = s.with_vehicle(1, VehicleState(position=99.0, velocity=0.0))
        assert replaced.vehicle(1).position == 99.0
        assert replaced.ego.position == 0.0
        assert s.vehicle(1).position == 10.0  # original untouched

    def test_with_time(self):
        assert self._two().with_time(3.0).time == 3.0

    def test_of_accepts_list(self):
        s = SystemState.of(1.0, [VehicleState(position=0.0, velocity=0.0)])
        assert s.n_vehicles == 1

    def test_iteration(self):
        positions = [v.position for v in self._two()]
        assert positions == [0.0, 10.0]
