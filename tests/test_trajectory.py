"""Tests for trajectory recording and queries."""

import numpy as np
import pytest

from repro.dynamics.state import VehicleState
from repro.dynamics.trajectory import Trajectory, TrajectoryPoint
from repro.errors import SimulationError


def _traj():
    t = Trajectory()
    for i in range(5):
        t.append(i * 0.5, VehicleState(position=float(i), velocity=2.0 * i))
    return t


class TestBuilding:
    def test_append_and_len(self):
        assert len(_traj()) == 5

    def test_times_must_increase(self):
        t = _traj()
        with pytest.raises(SimulationError):
            t.append(1.0, VehicleState(position=0.0, velocity=0.0))

    def test_equal_time_rejected(self):
        t = _traj()
        with pytest.raises(SimulationError):
            t.append(2.0, VehicleState(position=0.0, velocity=0.0))

    def test_construct_from_points(self):
        pts = [
            TrajectoryPoint(0.0, VehicleState(position=0.0, velocity=0.0)),
            TrajectoryPoint(1.0, VehicleState(position=1.0, velocity=1.0)),
        ]
        assert len(Trajectory(pts)) == 2


class TestIntrospection:
    def test_span(self):
        t = _traj()
        assert t.start_time == 0.0
        assert t.end_time == 2.0
        assert t.duration == 2.0

    def test_empty_properties_raise(self):
        t = Trajectory()
        assert t.is_empty
        with pytest.raises(SimulationError):
            _ = t.start_time

    def test_last(self):
        assert _traj().last().position == 4.0

    def test_indexing_and_iteration(self):
        t = _traj()
        assert t[2].time == 1.0
        assert [p.position for p in t] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_point_shortcuts(self):
        p = _traj()[1]
        assert p.position == 1.0
        assert p.velocity == 2.0
        assert p.acceleration == 0.0


class TestQueries:
    def test_at_or_before_exact(self):
        assert _traj().at_or_before(1.0).position == 2.0

    def test_at_or_before_between_samples(self):
        assert _traj().at_or_before(1.2).position == 2.0

    def test_at_or_before_too_early(self):
        with pytest.raises(SimulationError):
            _traj().at_or_before(-0.1)

    def test_interpolate_exact_sample(self):
        s = _traj().interpolate(1.5)
        assert s.position == 3.0

    def test_interpolate_midpoint(self):
        s = _traj().interpolate(0.25)
        assert s.position == pytest.approx(0.5)
        assert s.velocity == pytest.approx(1.0)

    def test_interpolate_outside_span_raises(self):
        with pytest.raises(SimulationError):
            _traj().interpolate(3.0)

    def test_first_time_when(self):
        t = _traj()
        hit = t.first_time_when(lambda time, s: s.position >= 2.0)
        assert hit == 1.0

    def test_first_time_when_no_match(self):
        assert _traj().first_time_when(lambda t, s: s.position > 100) is None


class TestBulkAccessors:
    def test_arrays(self):
        t = _traj()
        assert np.allclose(t.times(), [0.0, 0.5, 1.0, 1.5, 2.0])
        assert np.allclose(t.positions(), [0, 1, 2, 3, 4])
        assert np.allclose(t.velocities(), [0, 2, 4, 6, 8])
        assert t.accelerations().shape == (5,)
