"""Tests for model save/load."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn.layers import Dense, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.serialization import load_model, save_model


def _net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Dense(4, 8, rng), ReLU(), Dense(8, 8, rng), Tanh(), Dense(8, 2, rng)]
    )


class TestRoundTrip:
    def test_outputs_identical(self, tmp_path):
        net = _net()
        path = save_model(net, tmp_path / "model")
        restored = load_model(path)
        x = np.random.default_rng(1).normal(size=(5, 4))
        assert np.allclose(net.forward(x), restored.forward(x))

    def test_npz_suffix_appended(self, tmp_path):
        path = save_model(_net(), tmp_path / "model")
        assert path.suffix == ".npz"

    def test_architecture_preserved(self, tmp_path):
        path = save_model(_net(), tmp_path / "m")
        restored = load_model(path)
        types = [type(layer).__name__ for layer in restored.layers]
        assert types == ["Dense", "ReLU", "Dense", "Tanh", "Dense"]

    def test_sigmoid_supported(self, tmp_path):
        rng = np.random.default_rng(2)
        net = Sequential([Dense(2, 2, rng), Sigmoid()])
        restored = load_model(save_model(net, tmp_path / "s"))
        x = np.ones((1, 2))
        assert np.allclose(net.forward(x), restored.forward(x))

    def test_creates_parent_directories(self, tmp_path):
        path = save_model(_net(), tmp_path / "a" / "b" / "model")
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_model(tmp_path / "nope.npz")

    def test_not_a_model_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(SerializationError):
            load_model(path)

    def test_corrupted_shape(self, tmp_path):
        net = _net()
        path = save_model(net, tmp_path / "model")
        data = dict(np.load(path))
        data["layer0.weight"] = np.zeros((2, 2))
        np.savez(path, **data)
        with pytest.raises(SerializationError):
            load_model(path)

    def test_missing_parameter(self, tmp_path):
        net = _net()
        path = save_model(net, tmp_path / "model")
        data = dict(np.load(path))
        del data["layer0.bias"]
        np.savez(path, **data)
        with pytest.raises(SerializationError):
            load_model(path)
