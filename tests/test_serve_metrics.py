"""The decision server's ``metrics`` probe: exposition under load.

The probe ships the full registry snapshot plus its Prometheus text
rendering.  These tests pin the probe's shape, its behaviour with a
disabled observer, and — the part operators actually depend on — that
the exposition reflects the exact ladder accounting invariant
``serve.offered == served + degraded + shed`` at idle, including after
load shedding and across a drain.
"""

import asyncio

from repro.faults.planner_wrapper import StallingPlanner
from repro.obs.expo import CONTENT_TYPE
from repro.obs.observer import NULL_OBSERVER
from repro.serve.client import ServeClient
from repro.serve.server import DecisionServer, ServeConfig

from tests.serve_helpers import (
    assert_response_safe,
    ladder_factory,
    leader_report,
    run_server_test,
    session_factory,
)

EGO = {"position": 0.0, "velocity": 20.0}


def _stalling_wrap(seconds):
    def wrap(planner):
        return StallingPlanner(planner, seconds)

    return wrap


def _exposed_values(text: str) -> dict:
    """Parse ``name{labels} value`` exposition lines into a dict."""
    values = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        key, _, value = line.rpartition(" ")
        values[key] = float(value)
    return values


def _assert_idle_invariant(payload: dict) -> None:
    """offered == served + degraded + shed, in snapshot AND exposition."""
    counters = payload["snapshot"]["counters"]
    offered = counters.get("serve.offered", 0)
    served = counters.get("serve.served", 0)
    degraded = counters.get("serve.degraded", 0)
    shed = counters.get("serve.shed", 0)
    assert offered == served + degraded + shed
    exposed = _exposed_values(payload["text"])
    assert exposed["repro_serve_offered"] == offered
    assert exposed.get("repro_serve_served", 0) == served
    assert exposed.get("repro_serve_degraded", 0) == degraded
    assert exposed.get("repro_serve_shed", 0) == shed


class TestMetricsProbe:
    def test_probe_shape_and_exposition(self, tmp_path):
        async def body(server, path):
            def work():
                with ServeClient(path=path) as client:
                    response = client.decide(
                        1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                    )
                    assert_response_safe(response)
                    return client.metrics()

            payload = await asyncio.to_thread(work)
            assert payload["event"] == "metrics"
            assert payload["enabled"] is True
            assert payload["content_type"] == CONTENT_TYPE
            assert payload["snapshot"]["counters"]["serve.offered"] == 1
            text = payload["text"]
            assert "# TYPE repro_serve_offered counter" in text
            assert "repro_serve_offered 1" in text
            # The latency histogram renders with cumulative buckets.
            assert "repro_serve_decision_seconds_count 1" in text
            assert 'repro_serve_decision_seconds_bucket{le="+Inf"} 1' in text
            _assert_idle_invariant(payload)
            # The probe matches the server-side public read.  Counters
            # only: the connection gauge legitimately drops to zero
            # once the client above disconnects.
            server_side = server.metrics_exposition()
            assert (
                server_side["snapshot"]["counters"]
                == payload["snapshot"]["counters"]
            )

        run_server_test(body, tmp_path)

    def test_disabled_observer_degrades_gracefully(self, tmp_path):
        path = str(tmp_path / "serve.sock")

        async def scenario():
            server = DecisionServer(
                ladder_factory(),
                session_factory(),
                observer=NULL_OBSERVER,
            )
            await server.start(path=path)
            try:

                def work():
                    with ServeClient(path=path) as client:
                        return client.metrics()

                payload = await asyncio.to_thread(work)
                assert payload["enabled"] is False
                assert payload["text"] == ""
                assert payload["snapshot"] is None
                assert payload["content_type"] == CONTENT_TYPE
            finally:
                await server.drain()

        asyncio.run(scenario())

    def test_exposition_reflects_shed_accounting(self, tmp_path):
        async def body(server, path):
            first = await asyncio.to_thread(lambda: ServeClient(path=path))
            second = await asyncio.to_thread(lambda: ServeClient(path=path))
            try:
                slow = asyncio.create_task(
                    asyncio.to_thread(
                        lambda: first.decide(
                            1.0,
                            EGO,
                            reports=[leader_report(0.95, 60.0, 15.0)],
                            deadline_ms=400.0,
                        )
                    )
                )
                await asyncio.sleep(0.15)
                assert server.inflight == 1
                shed = await asyncio.to_thread(
                    lambda: second.decide(
                        1.0, EGO, reports=[leader_report(0.95, 60.0, 15.0)]
                    )
                )
                assert shed["status"] == "shed"
                assert_response_safe(shed)
                slow_response = await slow
                assert_response_safe(slow_response)
                # Both requests settled: the server is idle again and
                # the exposition must balance exactly.
                payload = await asyncio.to_thread(second.metrics)
                counters = payload["snapshot"]["counters"]
                assert counters["serve.offered"] == 2
                assert counters["serve.shed"] == 1
                # Every offered decide lands in exactly one ladder
                # series; the shed reply resolved at ladder 3.
                decisions = {
                    key: value
                    for key, value in counters.items()
                    if key.startswith("serve.decisions{")
                }
                assert sum(decisions.values()) == 2
                assert decisions["serve.decisions{ladder=3}"] >= 1
                _assert_idle_invariant(payload)
                exposed = _exposed_values(payload["text"])
                assert exposed['repro_serve_decisions{ladder="3"}'] >= 1
            finally:
                first.close()
                second.close()

        run_server_test(
            body,
            tmp_path,
            config=ServeConfig(max_inflight=1),
            wrap=_stalling_wrap(1.0),
        )

    def test_exposition_across_drain(self, tmp_path):
        async def body(server, path):
            first = await asyncio.to_thread(lambda: ServeClient(path=path))
            second = await asyncio.to_thread(lambda: ServeClient(path=path))
            try:
                slow = asyncio.create_task(
                    asyncio.to_thread(
                        lambda: first.decide(
                            1.0,
                            EGO,
                            reports=[leader_report(0.95, 60.0, 15.0)],
                            deadline_ms=700.0,
                        )
                    )
                )
                await asyncio.sleep(0.2)
                drain = asyncio.create_task(server.drain())
                await asyncio.sleep(0.1)
                assert server.draining
                refused = await asyncio.to_thread(
                    lambda: second.decide(1.5, EGO)
                )
                assert refused["cause"] == "draining"
                assert_response_safe(refused)
                # The probe still answers while draining.
                payload = await asyncio.to_thread(second.metrics)
                assert payload["enabled"] is True
                assert payload["snapshot"]["counters"]["serve.shed"] == 1
                slow_response = await slow
                assert_response_safe(slow_response)
                await drain
                # Fully drained == idle: the accounting must balance in
                # the server-side payload too.
                final = server.metrics_exposition()
                assert final["snapshot"]["counters"]["serve.offered"] == 2
                _assert_idle_invariant(final)
            finally:
                first.close()
                second.close()

        run_server_test(
            body,
            tmp_path,
            config=ServeConfig(drain_grace=5.0),
            wrap=_stalling_wrap(5.0),
        )
