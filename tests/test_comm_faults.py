"""Tests for composable channel fault models and the hardened channel."""

import math

import pytest

from repro.comm.channel import Channel
from repro.comm.disturbance import messages_delayed, messages_lost, no_disturbance
from repro.comm.faults import (
    ComposedFaults,
    Duplication,
    FaultModel,
    FaultProcess,
    FixedDelay,
    GaussianJitter,
    GilbertElliottLoss,
    IndependentLoss,
    NoFault,
    UniformJitter,
    compose,
)
from repro.comm.message import Message
from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.filtering.kalman import KalmanFilter
from repro.filtering.replay import ReplayKalmanFilter
from repro.sensing.noise import NoiseBounds
from repro.sensing.sensor import SensorReading
from repro.utils.rng import RngStream

STATE = VehicleState(position=50.0, velocity=-12.0, acceleration=0.5)
DT = 0.1


def _drain(channel, until, dt=DT):
    """Receive at every control tick up to ``until``; returns messages."""
    out = []
    steps = int(round(until / dt))
    for k in range(steps + 1):
        out.extend(channel.receive(k * dt))
    return out


def _run_channel(faults, n_sends=200, seed=3):
    channel = Channel(period=DT, faults=faults, rng=RngStream(seed))
    for k in range(n_sends):
        channel.send(1, k * DT, STATE)
    drained = _drain(channel, n_sends * DT + 10.0)
    return channel, drained


class TestMessageHardening:
    def test_negative_stamp_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(sender=1, stamp=-0.1, state=STATE)

    def test_infinite_stamp_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(sender=1, stamp=math.inf, state=STATE)

    @pytest.mark.parametrize("field", ["position", "velocity", "acceleration"])
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_nonfinite_payload_rejected(self, field, bad):
        values = {"position": 50.0, "velocity": -12.0, "acceleration": 0.5}
        values[field] = bad
        with pytest.raises(ConfigurationError):
            Message(sender=1, stamp=0.0, state=VehicleState(**values))


class TestModelValidation:
    def test_loss_probability_range(self):
        with pytest.raises(ConfigurationError):
            IndependentLoss(1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedDelay(-0.1)

    def test_jitter_window_ordering(self):
        with pytest.raises(ConfigurationError):
            UniformJitter(0.3, 0.1)

    def test_gaussian_nan_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianJitter(mean=0.1, std=0.05, high=math.nan)

    def test_gilbert_elliott_probabilities(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(p_enter_burst=2.0, p_exit_burst=0.5)

    def test_compose_rejects_non_models(self):
        with pytest.raises(ConfigurationError):
            compose(FixedDelay(0.1), "not a model")

    def test_compose_requires_a_stage(self):
        with pytest.raises(ConfigurationError):
            ComposedFaults(stages=())


class TestCompose:
    def test_single_stage_returned_unchanged(self):
        delay = FixedDelay(0.2)
        assert compose(delay) is delay

    def test_nested_compositions_flatten(self):
        inner = compose(IndependentLoss(0.1), FixedDelay(0.2))
        outer = compose(inner, Duplication(0.5))
        assert isinstance(outer, ComposedFaults)
        assert len(outer.stages) == 3

    def test_stochastic_iff_any_stage_is(self):
        assert not compose(FixedDelay(0.1), NoFault()).is_stochastic
        assert compose(FixedDelay(0.1), IndependentLoss(0.5)).is_stochastic

    def test_describe_reads_as_pipeline(self):
        text = compose(IndependentLoss(0.3), FixedDelay(0.25)).describe()
        assert "loss" in text and "delay" in text and "+" in text

    def test_stage_order_matters_for_duplication(self):
        # Loss after duplication can kill individual copies; before it,
        # duplication only sees survivors.
        rng = RngStream(0)
        process = compose(Duplication(1.0), IndependentLoss(0.0)).start()
        assert len(process.transform([0.0], rng)) == 2


class TestPresetEquivalence:
    def test_no_disturbance_maps_to_identity(self):
        assert isinstance(no_disturbance().as_fault_model(), NoFault)

    def test_messages_lost_always_drops(self):
        channel, drained = _run_channel(
            messages_lost().as_fault_model(), n_sends=20
        )
        assert drained == []
        assert channel.stats.dropped == 20

    def test_delayed_preset_channels_agree(self):
        """Preset channel and explicit fault channel draw identically."""
        legacy = Channel(
            period=DT, disturbance=messages_delayed(0.25, 0.3), rng=RngStream(9)
        )
        explicit = Channel(
            period=DT,
            faults=compose(IndependentLoss(0.3), FixedDelay(0.25)),
            rng=RngStream(9),
        )
        for k in range(100):
            t = k * DT
            legacy.send(1, t, STATE)
            explicit.send(1, t, STATE)
        a = _drain(legacy, 15.0)
        b = _drain(explicit, 15.0)
        assert [m.stamp for m in a] == [m.stamp for m in b]
        assert legacy.stats.dropped == explicit.stats.dropped


class TestGilbertElliott:
    def test_never_entering_burst_never_drops(self):
        channel, drained = _run_channel(
            GilbertElliottLoss(p_enter_burst=0.0, p_exit_burst=0.5), n_sends=50
        )
        assert len(drained) == 50
        assert channel.stats.dropped == 0

    def test_permanent_burst_drops_everything(self):
        channel, drained = _run_channel(
            GilbertElliottLoss(p_enter_burst=1.0, p_exit_burst=0.0), n_sends=50
        )
        assert drained == []
        assert channel.stats.dropped == 50

    def test_start_bad_with_immediate_exit_never_drops(self):
        channel, drained = _run_channel(
            GilbertElliottLoss(
                p_enter_burst=0.0, p_exit_burst=1.0, start_bad=True
            ),
            n_sends=50,
        )
        assert len(drained) == 50

    def test_losses_arrive_in_bursts(self):
        """Drop runs under GE are much longer than independent loss at
        the same average rate would produce."""
        model = GilbertElliottLoss(p_enter_burst=0.02, p_exit_burst=0.2)
        channel = Channel(period=DT, faults=model, rng=RngStream(5))
        pattern = []
        for k in range(2000):
            pattern.append(channel.send(1, k * DT, STATE))
        runs = []
        current = 0
        for ok in pattern:
            if not ok:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert runs, "expected at least one burst"
        # Mean burst length is 1/p_exit = 5 messages; independent loss
        # gives ~1.1.  A loose threshold keeps the test seed-robust.
        assert sum(runs) / len(runs) > 2.0

    def test_processes_do_not_share_state(self):
        model = GilbertElliottLoss(
            p_enter_burst=0.0, p_exit_burst=0.0, start_bad=True
        )
        p1, p2 = model.start(), model.start()
        assert p1 is not p2
        assert p1.in_burst and p2.in_burst


class TestJitterAndReordering:
    def test_jitter_wider_than_period_reorders(self):
        channel, drained = _run_channel(
            UniformJitter(0.0, 0.5), n_sends=300, seed=2
        )
        assert len(drained) == 300
        stamps = [m.stamp for m in drained]
        assert stamps != sorted(stamps)
        assert channel.stats.out_of_order > 0
        assert channel.stats.out_of_order == sum(
            1
            for i, s in enumerate(stamps)
            if s < max(stamps[:i], default=-math.inf)
        )

    def test_gaussian_jitter_respects_truncation(self):
        model = GaussianJitter(mean=0.2, std=0.3, low=0.05, high=0.4)
        process = model.start()
        rng = RngStream(7)
        for _ in range(500):
            (offset,) = process.transform([0.0], rng)
            assert 0.05 <= offset <= 0.4

    def test_degenerate_jitter_is_deterministic(self):
        assert not UniformJitter(0.2, 0.2).is_stochastic
        assert not GaussianJitter(mean=0.2, std=0.0).is_stochastic
        channel = Channel(period=DT, faults=UniformJitter(0.2, 0.2))
        channel.send(1, 0.0, STATE)
        assert channel.peek_next_delivery() == pytest.approx(0.2)


class TestDuplication:
    def test_always_duplicate_doubles_deliveries(self):
        channel, drained = _run_channel(Duplication(1.0), n_sends=40)
        assert channel.stats.duplicated == 40
        assert channel.stats.delivered == 80
        assert len(drained) == 80

    def test_duplicate_lag_shifts_second_copy(self):
        channel = Channel(
            period=DT, faults=Duplication(1.0, lag=0.3), rng=RngStream(0)
        )
        channel.send(1, 0.0, STATE)
        assert channel.receive(0.0) != []
        assert channel.peek_next_delivery() == pytest.approx(0.3)

    def test_duplicates_at_equal_time_are_not_out_of_order(self):
        channel, drained = _run_channel(Duplication(1.0), n_sends=10)
        assert channel.stats.out_of_order == 0


class TestConservation:
    @pytest.mark.parametrize(
        "faults",
        [
            NoFault(),
            IndependentLoss(0.4),
            GilbertElliottLoss(p_enter_burst=0.1, p_exit_burst=0.3),
            UniformJitter(0.0, 0.6),
            Duplication(0.5, lag=0.2),
            compose(
                GilbertElliottLoss(p_enter_burst=0.05, p_exit_burst=0.4),
                FixedDelay(0.25),
                UniformJitter(0.0, 0.3),
                Duplication(0.2, lag=0.1),
            ),
        ],
    )
    def test_in_flight_never_negative_and_drains_to_zero(self, faults):
        channel = Channel(
            period=DT,
            faults=faults,
            rng=RngStream(11) if faults.is_stochastic else None,
        )
        for k in range(150):
            channel.send(1, k * DT, STATE)
            channel.receive(k * DT)
            assert channel.stats.in_flight >= 0
        _drain(channel, 150 * DT + 10.0)
        assert channel.stats.in_flight == 0
        s = channel.stats
        assert s.delivered == s.sent - s.dropped + s.duplicated


class _AlternatingDelay(FaultModel):
    """Test-only model: delays alternate 0.2 / 0.1 so that consecutive
    sends collide at the same delivery instant."""

    @property
    def is_stochastic(self):
        return False

    def start(self):
        outer = self

        class _Process(FaultProcess):
            def __init__(self):
                self._count = 0

            def transform(self, offsets, rng):
                delay = 0.2 if self._count % 2 == 0 else 0.1
                self._count += 1
                return [o + delay for o in offsets]

        return _Process()

    def describe(self):
        return "alternating delay 0.2/0.1"


class TestTieBreaking:
    def test_equal_delivery_times_keep_send_order(self):
        """Sent at 0.0 (+0.2) and 0.1 (+0.1): both land at t=0.2 and
        must come out in send order."""
        channel = Channel(period=DT, faults=_AlternatingDelay())
        channel.send(1, 0.0, STATE)
        channel.send(1, 0.1, STATE)
        delivered = channel.receive(0.2)
        assert [m.stamp for m in delivered] == [0.0, 0.1]
        assert channel.stats.out_of_order == 0


class TestChannelConstruction:
    def test_disturbance_and_faults_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            Channel(
                period=DT,
                disturbance=messages_delayed(),
                faults=FixedDelay(0.1),
            )

    def test_stochastic_model_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Channel(period=DT, faults=IndependentLoss(0.5))

    def test_deterministic_model_needs_no_rng(self):
        channel = Channel(period=DT, faults=FixedDelay(0.2))
        assert channel.disturbance is None
        assert channel.faults == FixedDelay(0.2)

    def test_same_seed_reproduces_deliveries_exactly(self):
        pipeline = compose(
            GilbertElliottLoss(p_enter_burst=0.05, p_exit_burst=0.4),
            UniformJitter(0.0, 0.3),
            Duplication(0.2),
        )
        runs = []
        for _ in range(2):
            channel = Channel(period=DT, faults=pipeline, rng=RngStream(21))
            for k in range(100):
                channel.send(1, k * DT, STATE)
            runs.append([m.stamp for m in _drain(channel, 25.0)])
        assert runs[0] == runs[1]


class TestReplayUnderFaults:
    """The estimator stack must absorb duplicates and reordering."""

    def _rkf(self):
        return ReplayKalmanFilter(KalmanFilter(DT, NoiseBounds.uniform_all(1.0)))

    def _seed(self, rkf):
        rkf.on_sensor_reading(
            SensorReading(
                target=1, time=0.0, position=50.0, velocity=-12.0,
                acceleration=0.0,
            )
        )

    def test_duplicate_message_is_ignored(self):
        rkf = self._rkf()
        self._seed(rkf)
        message = Message(sender=1, stamp=0.1, state=STATE)
        first = rkf.on_message(message, now=0.2)
        assert first is not None
        assert rkf.on_message(message, now=0.3) is None

    def test_out_of_order_older_message_is_ignored(self):
        rkf = self._rkf()
        self._seed(rkf)
        newer = Message(sender=1, stamp=0.3, state=STATE)
        older = Message(sender=1, stamp=0.1, state=STATE)
        assert rkf.on_message(newer, now=0.4) is not None
        assert rkf.on_message(older, now=0.4) is None
