"""Tests for layers, with numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense, Identity, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.losses import MSELoss


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(3, 5, np.random.default_rng(0))
        out = layer.forward(np.zeros((7, 3)))
        assert out.shape == (7, 5)

    def test_forward_affine(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        layer.weight[:] = np.eye(2)
        layer.bias[:] = [1.0, -1.0]
        out = layer.forward(np.array([[3.0, 4.0]]))
        assert np.allclose(out, [[4.0, 3.0]])

    def test_wrong_width_rejected(self):
        layer = Dense(3, 5)
        with pytest.raises(ConfigurationError):
            layer.forward(np.zeros((1, 4)))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(ConfigurationError):
            Dense(2, 2).backward(np.zeros((1, 2)))

    def test_weight_gradient_numerically(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))
        loss = MSELoss()

        def value():
            return loss.value(layer.forward(x), target)

        layer.zero_grad()
        pred = layer.forward(x)
        layer.backward(loss.gradient(pred, target))
        num = numerical_gradient(value, layer.weight)
        assert np.allclose(layer.grad_weight, num, atol=1e-5)

    def test_bias_gradient_numerically(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        loss = MSELoss()

        def value():
            return loss.value(layer.forward(x), target)

        layer.zero_grad()
        pred = layer.forward(x)
        layer.backward(loss.gradient(pred, target))
        num = numerical_gradient(value, layer.bias)
        assert np.allclose(layer.grad_bias, num, atol=1e-5)

    def test_input_gradient_numerically(self):
        rng = np.random.default_rng(3)
        layer = Dense(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        loss = MSELoss()

        def value():
            return loss.value(layer.forward(x), target)

        pred = layer.forward(x)
        grad_x = layer.backward(loss.gradient(pred, target))
        num = numerical_gradient(value, x)
        assert np.allclose(grad_x, num, atol=1e-5)

    def test_gradient_accumulates_until_zero_grad(self):
        rng = np.random.default_rng(4)
        layer = Dense(2, 2, rng)
        x = rng.normal(size=(3, 2))
        g = rng.normal(size=(3, 2))
        layer.forward(x)
        layer.backward(g)
        once = layer.grad_weight.copy()
        layer.forward(x)
        layer.backward(g)
        assert np.allclose(layer.grad_weight, 2 * once)
        layer.zero_grad()
        assert np.allclose(layer.grad_weight, 0.0)

    def test_unknown_init_rejected(self):
        with pytest.raises(ConfigurationError):
            Dense(2, 2, init="bogus")

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 2)


class TestActivations:
    @pytest.mark.parametrize(
        "activation,fn",
        [
            (ReLU(), lambda x: np.maximum(x, 0.0)),
            (Tanh(), np.tanh),
            (Identity(), lambda x: x),
        ],
    )
    def test_forward_values(self, activation, fn):
        x = np.linspace(-2, 2, 9).reshape(3, 3)
        assert np.allclose(activation.forward(x), fn(x))

    def test_sigmoid_range_and_extremes(self):
        s = Sigmoid()
        out = s.forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize(
        "activation", [ReLU(), Tanh(), Sigmoid(), Identity()]
    )
    def test_gradient_numerically(self, activation):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 3)) + 0.1  # avoid the ReLU kink at 0
        target = rng.normal(size=(4, 3))
        loss = MSELoss()

        def value():
            return loss.value(activation.forward(x), target)

        pred = activation.forward(x)
        grad_x = activation.backward(loss.gradient(pred, target))
        num = numerical_gradient(value, x)
        assert np.allclose(grad_x, num, atol=1e-5)

    def test_backward_before_forward_rejected(self):
        with pytest.raises(ConfigurationError):
            ReLU().backward(np.zeros((1, 1)))


class TestSequential:
    def _net(self, seed=0):
        rng = np.random.default_rng(seed)
        return Sequential([Dense(3, 8, rng), Tanh(), Dense(8, 1, rng)])

    def test_forward_shape(self):
        assert self._net().forward(np.zeros((5, 3))).shape == (5, 1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([])

    def test_parameters_namespaced(self):
        names = set(self._net().parameters())
        assert names == {
            "layer0.weight",
            "layer0.bias",
            "layer2.weight",
            "layer2.bias",
        }

    def test_end_to_end_gradient_numerically(self):
        rng = np.random.default_rng(6)
        net = self._net(seed=7)
        x = rng.normal(size=(6, 3))
        target = rng.normal(size=(6, 1))
        loss = MSELoss()

        def value():
            return loss.value(net.forward(x), target)

        net.zero_grad()
        pred = net.forward(x)
        net.backward(loss.gradient(pred, target))
        grads = net.gradients()
        for name, param in net.parameters().items():
            num = numerical_gradient(value, param)
            assert np.allclose(grads[name], num, atol=1e-4), name

    def test_config_roundtrippable_shape(self):
        cfg = self._net().config()
        assert cfg["type"] == "Sequential"
        assert [layer["type"] for layer in cfg["layers"]] == [
            "Dense",
            "Tanh",
            "Dense",
        ]

    def test_len_and_iter(self):
        net = self._net()
        assert len(net) == 3
        assert len(list(net)) == 3

    def test_predict_alias(self):
        net = self._net()
        x = np.zeros((2, 3))
        assert np.allclose(net.predict(x), net.forward(x))
