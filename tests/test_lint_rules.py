"""Per-rule safelint tests against the fixtures in ``lint_fixtures/``.

Every rule must (a) fire on its ``*_bad.py`` fixture and (b) stay
silent on its ``*_good.py`` fixture.  Fixtures are linted with an
injected module name so package-scoped rules (sim/math/planner/units)
apply to them exactly as they would inside the real tree.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_source

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: rule id -> (fixture stem, injected module name)
RULE_FIXTURES = {
    "SFL001": ("float_equality", "repro.analysis.fixture"),
    "SFL002": ("mutable_default", "repro.analysis.fixture"),
    "SFL003": ("broad_except", "repro.sim.fixture"),
    "SFL004": ("wall_clock", "repro.sim.fixture"),
    "SFL005": ("global_rng", "repro.analysis.fixture"),
    "SFL006": ("unguarded_division", "repro.scenarios.fixture"),
    "SFL007": ("plan_clamp", "repro.planners.fixture"),
    "SFL008": ("units_docstring", "repro.dynamics.fixture"),
    "SFL009": ("no_dynamic_code", "repro.analysis.fixture"),
    "SFL010": ("silent_except", "repro.analysis.fixture"),
    "SFL011": ("obs_flow", "repro.sim.fixture"),
    "SFL012": ("unseeded_rng", "repro.analysis.fixture"),
    "SFL100": ("dim_add", "repro.dynamics.fixture"),
    "SFL101": ("dim_compare", "repro.dynamics.fixture"),
    "SFL102": ("dim_call", "repro.dynamics.fixture"),
    "SFL103": ("dim_return", "repro.dynamics.fixture"),
    "SFL104": ("dim_annotation", "repro.dynamics.fixture"),
    "SFL105": ("dim_missing_units", "repro.dynamics.fixture"),
    "SFL200": ("shape_matmul", "repro.filtering.fixture"),
    "SFL201": ("shape_broadcast", "repro.filtering.fixture"),
    "SFL202": ("shape_axis", "repro.nn.fixture"),
    "SFL203": ("shape_dtype_narrowing", "repro.nn.fixture"),
    "SFL204": ("shape_missing", "repro.nn.fixture"),
    "SFL205": ("shape_binding", "repro.filtering.fixture"),
    "SFL300": ("flow_vectorize", "repro.sim.fixture"),
    "SFL301": ("flow_global", "repro.sim.fixture"),
    "SFL302": ("flow_accumulate", "repro.sim.fixture"),
    "SFL303": ("flow_nondet", "repro.sim.fixture"),
    "SFL304": ("flow_hoist", "repro.sim.fixture"),
    "SFL305": ("flow_contradiction", "repro.sim.fixture"),
    "SFL306": ("flow_rng", "repro.sim.fixture"),
}


def _findings_for(rule_id, stem, module):
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    findings = lint_source(
        source, path=f"{stem}.py", module=module, config=LintConfig()
    )
    return [f for f in findings if f.rule_id == rule_id]


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_fires_on_bad_fixture(rule_id):
    stem, module = RULE_FIXTURES[rule_id]
    findings = _findings_for(rule_id, f"{stem}_bad", module)
    assert findings, f"{rule_id} did not fire on {stem}_bad.py"
    for finding in findings:
        assert finding.rule_id == rule_id
        assert finding.line >= 1
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_silent_on_good_fixture(rule_id):
    stem, module = RULE_FIXTURES[rule_id]
    findings = _findings_for(rule_id, f"{stem}_good", module)
    assert not findings, (
        f"{rule_id} false-positives on {stem}_good.py: "
        f"{[f.format_text() for f in findings]}"
    )


def test_every_registered_rule_has_a_fixture_pair():
    from repro.lint import rule_ids

    assert set(rule_ids()) == set(RULE_FIXTURES)
    for stem, _ in RULE_FIXTURES.values():
        assert (FIXTURES / f"{stem}_bad.py").is_file()
        assert (FIXTURES / f"{stem}_good.py").is_file()


# ----------------------------------------------------------------------
# Targeted edge cases per rule, beyond the fixture files
# ----------------------------------------------------------------------
def _lint(source, module="repro.sim.fixture"):
    return lint_source(source, module=module, config=LintConfig())


def test_float_equality_exempts_zero_and_sentinels():
    clean = (
        "NEVER = float('inf')\n"
        "def f(velocity, entry):\n"
        "    '''d.'''\n"
        "    return velocity == 0.0 or entry == NEVER\n"
    )
    assert not [f for f in _lint(clean) if f.rule_id == "SFL001"]


def test_float_equality_exempts_pytest_approx():
    # ``x == pytest.approx(y)`` IS the tolerance comparison the rule
    # asks for; both the attribute and the bare-import spelling pass.
    clean = (
        "import pytest\n"
        "from pytest import approx\n"
        "def f(velocity, stamp):\n"
        "    '''d.'''\n"
        "    assert velocity == pytest.approx(20.0)\n"
        "    assert stamp == approx(1.0)\n"
    )
    assert not [f for f in _lint(clean) if f.rule_id == "SFL001"]


def test_float_equality_flags_chained_comparison():
    source = "def f(t, t_goal, other):\n    '''d.'''\n    return other < t == t_goal\n"
    assert [f for f in _lint(source) if f.rule_id == "SFL001"]


def test_scoped_rule_ignores_out_of_scope_module():
    source = "import time\ndef f():\n    '''d.'''\n    return time.time()\n"
    findings = lint_source(
        source, module="repro.analysis.fixture", config=LintConfig()
    )
    assert not [f for f in findings if f.rule_id == "SFL004"]


def test_plan_clamp_ignores_module_level_plan_function():
    source = "def plan(context):\n    '''d.'''\n    return 1e9\n"
    findings = lint_source(
        source, module="repro.planners.fixture", config=LintConfig()
    )
    assert not [f for f in findings if f.rule_id == "SFL007"]


def test_division_guard_propagates_through_assignment():
    source = (
        "def f(a_floor, distance):\n"
        "    '''d.'''\n"
        "    if a_floor == 0.0:\n"
        "        return 0.0\n"
        "    decel = -a_floor\n"
        "    return distance / decel\n"
    )
    findings = lint_source(
        source, module="repro.scenarios.fixture", config=LintConfig()
    )
    assert not [f for f in findings if f.rule_id == "SFL006"]


def test_division_by_attribute_is_exempt():
    source = (
        "def f(self_like, distance, limits):\n"
        "    '''d.'''\n"
        "    return distance / limits.a_min\n"
    )
    findings = lint_source(
        source, module="repro.scenarios.fixture", config=LintConfig()
    )
    assert not [f for f in findings if f.rule_id == "SFL006"]


def test_syntax_error_yields_parse_finding():
    findings = _lint("def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule_id == "SFL000"
