"""Tests for planner training and persistence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SerializationError
from repro.planners.factory import (
    TrainedPlannerSpec,
    build_expert,
    build_network,
    train_left_turn_planner,
)
from repro.planners.training_data import DemonstrationConfig
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator


class TestBuildExpert:
    def test_styles(self, scenario):
        cons = build_expert(
            "conservative",
            scenario.geometry,
            scenario.ego_limits,
            scenario.oncoming_limits,
        )
        aggr = build_expert(
            "aggressive",
            scenario.geometry,
            scenario.ego_limits,
            scenario.oncoming_limits,
        )
        assert not cons.window_estimator.aggressive
        assert aggr.window_estimator.aggressive

    def test_unknown_style_rejected(self, scenario):
        with pytest.raises(ConfigurationError):
            build_expert(
                "reckless",
                scenario.geometry,
                scenario.ego_limits,
                scenario.oncoming_limits,
            )


class TestBuildNetwork:
    def test_shape(self):
        net = build_network(np.random.default_rng(0), hidden=8)
        out = net.forward(np.zeros((3, 5)))
        assert out.shape == (3, 1)


class TestTraining:
    def test_spec_contents(self, tiny_conservative_spec):
        spec = tiny_conservative_spec
        assert spec.style == "conservative"
        assert spec.history is not None
        assert spec.history.epochs_run > 0
        assert spec.scaler.mean.shape == (5,)

    def test_deterministic_training(self, scenario):
        def train():
            return train_left_turn_planner(
                "conservative",
                scenario.geometry,
                scenario.ego_limits,
                scenario.oncoming_limits,
                seed=99,
                demo_config=DemonstrationConfig(n_random=100, n_rollouts=1),
                epochs=3,
                hidden=8,
            )

        a, b = train(), train()
        x = np.zeros((1, 5))
        assert np.allclose(a.model.forward(x), b.model.forward(x))

    def test_natural_planner_uses_training_estimator(
        self, tiny_conservative_spec, scenario
    ):
        planner = tiny_conservative_spec.natural_planner(scenario.ego_limits)
        assert (
            planner.window_estimator
            is tiny_conservative_spec.expert.window_estimator
        )

    def test_build_planner_with_custom_estimator(
        self, tiny_conservative_spec, scenario
    ):
        est = PassingWindowEstimator(
            scenario.geometry, scenario.oncoming_limits, aggressive=True
        )
        planner = tiny_conservative_spec.build_planner(est, scenario.ego_limits)
        assert planner.window_estimator is est


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_conservative_spec, scenario, tmp_path):
        directory = tiny_conservative_spec.save(tmp_path / "planner")
        restored = TrainedPlannerSpec.load(
            directory, tiny_conservative_spec.expert
        )
        assert restored.style == "conservative"
        x = np.random.default_rng(0).normal(size=(4, 5))
        assert np.allclose(
            restored.model.forward(x), tiny_conservative_spec.model.forward(x)
        )
        assert np.allclose(
            restored.scaler.mean, tiny_conservative_spec.scaler.mean
        )

    def test_loaded_spec_has_no_history(
        self, tiny_conservative_spec, scenario, tmp_path
    ):
        directory = tiny_conservative_spec.save(tmp_path / "p2")
        restored = TrainedPlannerSpec.load(
            directory, tiny_conservative_spec.expert
        )
        assert restored.history is None

    def test_missing_directory_rejected(self, tiny_conservative_spec, tmp_path):
        with pytest.raises(SerializationError):
            TrainedPlannerSpec.load(
                tmp_path / "nowhere", tiny_conservative_spec.expert
            )
