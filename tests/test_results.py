"""Tests for result records, eta, aggregates, winning percentage."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.evaluation import eta_from_events
from repro.sim.results import (
    AggregateStats,
    Outcome,
    SimulationResult,
    winning_percentage,
)


def _reached(t):
    return SimulationResult(outcome=Outcome.REACHED, reaching_time=t, steps=100)


def _collided(t=3.0):
    return SimulationResult(
        outcome=Outcome.COLLISION, collision_time=t, steps=60
    )


def _timeout():
    return SimulationResult(outcome=Outcome.TIMEOUT, steps=600)


class TestEta:
    def test_reached(self):
        assert _reached(5.0).eta == pytest.approx(0.2)

    def test_collision(self):
        assert _collided().eta == -1.0

    def test_timeout(self):
        assert _timeout().eta == 0.0

    def test_reached_without_time_rejected(self):
        bad = SimulationResult(outcome=Outcome.REACHED, reaching_time=None)
        with pytest.raises(SimulationError):
            _ = bad.eta

    def test_is_safe(self):
        assert _reached(5.0).is_safe
        assert _timeout().is_safe
        assert not _collided().is_safe

    def test_emergency_frequency(self):
        r = SimulationResult(
            outcome=Outcome.REACHED,
            reaching_time=5.0,
            steps=100,
            emergency_steps=25,
        )
        assert r.emergency_frequency == 0.25

    def test_emergency_frequency_no_steps(self):
        r = SimulationResult(outcome=Outcome.TIMEOUT, steps=0)
        assert r.emergency_frequency == 0.0


class TestEtaFromEvents:
    def test_matches_result_eta(self):
        assert eta_from_events(None, 5.0) == pytest.approx(0.2)
        assert eta_from_events(3.0, None) == -1.0
        assert eta_from_events(None, None) == 0.0

    def test_collision_before_reaching_dominates(self):
        assert eta_from_events(2.0, 5.0) == -1.0

    def test_reaching_before_collision_counts(self):
        # The paper's side condition: a violation after the target was
        # already reached does not spoil the run.
        assert eta_from_events(6.0, 5.0) == pytest.approx(0.2)

    def test_nonpositive_reaching_time_rejected(self):
        with pytest.raises(SimulationError):
            eta_from_events(None, 0.0)


class TestAggregateStats:
    def test_mixed_batch(self):
        stats = AggregateStats.from_results(
            [_reached(4.0), _reached(6.0), _collided(), _timeout()]
        )
        assert stats.n_runs == 4
        assert stats.n_safe == 3
        assert stats.n_reached == 2
        assert stats.safe_rate == 0.75
        assert stats.mean_reaching_time == pytest.approx(5.0)
        expected_eta = (0.25 + 1 / 6 - 1.0 + 0.0) / 4
        assert stats.mean_eta == pytest.approx(expected_eta)

    def test_no_reached_runs_nan_reaching_time(self):
        stats = AggregateStats.from_results([_collided(), _timeout()])
        assert math.isnan(stats.mean_reaching_time)

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            AggregateStats.from_results([])

    def test_reaching_time_counts_safe_runs_only(self):
        """Table II's '*' convention: crashes don't count as fast."""
        fast_crash = SimulationResult(
            outcome=Outcome.COLLISION, collision_time=1.0, steps=20
        )
        stats = AggregateStats.from_results([fast_crash, _reached(8.0)])
        assert stats.mean_reaching_time == pytest.approx(8.0)


class TestWinningPercentage:
    def test_strict_wins_only(self):
        ultimate = [_reached(4.0), _reached(5.0), _reached(6.0)]
        other = [_reached(5.0), _reached(5.0), _reached(5.0)]
        # eta: 0.25 > 0.2 (win), 0.2 == 0.2 (tie), 1/6 < 0.2 (loss).
        assert winning_percentage(ultimate, other) == pytest.approx(1 / 3)

    def test_collision_always_loses(self):
        ultimate = [_reached(10.0)]
        other = [_collided()]
        assert winning_percentage(ultimate, other) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            winning_percentage([_reached(1.0)], [])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            winning_percentage([], [])
