"""Chaos: SIGKILL the serve process mid-stream; injected hung planners.

These tests run the real ``repro-serve`` CLI as a subprocess and abuse
it the way an unreliable deployment would: kill -9 with requests in
flight, restart on the same socket, and planners wedged via the
``--inject-stall-seconds`` chaos flag.  The invariant under all of it:
**every reply actually received, at every ladder level, is
shield-verified safe**, and a killed server never hands the client a
bogus decision — the client surfaces :class:`~repro.errors.ServeError`
and the caller falls back to its own full-brake default.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.errors import ServeError
from repro.serve.client import ServeClient

from tests.serve_helpers import assert_response_safe, leader_report

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _start_server(sock_path, *extra_flags):
    """Launch ``repro-serve`` on a unix socket and wait until it answers."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--unix-socket",
            str(sock_path),
            "--quiet",
            *extra_flags,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server died at startup: {proc.stderr.read().decode()!r}"
            )
        try:
            with ServeClient(path=str(sock_path), timeout=1.0) as client:
                client.ping()
            return proc
        except ServeError:
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("server never became reachable")


def _stop_server(proc):
    """SIGTERM and require the graceful-drain exit code."""
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=15.0) == 0


def _stream_decisions(client, n, t0=1.0, expect_ladder=None):
    """Stream ``n`` laddered decisions; every reply must be safe."""
    seen = set()
    for i in range(n):
        t = t0 + 0.05 * i
        response = client.decide(
            t,
            {"position": 0.0, "velocity": 20.0},
            reports=[leader_report(t - 0.01, 60.0, 15.0)],
        )
        assert_response_safe(response)
        seen.add(response["ladder"])
    if expect_ladder is not None:
        assert expect_ladder in seen
    return seen


class TestKillRestart:
    def test_sigkill_mid_stream_then_restart(self, tmp_path):
        sock = tmp_path / "serve.sock"
        proc = _start_server(sock)
        try:
            client = ServeClient(path=str(sock))
            _stream_decisions(client, 30, expect_ladder=1)
            proc.kill()  # SIGKILL: no drain, no goodbye
            proc.wait(timeout=15.0)
            # The client *knows* it got no decision — never a silent
            # drop or a fabricated action.
            with pytest.raises(ServeError):
                _stream_decisions(client, 1, t0=3.0)
            client.close()
        finally:
            if proc.poll() is None:
                proc.kill()
        # The protocol is stateless per request: a restarted server is
        # immediately serviceable on the same path.
        os.unlink(sock)
        proc = _start_server(sock)
        try:
            with ServeClient(path=str(sock)) as client:
                _stream_decisions(client, 30, expect_ladder=1)
                stats = client.stats()
                assert stats["offered"] == 30
                assert (
                    stats["offered"]
                    == stats["served"] + stats["degraded"] + stats["shed"]
                )
            _stop_server(proc)
        finally:
            if proc.poll() is None:
                proc.kill()


class TestHungPlanner:
    def test_injected_stall_degrades_every_decision(self, tmp_path):
        sock = tmp_path / "serve.sock"
        proc = _start_server(
            sock,
            "--inject-stall-seconds",
            "0.3",
            "--deadline-ms",
            "40",
        )
        try:
            with ServeClient(path=str(sock)) as client:
                for i in range(5):
                    t = 1.0 + 0.05 * i
                    response = client.decide(
                        t,
                        {"position": 0.0, "velocity": 20.0},
                        reports=[leader_report(t - 0.01, 60.0, 15.0)],
                    )
                    assert_response_safe(response)
                    assert response["ladder"] == 2
                    assert response["cause"] == "deadline"
                    assert response["status"] == "degraded"
                stats = client.stats()
                assert stats["deadline_misses"] == 5
                assert stats["planner_restarts"] == 5
                assert stats["degraded"] == 5
            _stop_server(proc)
        finally:
            if proc.poll() is None:
                proc.kill()
