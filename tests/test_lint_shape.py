"""Unit tests for the safeshape core: lattice, annotations, table, checker.

The SFL200-series rule behaviour over realistic sources is covered by
the fixture pairs in ``lint_fixtures/``; this module pins the abstract
semantics those rules are built on — broadcasting, matmul contraction,
the spec grammar, and the cross-module signature table.
"""

import ast

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.shape import (
    ANY_ARRAY,
    SCALAR,
    Shape,
    ShapeSyntaxError,
    broadcast,
    build_shape_table,
    extract_function_shapes,
    format_shape,
    join,
    matmul,
    parse_shape,
)
from repro.lint.shape.lattice import dtype_order, promote_dtype


def _func(source):
    node = ast.parse(source).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


def _shape_findings(source, module="repro.nn.fixture"):
    findings = lint_source(
        source, module=module, config=LintConfig()
    )
    return [f for f in findings if f.rule_id.startswith("SFL2")]


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
def test_parse_shape_concrete_and_symbolic():
    assert parse_shape("B,4", True) == Shape(dims=("B", 4))
    assert parse_shape("2,2", True) == Shape(dims=(2, 2))
    assert parse_shape("N", True) == Shape(dims=("N",))
    assert parse_shape("?,3", True) == Shape(dims=(None, 3))


def test_parse_shape_keywords_and_empty_brackets():
    assert parse_shape("scalar", False) == SCALAR
    assert parse_shape("array", False) == ANY_ARRAY
    assert parse_shape("", True) == Shape(dims=())


def test_parse_shape_dtype_suffix():
    assert parse_shape("B,4; f8", True) == Shape(dims=("B", 4), dtype="f8")
    assert parse_shape("N; float32", True) == Shape(dims=("N",), dtype="f4")


@pytest.mark.parametrize(
    "text,bracketed",
    [
        ("b,4", True),  # symbolic axes must be uppercase-led
        ("-3", True),  # negative extent
        ("B,4; q9", True),  # unknown dtype
        ("B 4", True),  # missing comma
        ("matrix", False),  # bad bare keyword
    ],
)
def test_parse_shape_rejects_bad_specs(text, bracketed):
    with pytest.raises(ShapeSyntaxError):
        parse_shape(text, bracketed)


def test_format_shape_roundtrips_through_the_grammar():
    for spec in ("B,4", "2,2", "N; f8", "?,3"):
        shape = parse_shape(spec, True)
        rendered = format_shape(shape)
        assert rendered.startswith("[") and rendered.endswith("]")
        assert parse_shape(rendered[1:-1], True) == shape
    assert format_shape(SCALAR) == "scalar"
    assert format_shape(ANY_ARRAY) == "array"


# ----------------------------------------------------------------------
# Lattice operations
# ----------------------------------------------------------------------
def test_join_keeps_agreement_and_drops_disagreement():
    column = Shape(dims=(2, 1), dtype="f8")
    assert join(column, Shape(dims=(2, 1), dtype="f8")) == column
    joined = join(column, Shape(dims=(2, 3), dtype="f4"))
    assert joined.dims == (2, None)
    assert joined.dtype is None
    # rank disagreement drops to unknown rank; UNKNOWN absorbs
    assert join(column, Shape(dims=(2, 1, 1))).dims is None
    assert join(column, None) is None


def test_dtype_promotion_and_order():
    assert promote_dtype("f4", "f8") == "f8"
    assert promote_dtype("i8", "f4") == "f4"
    assert promote_dtype("f8", None) is None  # unknown is contagious
    assert dtype_order("f4") < dtype_order("f8")
    assert dtype_order("bool") < dtype_order("i8")


# ----------------------------------------------------------------------
# Broadcasting
# ----------------------------------------------------------------------
def test_broadcast_equal_shapes_is_identity():
    result = broadcast(Shape(dims=(2, 1)), Shape(dims=(2, 1)))
    assert result.shape.dims == (2, 1)
    assert result.mismatch is None and not result.mutual


def test_broadcast_bias_add_is_one_sided():
    result = broadcast(Shape(dims=("B", 2)), Shape(dims=(2,)))
    assert result.shape.dims == ("B", 2)
    assert not result.mutual


def test_broadcast_mutual_stretch_is_flagged():
    result = broadcast(Shape(dims=(2, 1)), Shape(dims=(2,)))
    assert result.shape.dims == (2, 2)
    assert result.mutual
    assert result.mismatch is None


def test_broadcast_concrete_mismatch():
    result = broadcast(Shape(dims=(3,)), Shape(dims=(4,)))
    assert result.mismatch == (3, 4)


def test_broadcast_symbolic_vs_concrete_stays_optimistic():
    result = broadcast(Shape(dims=("N",)), Shape(dims=(4,)))
    assert result.mismatch is None and not result.mutual
    assert result.shape.dims == (None,)


def test_broadcast_unknown_rank_gives_unknown_rank():
    result = broadcast(ANY_ARRAY, Shape(dims=(2, 2)))
    assert result.shape.dims is None
    assert result.mismatch is None


# ----------------------------------------------------------------------
# Matmul
# ----------------------------------------------------------------------
def test_matmul_matrix_times_column():
    result = matmul(Shape(dims=(2, 2)), Shape(dims=(2, 1)))
    assert result.shape.dims == (2, 1) and result.error is None


def test_matmul_inner_mismatch_is_an_error():
    result = matmul(Shape(dims=(2, 1)), Shape(dims=(2, 1)))
    assert result.error is not None
    assert "inner extents" in result.error


def test_matmul_vector_promotion():
    assert matmul(Shape(dims=(3,)), Shape(dims=(3,))).shape.dims == ()
    assert matmul(Shape(dims=(2, 3)), Shape(dims=(3,))).shape.dims == (2,)
    assert matmul(Shape(dims=(3,)), Shape(dims=(3, 4))).shape.dims == (4,)


def test_matmul_batched_leading_axes():
    result = matmul(Shape(dims=("B", 2, 3)), Shape(dims=(3, 4)))
    assert result.shape.dims == ("B", 2, 4) and result.error is None


def test_matmul_scalar_operand_is_an_error():
    assert matmul(SCALAR, Shape(dims=(2, 2))).error is not None


# ----------------------------------------------------------------------
# Annotation extraction
# ----------------------------------------------------------------------
def test_extract_from_docstring_directive():
    func = _func(
        "def f(x, gain):\n"
        '    """D.\n\n    Shapes: x [B,4], gain [2,2] -> [B,2]\n    """\n'
    )
    shapes = extract_function_shapes(func)
    assert shapes.params["x"] == Shape(dims=("B", 4))
    assert shapes.params["gain"] == Shape(dims=(2, 2))
    assert shapes.returns == Shape(dims=("B", 2))
    assert not shapes.issues


def test_extract_from_annotated_hint():
    func = _func(
        "def f(x: Annotated[np.ndarray, '[B,4; f8]']):\n"
        '    """D."""\n'
    )
    shapes = extract_function_shapes(func)
    assert shapes.params["x"] == Shape(dims=("B", 4), dtype="f8")


def test_annotated_wins_over_docstring():
    func = _func(
        "def f(x: Annotated[np.ndarray, '[2,2]']):\n"
        '    """D.\n\n    Shapes: x [B,4]\n    """\n'
    )
    shapes = extract_function_shapes(func)
    assert shapes.params["x"] == Shape(dims=(2, 2))


def test_malformed_docstring_spec_is_an_issue():
    func = _func(
        "def f(x):\n"
        '    """D.\n\n    Shapes: x [b,4]\n    """\n'
    )
    shapes = extract_function_shapes(func)
    assert shapes.issues
    assert "x" not in shapes.params


def test_directive_naming_a_non_parameter_is_an_issue():
    func = _func(
        "def f(x):\n"
        '    """D.\n\n    Shapes: y [2,2]\n    """\n'
    )
    shapes = extract_function_shapes(func)
    assert any("not a" in issue.message for issue in shapes.issues)


# ----------------------------------------------------------------------
# Signature table
# ----------------------------------------------------------------------
def _table(source, module="repro.mod"):
    return build_shape_table([(module, ast.parse(source))])


def test_table_indexes_functions_and_methods():
    table = _table(
        "def f(x):\n"
        '    """D.\n\n    Shapes: x [2,1] -> [2,1]\n    """\n'
        "class C:\n"
        '    """D."""\n'
        "    def m(self, y):\n"
        '        """D.\n\n        Shapes: y [N] -> [N]\n        """\n'
    )
    assert table.lookup("repro.mod.f").params["x"] == Shape(dims=(2, 1))
    assert table.lookup("repro.mod.C.m").params["y"] == Shape(dims=("N",))
    assert table.lookup_method("m").returns == Shape(dims=("N",))


def test_table_conflicting_method_homonyms_resolve_to_none():
    table = _table(
        "class A:\n"
        '    """D."""\n'
        "    def m(self, y):\n"
        '        """D.\n\n        Shapes: y [N]\n        """\n'
        "class B:\n"
        '    """D."""\n'
        "    def m(self, y):\n"
        '        """D.\n\n        Shapes: y [2,2]\n        """\n'
    )
    assert table.lookup_method("m") is None
    assert table.lookup("repro.mod.A.m") is not None


def test_table_class_fields_from_annotated_hints():
    table = _table(
        "class State:\n"
        '    """D."""\n'
        "    x_hat: Annotated[np.ndarray, '[2,1]']\n"
        "    covariance: Annotated[np.ndarray, '[2,2]']\n"
    )
    fields = table.lookup("repro.mod.State")
    assert fields.params["x_hat"] == Shape(dims=(2, 1))
    assert fields.param_order == ("x_hat", "covariance")


# ----------------------------------------------------------------------
# Checker end-to-end (through lint_source)
# ----------------------------------------------------------------------
def test_checker_cross_function_return_flow():
    # The callee's declared return shape flows into the caller, where
    # the transposed use breaks the contraction.
    source = (
        '"""D."""\n'
        "import numpy as np\n\n\n"
        "def gain() -> np.ndarray:\n"
        '    """D.\n\n    Shapes: -> [2, 1]\n    """\n'
        "    return np.zeros((2, 1))\n\n\n"
        "def apply() -> np.ndarray:\n"
        '    """D.\n\n    Shapes: -> array\n    """\n'
        "    return gain() @ np.zeros((2, 2))\n"
    )
    findings = _shape_findings(source)
    assert [f.rule_id for f in findings] == ["SFL200"]


def test_checker_return_contradicting_declaration():
    source = (
        '"""D."""\n'
        "import numpy as np\n\n\n"
        "def column() -> np.ndarray:\n"
        '    """D.\n\n    Shapes: -> [2, 1]\n    """\n'
        "    return np.zeros((1, 2))\n"
    )
    findings = _shape_findings(source)
    assert [f.rule_id for f in findings] == ["SFL205"]


def test_checker_stays_silent_on_unknown_shapes():
    source = (
        '"""D."""\n'
        "import numpy as np\n\n\n"
        "def mix(a_raw, b_raw):\n"
        '    """D."""\n'
        "    return a_raw @ b_raw + a_raw\n"
    )
    assert _shape_findings(source) == []


def test_checker_models_indexing_and_newaxis():
    source = (
        '"""D."""\n'
        "import numpy as np\n\n\n"
        "def widen() -> np.ndarray:\n"
        '    """D.\n\n    Shapes: -> [2, 1]\n    """\n'
        "    flat = np.zeros(2)\n"
        "    return flat[:, np.newaxis]\n"
    )
    assert _shape_findings(source) == []


def test_checker_flags_annassign_contradiction():
    source = (
        '"""D."""\n'
        "import numpy as np\n\n\n"
        "def f() -> None:\n"
        '    """D."""\n'
        "    x: Annotated[np.ndarray, '[2, 2]'] = np.zeros((3, 3))\n"
        "    del x\n"
    )
    findings = _shape_findings(source)
    assert [f.rule_id for f in findings] == ["SFL205"]
