"""Unit tests for the safedim dimensional-analysis pass (SFL100-SFL105).

Covers the dimension lattice, the ``Units:`` grammar, the abstract
interpreter's verdicts on small functions, and — the reason the pass
exists — a seeded-bug check: planting a classic unit mistake in
passing-time-like algebra must produce a finding.
"""

import ast
from fractions import Fraction

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.dim import (
    ACCEL,
    DIMENSIONLESS,
    METRE,
    NUM,
    SECOND,
    SPEED,
    UNKNOWN,
    Dim,
    UnitSyntaxError,
    format_dim,
    join,
    parse_unit,
)
from repro.lint.dim.annotations import extract_function_units

MODULE = "repro.dynamics.fixture"


def _dim_findings(source, module=MODULE):
    findings = lint_source(source, module=module, config=LintConfig())
    return [f for f in findings if f.rule_id.startswith("SFL10")]


def _ids(findings):
    return {f.rule_id for f in findings}


# ----------------------------------------------------------------------
# Lattice and grammar
# ----------------------------------------------------------------------
def test_parse_unit_base_dimensions():
    assert parse_unit("m") == METRE
    assert parse_unit("s") == SECOND
    assert parse_unit("m/s") == SPEED
    assert parse_unit("m/s^2") == ACCEL
    assert parse_unit("1") == DIMENSIONLESS


def test_parse_unit_products_and_exponents():
    assert parse_unit("m*m") == METRE * METRE
    assert parse_unit("m^2/s^2") == SPEED * SPEED
    assert parse_unit("s^-1") == DIMENSIONLESS / SECOND
    assert parse_unit("m/s/s") == ACCEL


@pytest.mark.parametrize("bad", ["meters", "m//s", "", "m^", "kg", "m s"])
def test_parse_unit_rejects_bad_grammar(bad):
    with pytest.raises(UnitSyntaxError):
        parse_unit(bad)


def test_format_dim_roundtrips():
    for unit in ("m", "s", "m/s", "m/s^2", "1", "m^2/s^3"):
        assert parse_unit(format_dim(parse_unit(unit))) == parse_unit(unit)


def test_dim_algebra():
    assert METRE / SECOND == SPEED
    assert SPEED / SECOND == ACCEL
    assert SPEED * SECOND == METRE
    assert (SPEED * SPEED) / ACCEL == METRE
    assert METRE ** Fraction(1, 2) == Dim(Fraction(1, 2), Fraction(0))


def test_join_lattice_laws():
    assert join(METRE, METRE) == METRE
    assert join(NUM, METRE) == METRE
    assert join(METRE, NUM) == METRE
    assert join(METRE, SECOND) is UNKNOWN
    assert join(UNKNOWN, METRE) is UNKNOWN


# ----------------------------------------------------------------------
# Annotation extraction
# ----------------------------------------------------------------------
def _func_units(source):
    tree = ast.parse(source)
    return extract_function_units(tree.body[0])


def test_docstring_units_directive_parsed():
    units = _func_units(
        "def f(position, dt):\n"
        "    '''Step.\n\n    Units: position [m], dt [s] -> [m]\n    '''\n"
        "    return position\n"
    )
    assert units.params["position"] == METRE
    assert units.params["dt"] == SECOND
    assert units.returns == METRE
    assert not units.issues


def test_annotated_hint_parsed():
    tree = ast.parse(
        "from typing import Annotated\n"
        "def f(v: Annotated[float, 'm/s']):\n"
        "    '''d.'''\n"
        "    return v\n"
    )
    units = extract_function_units(tree.body[1])
    assert units.params["v"] == SPEED


def test_malformed_entry_recorded_as_issue():
    units = _func_units(
        "def f(distance):\n"
        "    '''d.\n\n    Units: distance [furlong]\n    '''\n"
        "    return distance\n"
    )
    assert units.issues


# ----------------------------------------------------------------------
# Checker verdicts
# ----------------------------------------------------------------------
def test_adding_unlike_dimensions_fires_sfl100():
    findings = _dim_findings(
        "def f(position, velocity):\n"
        "    '''d.\n\n    Units: position [m], velocity [m/s]\n    '''\n"
        "    return position + velocity\n"
    )
    assert "SFL100" in _ids(findings)


def test_kinematic_advance_is_clean():
    assert not _dim_findings(
        "def f(position, velocity, dt):\n"
        "    '''d.\n\n    Units: position [m], velocity [m/s], dt [s] -> [m]\n"
        "    '''\n"
        "    return position + velocity * dt\n"
    )


def test_comparing_position_to_time_fires_sfl101():
    findings = _dim_findings(
        "def f(position, horizon):\n"
        "    '''d.\n\n    Units: position [m], horizon [s]\n    '''\n"
        "    return position < horizon\n"
    )
    assert "SFL101" in _ids(findings)


def test_min_max_must_be_homogeneous():
    findings = _dim_findings(
        "def f(position, dt):\n"
        "    '''d.\n\n    Units: position [m], dt [s]\n    '''\n"
        "    return max(position, dt)\n"
    )
    assert "SFL101" in _ids(findings)


def test_passing_seconds_where_metres_expected_fires_sfl102():
    findings = _dim_findings(
        "def gap(distance):\n"
        "    '''d.\n\n    Units: distance [m] -> [m]\n    '''\n"
        "    return distance\n"
        "def f(dt):\n"
        "    '''d.\n\n    Units: dt [s]\n    '''\n"
        "    return gap(dt)\n"
    )
    assert "SFL102" in _ids(findings)


def test_return_contradicting_declaration_fires_sfl103():
    findings = _dim_findings(
        "def f(velocity, decel):\n"
        "    '''d.\n\n    Units: velocity [m/s], decel [m/s^2] -> [s]\n"
        "    '''\n"
        "    return velocity * decel\n"
    )
    assert "SFL103" in _ids(findings)


def test_sqrt_halves_exponents():
    assert not _dim_findings(
        "import math\n"
        "def f(accel, distance):\n"
        "    '''d.\n\n    Units: accel [m/s^2], distance [m] -> [m/s]\n"
        "    '''\n"
        "    return math.sqrt(2.0 * accel * distance)\n"
    )


def test_branch_merge_joins_to_unknown_without_flagging():
    # One branch yields [m], the other [s]: the merge is UNKNOWN, and
    # downstream arithmetic must not produce spurious findings.
    assert not _dim_findings(
        "def f(position, horizon, flag):\n"
        "    '''d.\n\n    Units: position [m], horizon [s]\n    '''\n"
        "    x = position if flag else horizon\n"
        "    return x + position\n"
    )


def test_numeric_literals_are_polymorphic():
    assert not _dim_findings(
        "def f(velocity):\n"
        "    '''d.\n\n    Units: velocity [m/s] -> [m/s]\n    '''\n"
        "    return max(velocity, 0.0)\n"
    )


def test_missing_units_on_public_kinematics_fires_sfl105():
    findings = _dim_findings(
        "def f(position, velocity):\n"
        "    '''d.'''\n"
        "    return position\n"
    )
    assert _ids(findings) == {"SFL105"}


def test_private_function_not_required_to_declare():
    assert not _dim_findings(
        "def _f(position, velocity):\n"
        "    '''d.'''\n"
        "    return position\n"
    )


def test_out_of_scope_module_is_ignored():
    findings = _dim_findings(
        "def f(position, velocity):\n"
        "    '''d.\n\n    Units: position [m], velocity [m/s]\n    '''\n"
        "    return position + velocity\n",
        module="repro.analysis.fixture",
    )
    assert not findings


def test_inline_suppression_works_for_dim_rules():
    findings = _dim_findings(
        "def f(position, velocity):\n"
        "    '''d.\n\n    Units: position [m], velocity [m/s]\n    '''\n"
        "    return position + velocity  "
        "# safelint: disable=SFL100 -- test\n"
    )
    assert "SFL100" not in _ids(findings)


# ----------------------------------------------------------------------
# The seeded bug: passing-time algebra with a swapped unit
# ----------------------------------------------------------------------
_PASSING_TIME_TEMPLATE = (
    "import math\n"
    "def earliest_arrival(distance, velocity, v_cap, a_cap):\n"
    "    '''Eq. (7)-style earliest arrival.\n"
    "\n"
    "    Units: distance [m], velocity [m/s], v_cap [m/s], "
    "a_cap [m/s^2] -> [s]\n"
    "    '''\n"
    "    d_ramp = (v_cap * v_cap - velocity * velocity) / (2.0 * {accel})\n"
    "    if d_ramp >= distance:\n"
    "        v_end = math.sqrt("
    "velocity * velocity + 2.0 * {accel} * distance)\n"
    "        return (v_end - velocity) / {accel}\n"
    "    t_ramp = (v_cap - velocity) / {accel}\n"
    "    return t_ramp + (distance - d_ramp) / v_cap\n"
)


def test_correct_passing_time_algebra_is_clean():
    source = _PASSING_TIME_TEMPLATE.format(accel="a_cap")
    assert not _dim_findings(source)


def test_seeded_unit_swap_in_passing_time_algebra_is_caught():
    # The classic mistake: dividing by the speed cap [m/s] where the
    # acceleration cap [m/s^2] belongs.  Every ramp term shifts by one
    # power of time and the pass must notice.
    source = _PASSING_TIME_TEMPLATE.format(accel="v_cap")
    findings = _dim_findings(source)
    assert findings, "seeded [m/s] / [m/s^2] swap went undetected"
    assert _ids(findings) & {"SFL100", "SFL101", "SFL102", "SFL103"}
