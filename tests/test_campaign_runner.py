"""The durable campaign runner: resume semantics and bit-identity.

The central guarantee under test: a campaign killed at **any** byte
offset of its journal can resume and produce an ``aggregate.json``
byte-identical to an uninterrupted run.  The kill is simulated by
truncating the journal of a completed campaign at every record boundary
and mid-record, pairing each truncation with the chunk snapshots a real
crash at that offset could have left behind.
"""

from __future__ import annotations

import shutil

import pytest

from repro.campaign.backoff import BackoffPolicy
from repro.campaign.journal import read_journal
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import (
    AGGREGATE_FILE,
    JOURNAL_FILE,
    MANIFEST_FILE,
    CampaignRunner,
    campaign_status,
    verify_campaign,
)
from repro.errors import CampaignError, FingerprintMismatchError
from repro.sim.results import ChunkResult, FailureRecord, Outcome, SimulationResult


def _manifest(**overrides):
    fields = dict(
        name="runner-test",
        scenario={"kind": "left_turn"},
        comm={
            "sensor_noise": 0.3,
            "faults": [{"kind": "independent_loss", "probability": 0.2}],
        },
        planner={"kind": "constant", "acceleration": 2.0},
        n_sims=6,
        seed=42,
        chunk_size=2,
        config={"max_time": 10.0},
    )
    fields.update(overrides)
    return CampaignManifest(**fields)


def _fake_result(index):
    return SimulationResult(
        outcome=Outcome.REACHED, reaching_time=5.0 + index, steps=10 + index
    )


def _fake_executor(indices, n_sims, seed):
    return ChunkResult(
        indices=list(indices),
        results={k: _fake_result(k) for k in indices},
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted real campaign, shared by the equivalence tests."""
    directory = tmp_path_factory.mktemp("reference") / "campaign"
    manifest = _manifest()
    report = CampaignRunner(manifest, directory, n_workers=1).run()
    assert report.status == "completed"
    return manifest, directory, report


class TestRunLifecycle:
    def test_run_produces_all_artifacts(self, reference):
        manifest, directory, report = reference
        assert (directory / MANIFEST_FILE).exists()
        assert (directory / JOURNAL_FILE).exists()
        assert (directory / AGGREGATE_FILE).exists()
        assert report.completed_chunks == manifest.n_chunks
        assert report.results_digest is not None
        assert report.aggregate is not None
        assert report.aggregate["n_runs"] == manifest.n_sims

    def test_journal_structure(self, reference):
        _, directory, _ = reference
        records, torn = read_journal(directory / JOURNAL_FILE)
        assert not torn
        types = [r["type"] for r in records]
        assert types[0] == "campaign_started"
        assert types[-1] == "campaign_finished"
        assert types.count("chunk_completed") == 3

    def test_status_and_verify_pass(self, reference):
        _, directory, _ = reference
        status = campaign_status(directory)
        assert status["finished"] and not status["torn_tail"]
        assert status["completed_chunks"] == 3
        outcome = verify_campaign(directory)
        assert outcome["ok"], outcome["problems"]

    def test_run_twice_refused(self, reference):
        manifest, directory, _ = reference
        with pytest.raises(CampaignError, match="already started"):
            CampaignRunner(manifest, directory).run()

    def test_resume_of_finished_campaign_is_noop(self, reference):
        manifest, directory, report = reference
        again = CampaignRunner(manifest, directory, n_workers=1).resume()
        assert again.status == "completed"
        assert again.chunks_run == 0
        assert again.results_digest == report.results_digest

    def test_run_refuses_directory_of_other_campaign(self, reference, tmp_path):
        manifest, directory, _ = reference
        other = _manifest(seed=43)
        target = tmp_path / "campaign"
        target.mkdir()
        shutil.copy(directory / MANIFEST_FILE, target / MANIFEST_FILE)
        with pytest.raises(FingerprintMismatchError):
            CampaignRunner(other, target).run()


class TestFingerprintRefusal:
    def test_resume_refuses_changed_manifest(self, reference, tmp_path):
        manifest, directory, _ = reference
        target = tmp_path / "campaign"
        shutil.copytree(directory, target)
        # the user "helpfully" edits the workload between kill and resume
        _manifest(seed=99).save(target / MANIFEST_FILE)
        edited = CampaignManifest.load(target / MANIFEST_FILE)
        with pytest.raises(FingerprintMismatchError, match="different"):
            CampaignRunner(edited, target).resume()

    def test_resume_refuses_foreign_journal(self, reference, tmp_path):
        manifest, directory, _ = reference
        target = tmp_path / "campaign"
        shutil.copytree(directory, target)
        # journal belongs to the original manifest; runner built for
        # another workload must refuse even if manifest.json matches it
        other = _manifest(seed=99)
        other.save(target / MANIFEST_FILE)
        with pytest.raises(FingerprintMismatchError):
            CampaignRunner(other, target).resume()


class TestKillResumeEquivalence:
    """Truncate the journal everywhere a crash can land; resume; compare."""

    def _crash_state(self, reference, tmp_path, journal_bytes):
        """Materialise the on-disk state a crash could leave behind."""
        manifest, directory, _ = reference
        target = tmp_path / "crashed"
        target.mkdir(parents=True)
        shutil.copy(directory / MANIFEST_FILE, target / MANIFEST_FILE)
        (target / JOURNAL_FILE).write_bytes(journal_bytes)
        # Chunks journaled within the surviving prefix must exist; the
        # *next* chunk may also exist (snapshot persisted, record lost).
        records, _ = read_journal(target / JOURNAL_FILE)
        journaled = [
            int(r["chunk"]) for r in records if r["type"] == "chunk_completed"
        ]
        keep = set(journaled)
        if journaled:
            keep.add(max(journaled) + 1)
        else:
            keep.add(0)
        (target / "chunks").mkdir()
        for chunk in keep:
            name = f"chunk-{chunk:05d}.json"
            source = directory / "chunks" / name
            if source.exists():
                shutil.copy(source, target / "chunks" / name)
        return manifest, target

    def _resume_and_compare(self, reference, manifest, target):
        _, directory, report = reference
        resumed = CampaignRunner(manifest, target, n_workers=1).resume()
        assert resumed.status == "completed"
        assert resumed.results_digest == report.results_digest
        # the full aggregate document is byte-identical, not just the
        # digest field
        assert (target / AGGREGATE_FILE).read_bytes() == (
            directory / AGGREGATE_FILE
        ).read_bytes()
        outcome = verify_campaign(target)
        assert outcome["ok"], outcome["problems"]

    def test_every_record_boundary(self, reference, tmp_path):
        _, directory, _ = reference
        lines = (directory / JOURNAL_FILE).read_bytes().splitlines(
            keepends=True
        )
        for cut in range(len(lines)):
            manifest, target = self._crash_state(
                reference, tmp_path / f"boundary-{cut}", b"".join(lines[:cut])
            )
            self._resume_and_compare(reference, manifest, target)

    def test_torn_mid_record(self, reference, tmp_path):
        _, directory, _ = reference
        lines = (directory / JOURNAL_FILE).read_bytes().splitlines(
            keepends=True
        )
        # cut the third record (a chunk_completed) in half: the journal
        # has a torn tail AND the chunk's snapshot exists on disk
        torn = b"".join(lines[:2]) + lines[2][: len(lines[2]) // 2]
        manifest, target = self._crash_state(
            reference, tmp_path / "torn", torn
        )
        status = campaign_status(target)
        assert status["torn_tail"]
        self._resume_and_compare(reference, manifest, target)

    def test_double_kill_then_resume(self, reference, tmp_path):
        """Two successive crashes still converge to the same bytes."""
        _, directory, _ = reference
        lines = (directory / JOURNAL_FILE).read_bytes().splitlines(
            keepends=True
        )
        manifest, target = self._crash_state(
            reference, tmp_path / "first", b"".join(lines[:2])
        )
        # first resume is itself "killed": run it with an executor that
        # completes one chunk and then requests a drain
        runner = CampaignRunner(manifest, target, n_workers=1)
        real = runner._chunk_executor()

        calls = []

        def draining(indices, n_sims, seed):
            calls.append(indices)
            result = real(indices, n_sims, seed)
            runner.request_stop()
            return result

        runner._executor = draining
        partial = runner.resume()
        assert partial.status == "interrupted"
        assert len(calls) == 1
        self._resume_and_compare(reference, manifest, target)


class TestTransientRetry:
    def _flaky_executor(self, fail_times):
        attempts = {}

        def execute(indices, n_sims, seed):
            chunk_key = tuple(indices)
            attempts[chunk_key] = attempts.get(chunk_key, 0) + 1
            if attempts[chunk_key] <= fail_times:
                return ChunkResult(
                    indices=list(indices),
                    results={},
                    failures=[
                        FailureRecord(
                            index=k,
                            stage="worker",
                            error_type="BrokenProcessPool",
                            message="worker died",
                        )
                        for k in indices
                    ],
                )
            return _fake_executor(indices, n_sims, seed)

        return execute, attempts

    def test_transient_failure_retried_with_backoff(self, tmp_path):
        manifest = _manifest(n_sims=4, chunk_size=2)
        executor, attempts = self._flaky_executor(fail_times=2)
        sleeps = []
        runner = CampaignRunner(
            manifest,
            tmp_path / "campaign",
            backoff=BackoffPolicy(max_attempts=3, base_delay=0.01, jitter=0.25),
            sleep=sleeps.append,
            chunk_executor=executor,
        )
        report = runner.run()
        assert report.status == "completed"
        assert report.n_failed == 0
        # each of the 2 chunks needed 3 attempts -> 2 recorded delays each
        assert all(count == 3 for count in attempts.values())
        assert len(sleeps) == 4
        # the recorded delays match the deterministic policy exactly
        policy = BackoffPolicy(max_attempts=3, base_delay=0.01, jitter=0.25)
        expected = [
            policy.delay(manifest.fingerprint, 0, 1),
            policy.delay(manifest.fingerprint, 0, 2),
            policy.delay(manifest.fingerprint, 1, 1),
            policy.delay(manifest.fingerprint, 1, 2),
        ]
        assert sleeps == expected

    def test_exhausted_retries_record_failures(self, tmp_path):
        manifest = _manifest(n_sims=2, chunk_size=2)
        executor, _ = self._flaky_executor(fail_times=99)
        sleeps = []
        runner = CampaignRunner(
            manifest,
            tmp_path / "campaign",
            backoff=BackoffPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            sleep=sleeps.append,
            chunk_executor=executor,
        )
        report = runner.run()
        assert report.status == "completed"
        assert report.n_failed == 2
        assert report.aggregate is None  # nothing completed
        outcome = verify_campaign(tmp_path / "campaign")
        assert outcome["ok"], outcome["problems"]

    def test_deterministic_simulation_failures_not_retried(self, tmp_path):
        manifest = _manifest(n_sims=2, chunk_size=2)
        calls = []

        def execute(indices, n_sims, seed):
            calls.append(list(indices))
            return ChunkResult(
                indices=list(indices),
                results={indices[0]: _fake_result(indices[0])},
                failures=[
                    FailureRecord(
                        index=indices[1],
                        stage="simulation",
                        error_type="PlannerError",
                        message="deterministic",
                    )
                ],
            )

        runner = CampaignRunner(
            manifest, tmp_path / "campaign", chunk_executor=execute
        )
        report = runner.run()
        assert len(calls) == 1  # no retry for a final failure
        assert report.n_failed == 1
        assert report.aggregate["n_runs"] == 1


class TestGracefulDrain:
    def test_request_stop_drains_and_journals_interrupted(self, tmp_path):
        manifest = _manifest(n_sims=6, chunk_size=2)
        directory = tmp_path / "campaign"
        runner = CampaignRunner(
            manifest, directory, chunk_executor=_fake_executor
        )
        calls = []
        real = runner._executor

        def stopping(indices, n_sims, seed):
            calls.append(indices)
            result = real(indices, n_sims, seed)
            if len(calls) == 2:
                runner.request_stop()
            return result

        runner._executor = stopping
        report = runner.run()
        assert report.status == "interrupted"
        assert report.completed_chunks == 2  # in-flight chunk drained
        records, torn = read_journal(directory / JOURNAL_FILE)
        assert not torn
        assert records[-1]["type"] == "interrupted"
        # a later resume finishes the remaining chunk only
        resumed = CampaignRunner(
            manifest, directory, chunk_executor=_fake_executor
        ).resume()
        assert resumed.status == "completed"
        assert resumed.chunks_run == 1


class TestVerifyDetectsTampering:
    def test_modified_chunk_snapshot_fails_verify(self, reference, tmp_path):
        _, directory, _ = reference
        target = tmp_path / "campaign"
        shutil.copytree(directory, target)
        chunk = target / "chunks" / "chunk-00001.json"
        chunk.write_text(chunk.read_text().replace("reached", "collision"))
        outcome = verify_campaign(target)
        assert not outcome["ok"]
        assert any("digest" in p for p in outcome["problems"])

    def test_missing_chunk_snapshot_fails_verify(self, reference, tmp_path):
        _, directory, _ = reference
        target = tmp_path / "campaign"
        shutil.copytree(directory, target)
        (target / "chunks" / "chunk-00002.json").unlink()
        outcome = verify_campaign(target)
        assert not outcome["ok"]
