"""End-to-end: observation stream through a Gilbert–Elliott lossy channel.

The leader's V2V broadcasts pass through a :class:`~repro.comm.channel.Channel`
with burst loss before reaching the decision server — the serve-side
analogue of the paper's communication-disturbance experiments.  The
closed loop (server action -> ego dynamics) must stay collision-free
for the whole episode, with every reply ladder-safe and the server's
ladder accounting matching the client-side tally exactly.

The channel seed is fixed, so the loss pattern — and therefore every
assertion — is deterministic.
"""

import asyncio
from collections import Counter

from repro.comm.channel import Channel
from repro.comm.faults import GilbertElliottLoss
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleModel
from repro.serve.client import ServeClient
from repro.utils.rng import RngStream

from tests.serve_helpers import (
    LEADER,
    SCENARIO,
    assert_response_safe,
    run_server_test,
)

DT = 0.05
N_STEPS = 200
#: The leader broadcasts every other control step (dt_m = 0.1 s).
SEND_EVERY = 2
MAX_STATE_AGE = 0.4


def _leader_accel(t: float) -> float:
    """The leader cruises, brakes hard from t=2 to t=4, then cruises."""
    return -3.0 if 2.0 <= t < 4.0 else 0.0


def test_lossy_channel_stream_stays_safe(tmp_path):
    async def body(server, path):
        def drive():
            channel = Channel(
                period=DT * SEND_EVERY,
                faults=GilbertElliottLoss(
                    p_enter_burst=0.15, p_exit_burst=0.25
                ),
                rng=RngStream(20260808),
            )
            ego_model = VehicleModel(SCENARIO.ego_limits)
            leader_model = VehicleModel(SCENARIO.leader_limits)
            ego = VehicleState(position=0.0, velocity=20.0)
            leader = VehicleState(position=40.0, velocity=15.0)
            tallies = Counter()
            min_gap = leader.position - ego.position
            delivered = 0
            with ServeClient(path=path) as client:
                for i in range(N_STEPS):
                    t = i * DT
                    if i % SEND_EVERY == 0:
                        channel.send(LEADER, t, leader)
                    reports = [
                        {
                            "vehicle": message.sender,
                            "stamp": message.stamp,
                            "position": message.state.position,
                            "velocity": message.state.velocity,
                            "acceleration": message.state.acceleration,
                        }
                        for message in channel.receive(t)
                    ]
                    delivered += len(reports)
                    response = client.decide(t, ego, reports=reports)
                    assert_response_safe(response)
                    tallies[response["ladder"]] += 1
                    ego = ego_model.step(ego, response["action"], DT)
                    leader = leader_model.step(leader, _leader_accel(t), DT)
                    min_gap = min(min_gap, leader.position - ego.position)
                stats = client.stats()
            return tallies, min_gap, delivered, stats

        tallies, min_gap, delivered, stats = await asyncio.to_thread(drive)
        # Zero collisions — in fact the paper's safe gap is never violated.
        assert min_gap > SCENARIO.p_gap
        # The channel really was lossy, yet some broadcasts got through.
        assert 0 < delivered < N_STEPS // SEND_EVERY
        # Loss bursts outlived the freshness bound at least once, so the
        # ladder genuinely degraded during the stream.
        assert tallies[3] > 0
        assert tallies[1] > 0
        # Accounting: every request got exactly one outcome ...
        assert stats["offered"] == N_STEPS
        assert (
            stats["offered"]
            == stats["served"] + stats["degraded"] + stats["shed"]
        )
        # ... and the server's ladder counters match the client tally.
        assert stats["ladder"] == {
            str(level): tallies.get(level, 0) for level in (1, 2, 3)
        }
        assert stats["verify_replaced"] == 0

    run_server_test(body, tmp_path, max_state_age=MAX_STATE_AGE)
