"""Edge-case tests for the simulation engine and its configuration."""

import pytest

from repro.comm.disturbance import no_disturbance
from repro.errors import ConfigurationError, SimulationError
from repro.planners.constant import ConstantPlanner
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import EstimatorKind, make_estimator_factory
from repro.utils.rng import RngStream


def _comm(dt_m=0.1, dt_s=0.1):
    return CommSetup(
        dt_m=dt_m,
        dt_s=dt_s,
        disturbance=no_disturbance(),
        sensor_bounds=NoiseBounds.uniform_all(1.0),
    )


class TestConfigValidation:
    def test_nonpositive_max_time_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_time=0.0)

    def test_misaligned_periods_rejected(self, scenario):
        with pytest.raises(ConfigurationError):
            SimulationEngine(scenario, _comm(dt_m=0.07))

    def test_comm_perfect_factory(self):
        comm = CommSetup.perfect(dt_m=0.2)
        assert comm.dt_m == comm.dt_s == 0.2
        assert comm.disturbance.drop_probability == 0.0
        assert comm.sensor_bounds.delta_p == 0.0


class TestShortHorizons:
    def test_single_step_horizon(self, scenario):
        """max_time == dt_c: exactly one planned step, then timeout."""
        engine = SimulationEngine(
            scenario, _comm(), SimulationConfig(max_time=0.05)
        )
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        result = engine.run(ConstantPlanner(0.0), factory, RngStream(0))
        assert result.outcome is Outcome.TIMEOUT
        assert result.steps == 1

    def test_sub_step_horizon_runs_nothing(self, scenario):
        """max_time below dt_c plans zero steps: a configuration bug."""
        engine = SimulationEngine(
            scenario, _comm(), SimulationConfig(max_time=0.01)
        )
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        with pytest.raises(SimulationError):
            engine.run(ConstantPlanner(0.0), factory, RngStream(0))


class TestMismatchedRates:
    def test_sensor_slower_than_messages(self, scenario):
        engine = SimulationEngine(
            scenario,
            _comm(dt_m=0.1, dt_s=0.4),
            SimulationConfig(max_time=5.0, record_trajectories=False),
        )
        factory = make_estimator_factory(EstimatorKind.FILTERED, engine)
        result = engine.run(ConstantPlanner(1.0), factory, RngStream(3))
        assert result.steps > 0

    def test_messages_slower_than_sensor(self, scenario):
        engine = SimulationEngine(
            scenario,
            _comm(dt_m=0.8, dt_s=0.1),
            SimulationConfig(max_time=5.0, record_trajectories=False),
        )
        factory = make_estimator_factory(EstimatorKind.FILTERED, engine)
        result = engine.run(ConstantPlanner(1.0), factory, RngStream(3))
        assert result.channel_stats[1].sent < 10  # sparse broadcasting


class TestAccessors:
    def test_engine_exposes_components(self, scenario):
        comm = _comm()
        engine = SimulationEngine(scenario, comm)
        assert engine.scenario is scenario
        assert engine.comm is comm
        assert engine.clock.dt_c == scenario.dt_c
