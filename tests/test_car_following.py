"""Tests for the car-following scenario and its safety model."""

import pytest

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleModel
from repro.errors import ScenarioError
from repro.filtering.fusion import FusedEstimate
from repro.planners.idm import GapChaserPlanner, IDMPlanner
from repro.scenarios.base import Scenario
from repro.scenarios.car_following import (
    CarFollowingSafetyModel,
    CarFollowingScenario,
    following_slack,
)
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import BatchRunner, EstimatorKind
from repro.utils.intervals import Interval
from repro.utils.rng import RngStream


@pytest.fixture(scope="module")
def cf_scenario():
    return CarFollowingScenario()


def _leader_estimate(time, position, velocity):
    return {
        1: FusedEstimate(
            time=time,
            position=Interval.point(position),
            velocity=Interval.point(velocity),
            nominal=VehicleState(position=position, velocity=velocity),
        )
    }


class TestScenario:
    def test_protocol(self, cf_scenario):
        assert isinstance(cf_scenario, Scenario)

    def test_initial_gap(self, cf_scenario):
        state = cf_scenario.initial_state(RngStream(0))
        gap = state.vehicle(1).position - state.ego.position
        assert gap == cf_scenario.initial_gap

    def test_collision_is_gap_violation(self, cf_scenario):
        from repro.dynamics.state import SystemState

        tight = SystemState(
            time=0.0,
            vehicles=(
                VehicleState(position=0.0, velocity=10.0),
                VehicleState(position=4.9, velocity=10.0),
            ),
        )
        assert cf_scenario.is_collision(tight)

    def test_validation(self):
        with pytest.raises(ScenarioError):
            CarFollowingScenario(initial_gap=4.0, p_gap=5.0)
        with pytest.raises(ScenarioError):
            CarFollowingScenario(leader_accel_range=(-20.0, 2.0))


class TestSlack:
    def test_positive_with_ample_gap(self, cf_scenario):
        ego = VehicleState(position=0.0, velocity=15.0)
        s = following_slack(
            ego, 100.0, 15.0, 5.0,
            cf_scenario.ego_limits, cf_scenario.leader_limits,
        )
        assert s > 0.0

    def test_negative_when_tailgating_fast(self, cf_scenario):
        ego = VehicleState(position=0.0, velocity=25.0)
        s = following_slack(
            ego, 8.0, 5.0, 5.0,
            cf_scenario.ego_limits, cf_scenario.leader_limits,
        )
        assert s < 0.0

    def test_slack_certifies_full_brake_episode(self, cf_scenario):
        """Nonnegative slack + full ego braking preserves the gap even
        if the leader full-brakes immediately."""
        ego_model = VehicleModel(cf_scenario.ego_limits)
        leader_model = VehicleModel(cf_scenario.leader_limits)
        ego = VehicleState(position=0.0, velocity=25.0)
        leader = VehicleState(position=60.0, velocity=12.0)
        s0 = following_slack(
            ego, leader.position, leader.velocity, cf_scenario.p_gap,
            cf_scenario.ego_limits, cf_scenario.leader_limits,
        )
        assert s0 >= 0.0
        for _ in range(400):
            ego = ego_model.step(ego, cf_scenario.ego_limits.a_min, 0.05)
            leader = leader_model.step(
                leader, cf_scenario.leader_limits.a_min, 0.05
            )
            assert leader.position - ego.position >= cf_scenario.p_gap - 1e-9


class TestSafetyModel:
    def _model(self, cf_scenario):
        return CarFollowingSafetyModel(
            p_gap=cf_scenario.p_gap,
            ego_limits=cf_scenario.ego_limits,
            leader_limits=cf_scenario.leader_limits,
            dt_c=cf_scenario.dt_c,
        )

    def test_safe_far_behind(self, cf_scenario):
        model = self._model(cf_scenario)
        ego = VehicleState(position=0.0, velocity=15.0)
        estimates = _leader_estimate(0.0, 80.0, 15.0)
        assert not model.in_estimated_unsafe_set(0.0, ego, estimates)
        assert not model.in_boundary_safe_set(0.0, ego, estimates)

    def test_unsafe_when_closing_fast(self, cf_scenario):
        model = self._model(cf_scenario)
        ego = VehicleState(position=0.0, velocity=28.0)
        estimates = _leader_estimate(0.0, 10.0, 5.0)
        assert model.in_estimated_unsafe_set(0.0, ego, estimates)

    def test_boundary_brackets_unsafe(self, cf_scenario):
        model = self._model(cf_scenario)
        ego = VehicleState(position=0.0, velocity=20.0)
        # Find a gap where boundary fires but unsafe does not.
        for gap in range(60, 5, -1):
            estimates = _leader_estimate(0.0, float(gap), 10.0)
            if model.in_boundary_safe_set(0.0, ego, estimates):
                assert not model.in_estimated_unsafe_set(
                    0.0, ego, estimates
                )
                return
        pytest.fail("boundary set never fired")

    def test_missing_estimate_rejected(self, cf_scenario):
        model = self._model(cf_scenario)
        with pytest.raises(ScenarioError):
            model.in_estimated_unsafe_set(
                0.0, VehicleState(position=0.0, velocity=0.0), {}
            )


class TestClosedLoop:
    def _engine(self, cf_scenario):
        return SimulationEngine(
            cf_scenario,
            CommSetup.perfect(dt_m=0.1),
            SimulationConfig(max_time=20.0, record_trajectories=False),
        )

    def test_idm_is_safe(self, cf_scenario):
        runner = BatchRunner(self._engine(cf_scenario), EstimatorKind.RAW)
        results = runner.run_batch(
            IDMPlanner(cf_scenario.ego_limits), 10, seed=0
        )
        assert all(r.is_safe for r in results)

    def test_gap_chaser_violates(self, cf_scenario):
        runner = BatchRunner(self._engine(cf_scenario), EstimatorKind.RAW)
        results = runner.run_batch(
            GapChaserPlanner(cf_scenario.ego_limits), 10, seed=0
        )
        assert any(r.outcome is Outcome.COLLISION for r in results)

    def test_shielded_gap_chaser_is_safe(self, cf_scenario):
        shielded = CompoundPlanner(
            nn_planner=GapChaserPlanner(cf_scenario.ego_limits),
            emergency_planner=cf_scenario.emergency_planner(),
            monitor=RuntimeMonitor(cf_scenario.safety_model()),
            limits=cf_scenario.ego_limits,
        )
        runner = BatchRunner(
            self._engine(cf_scenario), EstimatorKind.FILTERED
        )
        results = runner.run_batch(shielded, 10, seed=0)
        assert all(r.is_safe for r in results)
        assert any(r.emergency_steps > 0 for r in results)
