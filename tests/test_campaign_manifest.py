"""The campaign manifest: validation, chunking, and fingerprinting."""

from __future__ import annotations

import pytest

from repro.campaign.manifest import CampaignManifest
from repro.errors import CampaignError, SerializationError


def _manifest(**overrides):
    fields = dict(
        name="demo",
        scenario={"kind": "left_turn"},
        comm={"sensor_noise": 0.5},
        planner={"kind": "constant", "acceleration": 1.0},
        n_sims=10,
        seed=7,
        chunk_size=4,
    )
    fields.update(overrides)
    return CampaignManifest(**fields)


class TestValidation:
    def test_accepts_well_formed_manifest(self):
        manifest = _manifest()
        assert manifest.estimator == "filtered"
        assert manifest.config == {}

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"n_sims": 0},
            {"n_sims": 2.5},
            {"chunk_size": 0},
            {"seed": "seven"},
            {"estimator": "oracle"},
            {"scenario": ["left_turn"]},
            {"planner": "constant"},
        ],
    )
    def test_rejects_bad_fields(self, overrides):
        with pytest.raises(CampaignError):
            _manifest(**overrides)


class TestChunking:
    def test_chunk_count_rounds_up(self):
        assert _manifest(n_sims=10, chunk_size=4).n_chunks == 3
        assert _manifest(n_sims=8, chunk_size=4).n_chunks == 2
        assert _manifest(n_sims=1, chunk_size=100).n_chunks == 1

    def test_chunks_partition_the_index_space(self):
        manifest = _manifest(n_sims=10, chunk_size=4)
        indices = []
        for chunk in range(manifest.n_chunks):
            indices.extend(manifest.chunk_indices(chunk))
        assert indices == list(range(10))

    def test_last_chunk_is_short(self):
        manifest = _manifest(n_sims=10, chunk_size=4)
        assert manifest.chunk_indices(2) == [8, 9]

    def test_out_of_range_chunk_rejected(self):
        with pytest.raises(CampaignError):
            _manifest().chunk_indices(3)
        with pytest.raises(CampaignError):
            _manifest().chunk_indices(-1)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert _manifest().fingerprint == _manifest().fingerprint

    def test_any_semantic_change_changes_it(self):
        base = _manifest().fingerprint
        assert _manifest(seed=8).fingerprint != base
        assert _manifest(n_sims=11).fingerprint != base
        assert _manifest(chunk_size=5).fingerprint != base
        assert _manifest(comm={"sensor_noise": 0.6}).fingerprint != base
        assert (
            _manifest(
                planner={"kind": "constant", "acceleration": 1.5}
            ).fingerprint
            != base
        )

    def test_key_order_does_not_change_it(self):
        a = _manifest(comm={"sensor_noise": 0.5, "dt_m": 0.1})
        b = _manifest(comm={"dt_m": 0.1, "sensor_noise": 0.5})
        assert a.fingerprint == b.fingerprint

    def test_dict_roundtrip_preserves_fingerprint(self):
        manifest = _manifest()
        assert (
            CampaignManifest.from_dict(manifest.to_dict()).fingerprint
            == manifest.fingerprint
        )

    def test_to_dict_is_a_deep_copy(self):
        manifest = _manifest()
        manifest.to_dict()["comm"]["sensor_noise"] = 99.0
        assert manifest.comm["sensor_noise"] == 0.5


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        manifest = _manifest()
        path = manifest.save(tmp_path / "manifest.json")
        loaded = CampaignManifest.load(path)
        assert loaded == manifest
        assert loaded.fingerprint == manifest.fingerprint

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            CampaignManifest.load(tmp_path / "nope.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="corrupt"):
            CampaignManifest.load(path)

    def test_missing_required_field(self):
        record = _manifest().to_dict()
        del record["planner"]
        with pytest.raises(CampaignError, match="missing required field"):
            CampaignManifest.from_dict(record)
