"""Tests for the closed-loop simulation engine."""

import pytest

from repro.comm.disturbance import messages_delayed
from repro.planners.constant import ConstantPlanner, FullBrakePlanner
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import BatchRunner, EstimatorKind, make_estimator_factory
from repro.errors import SafetyViolationError
from repro.utils.rng import RngStream, spawn_streams


def _engine(scenario, max_time=30.0, **kwargs):
    comm = CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=messages_delayed(0.25, 0.2),
        sensor_bounds=NoiseBounds.uniform_all(1.0),
    )
    return SimulationEngine(
        scenario, comm, SimulationConfig(max_time=max_time, **kwargs)
    )


class TestTerminalClassification:
    def test_full_throttle_reaches_or_collides(self, scenario):
        engine = _engine(scenario)
        factory = make_estimator_factory(
            EstimatorKind.RAW, engine
        )
        result = engine.run(
            ConstantPlanner(4.0), factory, RngStream(3)
        )
        assert result.outcome in (Outcome.REACHED, Outcome.COLLISION)

    def test_full_brake_times_out(self, scenario):
        engine = _engine(scenario, max_time=5.0)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        result = engine.run(FullBrakePlanner(scenario.ego_limits), factory,
                            RngStream(3))
        assert result.outcome is Outcome.TIMEOUT
        assert result.eta == 0.0

    def test_reached_time_positive(self, scenario):
        engine = _engine(scenario)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        result = engine.run(ConstantPlanner(2.0), factory, RngStream(7))
        if result.outcome is Outcome.REACHED:
            assert result.reaching_time > 0.0
            assert result.eta == pytest.approx(1.0 / result.reaching_time)

    def test_strict_safety_raises_on_collision(self, scenario):
        engine = _engine(scenario, strict_safety=True)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        # Full throttle from -30 will reach the area around when the
        # oncoming vehicle does in many seeds; find one that collides.
        for seed in range(20):
            try:
                result = engine.run(
                    ConstantPlanner(4.0), factory, RngStream(seed)
                )
            except SafetyViolationError:
                return
            assert result.outcome is not Outcome.COLLISION
        pytest.skip("no colliding seed found in range")


class TestRecording:
    def test_trajectories_recorded(self, scenario):
        engine = _engine(scenario)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        result = engine.run(ConstantPlanner(2.0), factory, RngStream(1))
        assert len(result.trajectories) == 2
        assert len(result.trajectories[0]) > 10
        # Time-aligned.
        assert result.trajectories[0].start_time == 0.0

    def test_recording_disabled(self, scenario):
        engine = _engine(scenario, record_trajectories=False)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        result = engine.run(ConstantPlanner(2.0), factory, RngStream(1))
        assert result.trajectories == []

    def test_channel_stats_present(self, scenario):
        engine = _engine(scenario)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        result = engine.run(ConstantPlanner(2.0), factory, RngStream(1))
        assert 1 in result.channel_stats
        assert result.channel_stats[1].sent > 0

    def test_steps_counted(self, scenario):
        engine = _engine(scenario, max_time=2.0)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        result = engine.run(FullBrakePlanner(scenario.ego_limits), factory,
                            RngStream(1))
        assert result.steps == 40  # 2.0 s of 0.05 s steps


class TestDeterminism:
    def test_same_stream_same_outcome(self, scenario):
        engine = _engine(scenario)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)

        def run(seed):
            return engine.run(ConstantPlanner(3.0), factory, RngStream(seed))

        a, b = run(5), run(5)
        assert a.outcome == b.outcome
        assert a.reaching_time == b.reaching_time
        assert a.steps == b.steps

    def test_different_streams_vary_workload(self, scenario):
        engine = _engine(scenario)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        starts = set()
        for seed in range(8):
            result = engine.run(
                ConstantPlanner(0.0), factory, RngStream(seed)
            )
            starts.add(round(result.trajectories[1][0].position, 3))
        assert len(starts) > 1

    def test_paired_workloads_across_planners(self, scenario):
        """Same stream -> identical oncoming trajectory, any planner."""
        engine = _engine(scenario)
        factory = make_estimator_factory(EstimatorKind.RAW, engine)
        a = engine.run(ConstantPlanner(0.0), factory, RngStream(9))
        b = engine.run(ConstantPlanner(4.0), factory, RngStream(9))
        ta, tb = a.trajectories[1], b.trajectories[1]
        n = min(len(ta), len(tb))
        for i in range(0, n, 20):
            assert ta[i].position == pytest.approx(tb[i].position)


class TestBatchRunner:
    def test_batch_size(self, scenario):
        engine = _engine(scenario, max_time=5.0, record_trajectories=False)
        runner = BatchRunner(engine, EstimatorKind.RAW)
        results = runner.run_batch(ConstantPlanner(2.0), 5, seed=0)
        assert len(results) == 5

    def test_batch_reproducible(self, scenario):
        engine = _engine(scenario, max_time=5.0, record_trajectories=False)
        runner = BatchRunner(engine, EstimatorKind.RAW)
        a = runner.run_batch(ConstantPlanner(2.0), 4, seed=1)
        b = runner.run_batch(ConstantPlanner(2.0), 4, seed=1)
        assert [r.outcome for r in a] == [r.outcome for r in b]

    def test_invalid_batch_size(self, scenario):
        engine = _engine(scenario)
        runner = BatchRunner(engine, EstimatorKind.RAW)
        with pytest.raises(ValueError):
            runner.run_batch(ConstantPlanner(0.0), 0)

    def test_progress_callback(self, scenario):
        engine = _engine(scenario, max_time=3.0, record_trajectories=False)
        runner = BatchRunner(engine, EstimatorKind.RAW)
        seen = []
        runner.run_batch(
            ConstantPlanner(2.0), 3, seed=0,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_run_one(self, scenario):
        engine = _engine(scenario, max_time=5.0)
        runner = BatchRunner(engine, EstimatorKind.FILTERED)
        result = runner.run_one(ConstantPlanner(2.0), seed=4)
        assert result.steps > 0
