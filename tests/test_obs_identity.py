"""The load-bearing observability invariant: tracing never perturbs a run.

Every scenario × fault setting is executed twice — once untraced (the
``NullObserver`` default) and once with a full :class:`Observer` wired
through the engine, compound planner, information filters, and channels
— and the two :class:`SimulationResult`\\ s must serialise to identical
bytes, trajectories included.  Any divergence (an extra RNG draw, a
timing value leaking into control flow) fails here before it can
invalidate a certificate.
"""

import pytest

from repro.comm.disturbance import no_disturbance
from repro.comm.faults import (
    Duplication,
    IndependentLoss,
    UniformJitter,
    compose,
)
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.obs.observer import Observer
from repro.planners.constant import FullThrottlePlanner
from repro.scenarios.car_following import CarFollowingScenario
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.scenarios.signalized import SignalizedCrossingScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.runner import EstimatorKind, make_estimator_factory
from repro.sim.serialization import canonical_dumps, result_to_dict
from repro.utils.rng import RngStream

#: The chaos-grid composition: every fault stage the channel supports.
STORM = compose(
    IndependentLoss(0.2),
    UniformJitter(0.0, 0.25),
    Duplication(0.2, lag=0.05),
)

SCENARIOS = {
    "left_turn": LeftTurnScenario,
    "car_following": CarFollowingScenario,
    "signalized": SignalizedCrossingScenario,
}

FAULTS = {"no_faults": None, "chaos_grid": STORM}


def _run(scenario_name, faults, seed, observer=None):
    scenario = SCENARIOS[scenario_name]()
    comm = CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=no_disturbance(),
        sensor_bounds=NoiseBounds.uniform_all(0.5),
        faults=faults,
    )
    engine = SimulationEngine(
        scenario, comm, SimulationConfig(max_time=8.0)
    )
    planner = CompoundPlanner(
        nn_planner=FullThrottlePlanner(scenario.ego_limits),
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
        observer=observer,
    )
    factory = make_estimator_factory(
        EstimatorKind.FILTERED, engine, observer=observer
    )
    return engine.run(planner, factory, RngStream(seed), observer=observer)


def _bytes(result):
    return canonical_dumps(
        result_to_dict(result, include_trajectories=True)
    ).encode("utf-8")


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
@pytest.mark.parametrize("faults_name", sorted(FAULTS))
@pytest.mark.parametrize("seed", [1, 7])
def test_traced_run_is_bit_identical(scenario_name, faults_name, seed):
    untraced = _run(scenario_name, FAULTS[faults_name], seed)
    observer = Observer()
    traced = _run(
        scenario_name, FAULTS[faults_name], seed, observer=observer
    )
    # The comparison only means something if tracing actually happened.
    assert observer.tracer.events, "traced run recorded no events"
    assert _bytes(traced) == _bytes(untraced)


def test_traced_rerun_is_self_identical():
    first = _run("left_turn", STORM, 3, observer=Observer())
    second = _run("left_turn", STORM, 3, observer=Observer())
    assert _bytes(first) == _bytes(second)
