"""The degradation ladder's rungs and its post-hoc safety verifier."""

import math
from dataclasses import replace

import pytest

from repro.dynamics.state import VehicleState
from repro.errors import FatalPlannerFaultError
from repro.faults.plan import (
    PlannerFault,
    PlannerFaultKind,
    PlannerFaultSeverity,
    StepWindow,
)
from repro.faults.planner_wrapper import FaultyPlanner
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.planners.idm import IDMPlanner
from repro.serve.ladder import (
    CAUSE_DEADLINE,
    CAUSE_MONITOR,
    CAUSE_NN,
    CAUSE_NO_STATE,
    LadderDecision,
    LadderLevel,
)
from repro.serve.session import DecisionSession, Observation, RemoteReport

from tests.serve_helpers import LEADER, SCENARIO, ladder_factory

LIMITS = SCENARIO.ego_limits


def _context(ego_position=0.0, ego_velocity=20.0, gap=40.0):
    session = DecisionSession(
        {LEADER: ReachabilityAnalyzer(SCENARIO.leader_limits)},
        max_state_age=1.0,
    )
    ego = VehicleState(position=ego_position, velocity=ego_velocity)
    obs = Observation(
        time=1.0,
        ego=ego,
        reports=(
            RemoteReport(
                LEADER,
                stamp=1.0,
                position=ego_position + gap,
                velocity=15.0,
            ),
        ),
    )
    session.ingest(obs)
    context = session.context_for(obs)
    assert context is not None
    return context


class TestRungs:
    def test_full_attempt_interior_state_is_nn(self):
        policy = ladder_factory()()
        decision, error = policy.full_attempt(_context(gap=60.0))
        assert error is None
        assert decision.level is LadderLevel.FULL
        assert decision.cause == CAUSE_NN
        assert decision.monitor_engaged is False
        assert LIMITS.a_min <= decision.action <= LIMITS.a_max

    def test_full_attempt_flagged_state_engages_monitor(self):
        policy = ladder_factory()()
        decision, error = policy.full_attempt(_context(gap=7.0))
        assert error is None
        assert decision.cause == CAUSE_MONITOR
        assert decision.monitor_engaged is True
        assert decision.action == pytest.approx(LIMITS.a_min)

    def test_full_attempt_contains_planner_unit_crash(self):
        def crashing(compound):
            return FaultyPlanner(
                compound,
                faults=(
                    PlannerFault(
                        window=StepWindow(0, 1000),
                        kind=PlannerFaultKind.EXCEPTION,
                        severity=PlannerFaultSeverity.FATAL,
                    ),
                ),
            )

        policy = ladder_factory(wrap=crashing)()
        decision, error = policy.full_attempt(_context(gap=60.0))
        assert decision is None
        assert isinstance(error, FatalPlannerFaultError)

    def test_embedded_fault_absorbed_by_shield(self):
        # Faults *inside* the compound are the paper's Theorem 1 case:
        # the shield falls back to the emergency command and the ladder
        # still sees a clean level-1 answer.
        def exploding():
            return FaultyPlanner(
                IDMPlanner(SCENARIO.ego_limits, leader_index=LEADER),
                faults=(
                    PlannerFault(
                        window=StepWindow(0, 1000),
                        kind=PlannerFaultKind.EXCEPTION,
                        severity=PlannerFaultSeverity.FATAL,
                    ),
                ),
            )

        policy = ladder_factory(embedded_factory=exploding)()
        decision, error = policy.full_attempt(_context(gap=60.0))
        assert error is None
        assert decision.level is LadderLevel.FULL
        assert decision.action == pytest.approx(LIMITS.a_min)

    def test_shield_decision_is_emergency_command(self):
        policy = ladder_factory()()
        decision = policy.shield_decision(
            _context(gap=60.0), CAUSE_DEADLINE, retries=1
        )
        assert decision.level is LadderLevel.SHIELD
        assert decision.cause == CAUSE_DEADLINE
        assert decision.retries == 1
        assert decision.action == pytest.approx(LIMITS.a_min)

    def test_brake_decision_attaches_stop_position(self):
        policy = ladder_factory()()
        ego = VehicleState(position=10.0, velocity=18.0)
        decision = policy.brake_decision(ego, CAUSE_NO_STATE)
        assert decision.level is LadderLevel.BRAKE
        assert decision.action == pytest.approx(LIMITS.a_min)
        expected = 10.0 + 18.0**2 / (2.0 * -LIMITS.a_min)
        assert decision.stop_position == pytest.approx(expected)

    def test_brake_decision_without_ego_has_no_stop_position(self):
        policy = ladder_factory()()
        decision = policy.brake_decision(None, CAUSE_NO_STATE)
        assert decision.stop_position is None

    def test_stop_position_at_rest_is_current_position(self):
        policy = ladder_factory()()
        ego = VehicleState(position=5.0, velocity=0.0)
        assert policy.stop_position(ego) == pytest.approx(5.0)


class TestVerify:
    def _decision(self, **overrides):
        base = dict(
            level=LadderLevel.FULL,
            action=1.0,
            cause=CAUSE_NN,
            monitor_engaged=False,
        )
        base.update(overrides)
        return LadderDecision(**base)

    def test_interior_nn_action_passes_unchanged(self):
        policy = ladder_factory()()
        decision = self._decision()
        verified = policy.verify(decision, _context(gap=60.0))
        assert verified is decision
        assert not verified.verify_replaced

    @pytest.mark.parametrize("action", [math.nan, math.inf, 99.0, -99.0])
    def test_out_of_envelope_action_replaced(self, action):
        policy = ladder_factory()()
        verified = policy.verify(
            self._decision(action=action), _context(gap=60.0)
        )
        assert verified.verify_replaced
        assert verified.action == pytest.approx(LIMITS.a_min)

    def test_flagged_state_requires_emergency_command(self):
        policy = ladder_factory()()
        # A level-1 decision claiming a cruise command in a state the
        # safety model flags must be replaced by the emergency action.
        verified = policy.verify(
            self._decision(action=1.0), _context(gap=7.0)
        )
        assert verified.verify_replaced
        assert verified.action == pytest.approx(LIMITS.a_min)

    def test_shield_level_must_match_emergency(self):
        policy = ladder_factory()()
        bad = self._decision(
            level=LadderLevel.SHIELD, action=0.5, cause=CAUSE_DEADLINE
        )
        verified = policy.verify(bad, _context(gap=60.0))
        assert verified.verify_replaced
        assert verified.action == pytest.approx(LIMITS.a_min)

    def test_brake_level_must_be_full_brake(self):
        policy = ladder_factory()()
        bad = self._decision(
            level=LadderLevel.BRAKE, action=-1.0, cause=CAUSE_NO_STATE
        )
        verified = policy.verify(bad, None)
        assert verified.verify_replaced
        assert verified.action == pytest.approx(LIMITS.a_min)

    def test_full_level_without_context_degrades(self):
        policy = ladder_factory()()
        verified = policy.verify(self._decision(action=1.0), None)
        assert verified.verify_replaced
        assert verified.action == pytest.approx(LIMITS.a_min)

    def test_replacement_preserves_metadata(self):
        policy = ladder_factory()()
        bad = self._decision(action=99.0, retries=2)
        verified = policy.verify(bad, _context(gap=60.0))
        assert verified.retries == 2
        assert verified.cause == bad.cause
        assert replace(verified, action=bad.action, verify_replaced=False) == bad
