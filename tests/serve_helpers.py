"""Shared harness for the serve test-suite (not a test module).

Builds the standard car-following serve stack — compound planner with
an optional chaos-wrapped embedded planner, reachability session —
and runs a :class:`~repro.serve.server.DecisionServer` on a unix
socket for the duration of one test coroutine.  The chaos and channel
tests drive it with the blocking :class:`~repro.serve.client.ServeClient`
from worker threads, which is exactly how a real (non-asyncio) vehicle
process would.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.planners.base import Planner
from repro.planners.idm import IDMPlanner
from repro.scenarios.car_following import CarFollowingScenario
from repro.serve.ladder import LadderPolicy
from repro.serve.server import DecisionServer, ServeConfig
from repro.serve.session import DecisionSession

#: Leader vehicle index in the car-following scenario.
LEADER = 1

SCENARIO = CarFollowingScenario()


def ladder_factory(
    embedded_factory: Optional[Callable[[], Planner]] = None,
    wrap: Optional[Callable[[Planner], Planner]] = None,
    scenario: CarFollowingScenario = SCENARIO,
) -> Callable[[], LadderPolicy]:
    """A factory of fresh ladders over the car-following scenario.

    ``embedded_factory`` swaps the planner *inside* the shield (whose
    faults the compound absorbs by design); ``wrap`` decorates the
    compound as a whole — the place to inject the crashes and hangs
    that must reach the ladder's level-2 machinery.
    """

    def build() -> LadderPolicy:
        embedded = (
            embedded_factory()
            if embedded_factory is not None
            else IDMPlanner(scenario.ego_limits, leader_index=LEADER)
        )
        compound = CompoundPlanner(
            nn_planner=embedded,
            emergency_planner=scenario.emergency_planner(),
            monitor=RuntimeMonitor(scenario.safety_model()),
            limits=scenario.ego_limits,
        )
        planner = compound if wrap is None else wrap(compound)
        return LadderPolicy(compound, scenario.ego_limits, planner=planner)

    return build


def session_factory(
    max_state_age: float = 1.0,
    scenario: CarFollowingScenario = SCENARIO,
) -> Callable[[], DecisionSession]:
    """A factory of fresh leader-tracking sessions."""

    def build() -> DecisionSession:
        return DecisionSession(
            {LEADER: ReachabilityAnalyzer(scenario.leader_limits)},
            max_state_age=max_state_age,
        )

    return build


def run_server_test(
    test_body: Callable[[DecisionServer, str], "asyncio.Future"],
    tmp_path,
    config: Optional[ServeConfig] = None,
    embedded_factory: Optional[Callable[[], Planner]] = None,
    wrap: Optional[Callable[[Planner], Planner]] = None,
    max_state_age: float = 1.0,
) -> None:
    """Start a server on a unix socket, run ``test_body``, drain.

    ``test_body`` is an async callable receiving ``(server, path)``.
    """
    path = str(tmp_path / "serve.sock")

    async def scenario() -> None:
        server = DecisionServer(
            ladder_factory(embedded_factory, wrap=wrap),
            session_factory(max_state_age),
            config=config,
        )
        await server.start(path=path)
        try:
            await test_body(server, path)
        finally:
            await server.drain()

    asyncio.run(scenario())


def leader_report(stamp: float, position: float, velocity: float) -> dict:
    """A leader V2V report payload."""
    return {
        "vehicle": LEADER,
        "stamp": stamp,
        "position": position,
        "velocity": velocity,
        "acceleration": 0.0,
    }


def assert_response_safe(response: dict, scenario=SCENARIO) -> None:
    """The chaos invariant: one reply, any ladder level, must be safe.

    * the action is finite and within the ego's actuation limits;
    * ladder 2 and 3 answers must be the full-brake command (the
      car-following emergency planner *is* full brake);
    * the reply is flagged safe and was not a verifier save
      (``verify_replaced`` firing would mean a rung computed an unsafe
      action and only the belt-and-braces check caught it).
    """
    limits = scenario.ego_limits
    action = response["action"]
    assert response["safe"] is True, response
    assert limits.a_min - 1e-9 <= action <= limits.a_max + 1e-9, response
    if response["ladder"] >= 2:
        assert abs(action - limits.a_min) <= 1e-9, response
    assert response.get("verify_replaced", False) is False, response
