"""SIGINT/SIGTERM drain during an in-flight chunk, through the real CLI.

Satellite contract: the signal lands while a chunk is executing, the
runner drains (finishes the in-flight chunk), journals an
``interrupted`` record, the CLI exits with the interrupted code (3),
and a subsequent resume produces aggregate bytes identical to an
uninterrupted reference run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.journal import read_journal
from repro.campaign.runner import AGGREGATE_FILE, JOURNAL_FILE

REPO_ROOT = Path(__file__).resolve().parent.parent
CLI = [sys.executable, "-m", "repro.campaign"]

EXIT_OK = 0
EXIT_INTERRUPTED = 3

#: Generous ceiling for the first journaled chunk on a loaded machine.
FIRST_CHUNK_TIMEOUT = 120.0


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _write_manifest(path: Path, n_sims: int = 16) -> None:
    manifest = {
        "schema_version": "1.0",
        "name": "signal-drain",
        "scenario": {"kind": "left_turn"},
        "comm": {"sensor_noise": 0.3},
        "planner": {"kind": "constant", "acceleration": 2.0},
        "config": {"max_time": 8.0},
        "estimator": "filtered",
        "n_sims": n_sims,
        "seed": 11,
        "chunk_size": 2,
    }
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))


def _run_cli(*args, expect=EXIT_OK):
    proc = subprocess.run(
        CLI + list(args), env=_env(), capture_output=True, text=True,
        check=False,
    )
    assert proc.returncode == expect, (
        f"exit {proc.returncode} != {expect}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    return proc


def _signal_after_first_chunk(manifest_path, directory, signum):
    """Start a run; deliver ``signum`` once one chunk is journaled."""
    victim = subprocess.Popen(
        CLI + ["run", "--manifest", str(manifest_path), "--dir", str(directory)],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    journal = directory / JOURNAL_FILE
    deadline = time.monotonic() + FIRST_CHUNK_TIMEOUT
    try:
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                pytest.fail("victim finished before the signal landed")
            if (
                journal.exists()
                and b'"type":"chunk_completed"' in journal.read_bytes()
            ):
                victim.send_signal(signum)
                break
            time.sleep(0.002)
        else:
            pytest.fail("victim never journaled a chunk_completed record")
        return victim.wait(timeout=60), victim.stdout.read()
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30)


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_journals_interrupted_and_resumes_bit_identical(
    tmp_path, signum
):
    manifest_path = tmp_path / "manifest.json"
    _write_manifest(manifest_path)

    reference = tmp_path / "reference"
    _run_cli("run", "--manifest", str(manifest_path), "--dir", str(reference))

    interrupted = tmp_path / "interrupted"
    returncode, stdout = _signal_after_first_chunk(
        manifest_path, interrupted, signum
    )
    assert returncode == EXIT_INTERRUPTED
    assert "interrupted" in stdout

    # The drain is durable: the journal's last record says interrupted,
    # and every record before it is intact (no torn tail).
    records, torn = read_journal(interrupted / JOURNAL_FILE)
    assert not torn
    assert records[-1]["type"] == "interrupted"
    completed = [r for r in records if r["type"] == "chunk_completed"]
    assert 1 <= len(completed) < 8  # in-flight chunk drained, rest pending
    assert not (interrupted / AGGREGATE_FILE).exists()

    _run_cli("resume", "--dir", str(interrupted))
    assert (
        (interrupted / AGGREGATE_FILE).read_bytes()
        == (reference / AGGREGATE_FILE).read_bytes()
    )
