"""Tests for the ``python -m repro`` dispatcher."""

import pytest

from repro.__main__ import main


class TestDispatcher:
    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "sensitivity" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "commands:" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["teleport"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_commands_registered(self):
        from repro.__main__ import _COMMANDS

        assert set(_COMMANDS) == {
            "table1",
            "table2",
            "figure5",
            "figure6",
            "ablation",
            "sensitivity",
        }

    def test_dispatch_invokes_harness(self, capsys, monkeypatch):
        import repro.__main__ as cli

        seen = {}

        def fake_main(argv):
            seen["argv"] = argv
            return "ok"

        monkeypatch.setitem(cli._COMMANDS, "table1", fake_main)
        assert cli.main(["table1", "--sims", "5"]) == 0
        assert seen["argv"] == ["--sims", "5"]

    def test_all_runs_every_harness(self, monkeypatch):
        import repro.__main__ as cli

        calls = []
        for name in list(cli._COMMANDS):
            monkeypatch.setitem(
                cli._COMMANDS, name,
                lambda argv, _n=name: calls.append(_n),
            )
        assert cli.main(["all"]) == 0
        assert calls == ["table1", "table2", "figure5", "figure6", "ablation"]
