"""Tests for the Kalman filter (Section III-B equations)."""

import numpy as np
import pytest

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.errors import FilterError
from repro.filtering.kalman import KalmanFilter, KalmanState
from repro.sensing.noise import NoiseBounds, UniformNoise
from repro.utils.rng import RngStream

DT = 0.1
BOUNDS = NoiseBounds.uniform_all(1.0)


def _filter() -> KalmanFilter:
    return KalmanFilter(DT, BOUNDS)


class TestPaperMatrices:
    """The printed F, G, Q, R of Section III-B."""

    def test_f(self):
        assert np.allclose(_filter().f_matrix, [[1.0, DT], [0.0, 1.0]])

    def test_g(self):
        assert np.allclose(_filter().g_matrix, [[0.5 * DT * DT], [DT]])

    def test_q_scaled_by_uniform_accel_variance(self):
        expected = (
            np.array(
                [
                    [0.25 * DT**4, 0.5 * DT**3],
                    [0.5 * DT**3, DT**2],
                ]
            )
            * (1.0 / 3.0)
        )
        assert np.allclose(_filter().q_matrix, expected)

    def test_r_diagonal_of_uniform_variances(self):
        assert np.allclose(_filter().r_matrix, np.diag([1 / 3, 1 / 3]))

    def test_matrix_accessors_return_copies(self):
        kf = _filter()
        kf.f_matrix[0, 0] = 99.0
        assert kf.f_matrix[0, 0] == 1.0


class TestKalmanState:
    def test_accessors(self):
        s = KalmanState(
            time=1.0, x_hat=[[2.0], [3.0]], covariance=[[4.0, 0.0], [0.0, 9.0]]
        )
        assert s.position == 2.0
        assert s.velocity == 3.0
        assert s.position_std == 2.0
        assert s.velocity_std == 3.0

    def test_bands(self):
        s = KalmanState(
            time=0.0, x_hat=[[0.0], [0.0]], covariance=np.eye(2)
        )
        band = s.position_band(2.0)
        assert band.lo == -2.0 and band.hi == 2.0

    def test_nonfinite_rejected(self):
        with pytest.raises(FilterError):
            KalmanState(
                time=0.0,
                x_hat=[[np.nan], [0.0]],
                covariance=np.eye(2),
            )

    def test_arrays_copied(self):
        x = np.array([[1.0], [2.0]])
        s = KalmanState(time=0.0, x_hat=x, covariance=np.eye(2))
        x[0, 0] = 50.0
        assert s.position == 1.0

    def test_as_vehicle_state(self):
        s = KalmanState(time=0.0, x_hat=[[1.0], [2.0]], covariance=np.eye(2))
        v = s.as_vehicle_state(acceleration=0.7)
        assert isinstance(v, VehicleState)
        assert v.acceleration == 0.7


class TestPredictUpdate:
    def test_predict_mean(self):
        kf = _filter()
        s = KalmanState(time=0.0, x_hat=[[0.0], [10.0]], covariance=np.eye(2))
        pred = kf.predict(s, accel_measured=2.0)
        assert pred.time == pytest.approx(DT)
        assert pred.position == pytest.approx(10.0 * DT + 0.5 * 2.0 * DT * DT)
        assert pred.velocity == pytest.approx(10.0 + 2.0 * DT)

    def test_predict_grows_covariance(self):
        kf = _filter()
        s = KalmanState(time=0.0, x_hat=[[0.0], [0.0]], covariance=np.eye(2))
        pred = kf.predict(s, 0.0)
        assert np.trace(pred.covariance) > np.trace(s.covariance)

    def test_update_moves_toward_measurement(self):
        kf = _filter()
        pred = KalmanState(
            time=0.0, x_hat=[[0.0], [0.0]], covariance=np.eye(2) * 100.0
        )
        post = kf.update(pred, position_measured=5.0, velocity_measured=-2.0)
        # Huge prior variance: the posterior should sit near the
        # measurement.
        assert post.position == pytest.approx(5.0, abs=0.05)
        assert post.velocity == pytest.approx(-2.0, abs=0.05)

    def test_update_shrinks_covariance(self):
        kf = _filter()
        pred = KalmanState(
            time=0.0, x_hat=[[0.0], [0.0]], covariance=np.eye(2)
        )
        post = kf.update(pred, 0.5, 0.5)
        assert np.trace(post.covariance) < np.trace(pred.covariance)

    def test_update_covariance_symmetric_psd(self):
        kf = _filter()
        state = KalmanState(
            time=0.0, x_hat=[[0.0], [0.0]], covariance=np.eye(2)
        )
        for i in range(50):
            state = kf.predict(state, 0.1)
            state = kf.update(state, 0.1 * i, 0.05 * i)
        p = state.covariance
        assert np.allclose(p, p.T)
        assert np.all(np.linalg.eigvalsh(p) >= -1e-12)

    def test_noiseless_update_pins_to_measurement(self):
        # R = 0 means exact measurements: the posterior is the
        # measurement with zero covariance (no singular inversion).
        kf = KalmanFilter(DT, NoiseBounds.noiseless())
        pred = KalmanState(
            time=0.0, x_hat=[[0.0], [0.0]], covariance=np.zeros((2, 2))
        )
        post = kf.update(pred, 1.0, -2.0)
        assert post.position == 1.0
        assert post.velocity == -2.0
        assert np.allclose(post.covariance, 0.0)


class TestExtrapolate:
    def test_zero_horizon_identity(self):
        kf = _filter()
        s = KalmanState(time=1.0, x_hat=[[1.0], [2.0]], covariance=np.eye(2))
        assert kf.extrapolate(s, 0.0, 0.0) is s

    def test_matches_predict_at_native_step(self):
        kf = _filter()
        s = KalmanState(time=0.0, x_hat=[[1.0], [2.0]], covariance=np.eye(2))
        a = 1.5
        via_predict = kf.predict(s, a)
        via_extrapolate = kf.extrapolate(s, a, DT)
        assert np.allclose(via_predict.x_hat, via_extrapolate.x_hat)
        assert np.allclose(via_predict.covariance, via_extrapolate.covariance)

    def test_negative_horizon_rejected(self):
        kf = _filter()
        s = KalmanState(time=0.0, x_hat=[[0.0], [0.0]], covariance=np.eye(2))
        with pytest.raises(FilterError):
            kf.extrapolate(s, 0.0, -0.1)


class TestConvergence:
    def test_tracks_constant_velocity_target(self):
        """RMSE after filtering must beat the raw measurement RMSE."""
        kf = _filter()
        rng = RngStream(42)
        noise = UniformNoise(BOUNDS, rng)
        model = VehicleModel(
            VehicleLimits(v_min=-50.0, v_max=50.0, a_min=-5.0, a_max=5.0)
        )
        true = VehicleState(position=0.0, velocity=8.0)
        state = KalmanFilter.initial_state(0.0, 0.0, 8.0, 1.0, 1.0)
        raw_err = []
        filt_err = []
        for i in range(1, 200):
            true = model.step(true, 0.0, DT)
            z_p = noise.perturb_position(true.position)
            z_v = noise.perturb_velocity(true.velocity)
            pred = kf.predict(state, 0.0)
            state = kf.update(pred, z_p, z_v)
            raw_err.append((z_p - true.position) ** 2)
            filt_err.append((state.position - true.position) ** 2)
        assert np.mean(filt_err) < 0.25 * np.mean(raw_err)

    def test_exact_state(self):
        kf = _filter()
        s = kf.exact_state(2.0, 10.0, -3.0)
        assert s.position == 10.0
        assert s.velocity == -3.0
        assert np.allclose(s.covariance, 0.0)
