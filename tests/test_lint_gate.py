"""The local lint gate: ``src/`` must be safelint-clean.

This mirrors the CI step ``python -m repro.lint src`` so a violation
fails the ordinary test run too, not just CI.  Policy (docs/LINTING.md):
fix real findings; suppress true false-positives inline with a
justification; the baseline stays empty unless a large adoption wave
needs grandfathering.
"""

from pathlib import Path

from repro.lint import (
    Baseline,
    LintConfig,
    lint_paths,
    load_baseline,
    load_project_config,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
PYPROJECT = REPO_ROOT / "pyproject.toml"


def _gate_result():
    config = (
        load_project_config(PYPROJECT) if PYPROJECT.is_file() else LintConfig()
    )
    baseline = (
        load_baseline(config.baseline)
        if config.baseline is not None
        else Baseline()
    )
    return lint_paths([SRC], config, baseline=baseline)


def test_src_tree_is_lint_clean():
    result = _gate_result()
    assert result.files_checked > 50, "gate ran over too few files"
    assert result.ok, "safelint findings in src/:\n" + "\n".join(
        f.format_text() for f in result.findings
    )


def test_shape_pass_is_clean_with_zero_suppressions():
    # The safeshape acceptance bar is stricter than the general gate:
    # the SFL200-series must hold on src/ without inline suppressions
    # or baseline entries — a suppressed shape finding is a blind spot
    # exactly where the vectorized-batch migration needs certainty.
    from dataclasses import replace

    config = (
        load_project_config(PYPROJECT) if PYPROJECT.is_file() else LintConfig()
    )
    config = replace(config, select=frozenset({"SFL2"}), baseline=None)
    result = lint_paths([SRC], config)
    assert result.findings == [], "shape findings in src/:\n" + "\n".join(
        f.format_text() for f in result.findings
    )
    assert result.suppressed == 0, "shape findings must not be suppressed"
    assert result.baselined == 0, "shape findings must not be baselined"


def test_gate_exercises_every_rule_scope():
    # A gate that silently skipped scoped rules would pass vacuously;
    # assert the scoped packages exist so every rule really ran.
    config = (
        load_project_config(PYPROJECT) if PYPROJECT.is_file() else LintConfig()
    )
    scopes = ("critical", "sim", "math", "planner", "units", "dim", "shape")
    for scope in scopes:
        for prefix in config.packages_for(scope):
            package_dir = SRC / Path(*prefix.split("."))
            assert package_dir.is_dir(), (
                f"scope {scope!r} names missing package {prefix}"
            )
