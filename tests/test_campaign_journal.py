"""The write-ahead journal: checksums, torn tails, corruption."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign.journal import JournalWriter, read_journal, recover_journal
from repro.campaign.runner import replay_progress
from repro.errors import JournalCorruptionError, SerializationError
from repro.sim.serialization import SCHEMA_VERSION


def _write(path, n=3):
    with JournalWriter(path) as journal:
        for i in range(n):
            journal.append("chunk_completed", chunk=i, digest=f"d{i}")
    return path


class TestAppendAndRead:
    def test_roundtrip(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=3)
        records, torn = read_journal(path)
        assert not torn
        assert [r["chunk"] for r in records] == [0, 1, 2]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert all(r["schema_version"] == SCHEMA_VERSION for r in records)

    def test_missing_file_is_empty(self, tmp_path):
        records, torn = read_journal(tmp_path / "absent.jsonl")
        assert records == [] and not torn

    def test_append_continues_sequence(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=2)
        records = recover_journal(path)
        with JournalWriter(path, next_seq=len(records)) as journal:
            journal.append("interrupted")
        records, torn = read_journal(path)
        assert not torn
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[-1]["type"] == "interrupted"

    def test_records_are_single_canonical_lines(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=2)
        lines = path.read_bytes().splitlines()
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)
            assert "checksum" in parsed


class TestTornTail:
    """A crash mid-append damages only the final record."""

    @pytest.mark.parametrize("cut", [1, 5, 17, 40])
    def test_mid_record_truncation_recovers(self, tmp_path, cut):
        path = _write(tmp_path / "j.jsonl", n=3)
        data = path.read_bytes()
        lines = data.splitlines(keepends=True)
        torn_bytes = b"".join(lines[:2]) + lines[2][: min(cut, len(lines[2]) - 1)]
        path.write_bytes(torn_bytes)
        records, torn = read_journal(path)
        assert torn
        assert len(records) == 2
        recovered = recover_journal(path)
        assert len(recovered) == 2
        # after recovery the file is clean and appendable
        records, torn = read_journal(path)
        assert not torn

    def test_truncation_at_record_boundary_is_clean(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=3)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:2]))
        records, torn = read_journal(path)
        assert not torn
        assert len(records) == 2

    def test_bitflip_in_final_record_is_torn(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=2)
        data = bytearray(path.read_bytes())
        # flip a byte inside the final record's digest field
        data[-10] ^= 0x01
        path.write_bytes(bytes(data))
        records, torn = read_journal(path)
        assert torn
        assert len(records) == 1

    def test_recover_is_idempotent(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=2)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        first = recover_journal(path)
        second = recover_journal(path)
        assert first == second
        assert len(first) == 1


class TestCorruption:
    """Damage before the tail is storage corruption, not a torn write."""

    def test_bitflip_in_middle_record_raises(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=3)
        lines = path.read_bytes().splitlines(keepends=True)
        middle = bytearray(lines[1])
        middle[10] ^= 0x01
        path.write_bytes(lines[0] + bytes(middle) + lines[2])
        with pytest.raises(JournalCorruptionError, match="corrupt"):
            read_journal(path)

    def test_missing_record_raises(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=3)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + lines[2])  # record 1 vanished
        with pytest.raises(JournalCorruptionError, match="sequence"):
            read_journal(path)

    def test_blank_line_between_records_raises(self, tmp_path):
        path = _write(tmp_path / "j.jsonl", n=2)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b"\n" + lines[1])
        with pytest.raises(JournalCorruptionError):
            read_journal(path)

    def test_wrong_schema_major_raises_serialization_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as journal:
            record = journal.append("chunk_completed", chunk=0, digest="d")
        # rewrite the record claiming a future major version with a
        # valid checksum for its content
        from repro.campaign.journal import _record_checksum
        from repro.sim.serialization import canonical_dumps

        record = dict(record)
        record["schema_version"] = "2.0"
        record.pop("checksum")
        record["checksum"] = _record_checksum(record)
        path.write_text(canonical_dumps(record) + "\n")
        with pytest.raises(SerializationError, match="major"):
            read_journal(path)


FP = "feedface0123abcd" * 4


class TestDuplicateReplayFuzz:
    """Sharded journals may legally repeat ``chunk_completed`` records.

    Speculative re-dispatch means two workers can race the same chunk
    to completion; both completions are journaled.  Replay must stay
    idempotent over any interleaving of duplicates, coordinator noise,
    and failure records — and must refuse conflicting digests.
    """

    NOISE = (
        ("lease_claimed", {"worker": "w0", "chunk": 0, "attempt": 1}),
        ("lease_heartbeat", {"worker": "w1", "chunk": 2, "done": 1}),
        ("lease_expired", {"worker": "w0", "chunk": 1, "reason": "ttl"}),
        ("chunk_failed", {"worker": "w1", "chunk": 3, "attempt": 1}),
        ("worker_spawned", {"worker": "w2", "pid": 12345}),
        ("worker_exited", {"worker": "w2", "returncode": -9}),
    )

    def _fuzz_records(self, rng, n_chunks):
        records = [("campaign_started", {"fingerprint": FP, "n_chunks": n_chunks})]
        pool = []
        for chunk in range(n_chunks):
            payload = {"fingerprint": FP, "chunk": chunk, "digest": f"d{chunk}"}
            for _ in range(int(rng.integers(1, 4))):  # 1-3 copies of each
                pool.append(("chunk_completed", dict(payload)))
        for _ in range(int(rng.integers(2, 9))):
            record_type, payload = self.NOISE[int(rng.integers(len(self.NOISE)))]
            pool.append((record_type, dict(payload, fingerprint=FP)))
        order = rng.permutation(len(pool))
        records.extend(pool[i] for i in order)
        return records

    @pytest.mark.parametrize("seed", range(12))
    def test_duplicated_interleaved_records_replay_idempotently(
        self, tmp_path, seed
    ):
        rng = np.random.default_rng(seed)
        n_chunks = int(rng.integers(1, 7))
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as journal:
            for record_type, payload in self._fuzz_records(rng, n_chunks):
                journal.append(record_type, **payload)
        progress = replay_progress(recover_journal(path), FP)
        assert progress.completed == {
            chunk: f"d{chunk}" for chunk in range(n_chunks)
        }
        assert not progress.finished

    @pytest.mark.parametrize("seed", range(6))
    def test_torn_tail_then_replay_is_consistent_prefix(self, tmp_path, seed):
        rng = np.random.default_rng(1000 + seed)
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as journal:
            for record_type, payload in self._fuzz_records(rng, 4):
                journal.append(record_type, **payload)
        data = path.read_bytes()
        intact, _ = read_journal(path)
        path.write_bytes(data[: int(rng.integers(1, len(data)))])
        recovered = recover_journal(path)
        assert recovered == intact[: len(recovered)]
        progress = replay_progress(recovered, FP)
        full = replay_progress(intact, FP)
        # The survivor set is a subset of the full run, digests intact.
        for chunk, digest in progress.completed.items():
            assert full.completed[chunk] == digest

    def test_conflicting_duplicate_digest_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as journal:
            journal.append("campaign_started", fingerprint=FP, n_chunks=2)
            journal.append(
                "chunk_completed", fingerprint=FP, chunk=0, digest="aaa"
            )
            journal.append(
                "chunk_completed", fingerprint=FP, chunk=0, digest="bbb"
            )
        with pytest.raises(JournalCorruptionError, match="byte-identical"):
            replay_progress(recover_journal(path), FP)
