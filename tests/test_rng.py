"""Tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.utils.rng import RngStream, spawn_streams


class TestReproducibility:
    def test_same_seed_same_draws(self):
        a = RngStream(42)
        b = RngStream(42)
        assert float(a.uniform()) == float(b.uniform())
        assert list(a.normal(size=5)) == list(b.normal(size=5))

    def test_different_seeds_differ(self):
        a = RngStream(1)
        b = RngStream(2)
        assert float(a.uniform()) != float(b.uniform())

    def test_spawn_reproducible(self):
        kids_a = RngStream(7).spawn(3)
        kids_b = RngStream(7).spawn(3)
        for ka, kb in zip(kids_a, kids_b):
            assert float(ka.uniform()) == float(kb.uniform())

    def test_spawn_children_independent(self):
        kids = RngStream(7).spawn(2)
        assert float(kids[0].uniform()) != float(kids[1].uniform())

    def test_spawn_streams_helper(self):
        streams = spawn_streams(3, 4)
        assert len(streams) == 4
        draws = {float(s.uniform()) for s in streams}
        assert len(draws) == 4

    def test_child_differs_from_parent_sequence(self):
        parent = RngStream(9)
        child = parent.child()
        assert float(parent.uniform()) != float(child.uniform())


class TestDraws:
    def test_uniform_range(self, rng):
        samples = rng.uniform(2.0, 3.0, size=100)
        assert np.all(samples >= 2.0)
        assert np.all(samples < 3.0)

    def test_integers_range(self, rng):
        samples = rng.integers(0, 5, size=200)
        assert set(np.unique(samples)).issubset({0, 1, 2, 3, 4})

    def test_bernoulli_extremes(self, rng):
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False

    def test_bernoulli_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_bernoulli_rate(self):
        rng = RngStream(5)
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_choice(self, rng):
        picked = rng.choice([10, 20, 30])
        assert picked in (10, 20, 30)

    def test_permutation(self, rng):
        perm = rng.permutation(10)
        assert sorted(perm) == list(range(10))

    def test_shuffle_in_place(self, rng):
        arr = np.arange(20)
        rng.shuffle(arr)
        assert sorted(arr) == list(range(20))
