"""Tests for weight decay, gradient clipping, and LR schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense, Sequential
from repro.nn.losses import MSELoss
from repro.nn.optimizers import SGD, Adam
from repro.nn.schedules import constant, cosine, step_decay, warmup
from repro.nn.training import Trainer


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(2, 1, rng)])


class TestWeightDecay:
    def test_decay_shrinks_weights_without_gradient(self):
        model = _model()
        opt = SGD(model, learning_rate=0.1, weight_decay=0.5)
        before = np.abs(model.parameters()["layer0.weight"]).sum()
        model.zero_grad()  # gradients are exactly zero
        opt.step()
        after = np.abs(model.parameters()["layer0.weight"]).sum()
        assert after < before

    def test_zero_decay_is_noop_on_zero_gradient(self):
        model = _model()
        opt = Adam(model, weight_decay=0.0)
        before = model.parameters()["layer0.weight"].copy()
        model.zero_grad()
        opt.step()
        assert np.allclose(model.parameters()["layer0.weight"], before)

    def test_negative_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD(_model(), 0.1, weight_decay=-0.1)

    def test_decayed_training_still_converges(self):
        model = _model(1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 2))
        y = x @ np.array([[1.0], [-1.0]])
        trainer = Trainer(
            model,
            optimizer=Adam(model, 0.05, weight_decay=1e-4),
            rng=np.random.default_rng(1),
        )
        history = trainer.fit(x, y, epochs=100, patience=None,
                              validation_fraction=0.0)
        assert history.train_loss[-1] < 0.01


class TestGradClip:
    def test_clips_global_norm(self):
        model = _model()
        opt = SGD(model, learning_rate=1.0, grad_clip=1e-3)
        x = np.ones((4, 2)) * 100.0
        y = np.zeros((4, 1))
        loss = MSELoss()
        opt.zero_grad()
        pred = model.forward(x)
        model.backward(loss.gradient(pred, y))
        before = model.parameters()["layer0.weight"].copy()
        opt.step()
        delta = np.abs(model.parameters()["layer0.weight"] - before)
        # Step bounded by lr * clip norm.
        assert np.all(delta <= 1e-3 + 1e-12)

    def test_small_gradients_untouched(self):
        model = _model()
        opt = SGD(model, learning_rate=0.1, grad_clip=1e6)
        x = np.ones((1, 2))
        y = np.zeros((1, 1))
        loss = MSELoss()
        opt.zero_grad()
        pred = model.forward(x)
        grad = loss.gradient(pred, y)
        model.backward(grad)
        raw = model.gradients()["layer0.weight"].copy()
        opt.step()
        # The stored gradient array was not rescaled.
        assert np.allclose(model.gradients()["layer0.weight"], raw)

    def test_bad_clip_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam(_model(), grad_clip=0.0)


class TestSchedules:
    def test_constant(self):
        s = constant(0.01)
        assert s(0) == s(100) == 0.01

    def test_step_decay(self):
        s = step_decay(1.0, factor=0.5, every=10)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(20) == 0.25

    def test_cosine_endpoints(self):
        s = cosine(1.0, total_epochs=11, floor=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(10) == pytest.approx(0.1)
        assert 0.1 < s(5) < 1.0

    def test_cosine_clamps_past_end(self):
        s = cosine(1.0, total_epochs=5)
        assert s(50) == pytest.approx(0.0)

    def test_warmup_ramps(self):
        s = warmup(constant(1.0), warmup_epochs=4)
        assert s(0) == pytest.approx(0.25)
        assert s(3) == pytest.approx(1.0)
        assert s(10) == 1.0

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: constant(0.0),
            lambda: step_decay(1.0, factor=0.0),
            lambda: step_decay(1.0, every=0),
            lambda: cosine(0.0, 10),
            lambda: cosine(1.0, 0),
            lambda: cosine(1.0, 10, floor=2.0),
            lambda: warmup(constant(1.0), 0),
        ],
    )
    def test_invalid_parameters_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            factory()

    def test_trainer_applies_schedule(self):
        model = _model()
        opt = Adam(model, learning_rate=1.0)
        seen = []

        def probe(epoch):
            seen.append(epoch)
            return 0.01 / (epoch + 1)

        trainer = Trainer(
            model, optimizer=opt, rng=np.random.default_rng(0),
            schedule=probe,
        )
        trainer.fit(
            np.ones((8, 2)), np.ones((8, 1)), epochs=3, patience=None,
            validation_fraction=0.0,
        )
        assert seen == [0, 1, 2]
        assert opt.learning_rate == pytest.approx(0.01 / 3)
