"""Event/metric presence across the instrumented layers, plus the CLI.

The identity tests prove tracing changes nothing; these prove it
records what ``docs/OBSERVABILITY.md`` promises — per-step engine
spans, shield switches with cause, filter replay/width telemetry, and
per-stage channel fault counters — and that the ``repro-trace``
subcommands consume the streams end to end.
"""

import json

import pytest

from repro.obs.cli import main as trace_main
from repro.obs.cli import record_trace
from repro.obs.export import read_jsonl, validate_chrome_trace


@pytest.fixture(scope="module")
def recording(tmp_path_factory):
    """One traced storm episode shared by every assertion below."""
    out_dir = tmp_path_factory.mktemp("trace")
    report = record_trace(out_dir, scenario="left_turn", faults="storm", seed=3)
    return out_dir, report


class TestEngineSpans:
    def test_run_and_step_spans(self, recording):
        _, report = recording
        tracer = report["observer"].tracer
        runs = tracer.events_named("engine.run")
        assert len(runs) == 1
        steps = tracer.events_named("engine.step")
        # The terminal step (the one that detects reached/collision)
        # gets a span but is not counted in the result's step total.
        assert len(steps) in (
            report["result"].steps,
            report["result"].steps + 1,
        )
        assert runs[0]["attrs"]["outcome"] == report["result"].outcome.value

    def test_stage_spans_present(self, recording):
        _, report = recording
        tracer = report["observer"].tracer
        for stage in ("engine.profile", "engine.comm", "engine.estimate",
                      "engine.plan", "engine.act", "engine.sense"):
            assert tracer.events_named(stage), f"no {stage} spans"

    def test_planned_steps_counter(self, recording):
        _, report = recording
        metrics = report["observer"].metrics
        assert metrics.counter_value("engine.runs") == 1
        assert metrics.counter_value("engine.planned_steps") > 0


class TestShieldEvents:
    def test_margin_series_sampled_every_monitor_step(self, recording):
        _, report = recording
        tracer = report["observer"].tracer
        margins = tracer.events_named("shield.margin")
        assert margins
        assert all("t" in e["attrs"] for e in margins)
        assert tracer.events_named("shield.boundary_distance")

    def test_switch_events_carry_cause(self, recording):
        _, report = recording
        tracer = report["observer"].tracer
        engages = tracer.events_named("shield.engage")
        assert engages, "storm run never engaged the shield"
        assert all(
            e["attrs"]["cause"] in ("unsafe", "boundary") for e in engages
        )
        metrics = report["observer"].metrics
        assert metrics.counter_value("shield.engagements") == len(engages)


class TestFilterAndChannelTelemetry:
    def test_replay_events_under_jitter(self, recording):
        _, report = recording
        tracer = report["observer"].tracer
        replays = tracer.events_named("filter.replay")
        assert replays, "jittered channel never triggered a replay"
        assert all(e["attrs"]["depth"] >= 0 for e in replays)
        # The jitter spread exceeds dt_m, so at least one message must
        # have arrived out of order and forced a real replay.
        assert any(e["attrs"]["depth"] >= 1 for e in replays)
        metrics = report["observer"].metrics
        assert metrics.counter_value(
            "filter.replays", filter="veh1"
        ) == len(replays)

    def test_interval_width_gauges(self, recording):
        _, report = recording
        metrics = report["observer"].metrics
        assert metrics.gauge_value("filter.position_width", filter="veh1") is not None
        assert metrics.gauge_value("filter.velocity_width", filter="veh1") is not None

    def test_channel_stage_counters(self, recording):
        _, report = recording
        metrics = report["observer"].metrics
        sent = metrics.counter_value("channel.sent", channel="veh1")
        assert sent > 0
        dropped = metrics.counter_value(
            "channel.stage_dropped", channel="veh1", stage="IndependentLoss"
        )
        assert dropped == metrics.counter_value("channel.dropped", channel="veh1")
        assert metrics.counter_value("channel.delivered", channel="veh1") > 0
        hist = metrics.snapshot()["histograms"]
        assert "channel.delay_seconds{channel=veh1}" in hist


class TestTraceArtifacts:
    def test_chrome_trace_validates(self, recording):
        out_dir, report = recording
        assert report["problems"] == []
        document = json.loads((out_dir / "trace.json").read_text())
        assert validate_chrome_trace(document) == []

    def test_jsonl_matches_tracer(self, recording):
        out_dir, report = recording
        _, events, snapshot = read_jsonl(out_dir / "trace.jsonl")
        assert len(events) == len(report["observer"].tracer.events)
        assert snapshot == report["observer"].metrics.snapshot()


class TestCli:
    def test_record_then_summarize(self, tmp_path, capsys):
        out = tmp_path / "rec"
        assert trace_main(["record", str(out), "--seed", "2",
                           "--max-time", "4.0"]) == 0
        assert trace_main(["summarize", str(out / "trace.jsonl")]) == 0
        text = capsys.readouterr().out
        assert "engine.step" in text
        assert "counters" in text

    def test_convert_and_margins(self, recording, tmp_path, capsys):
        out_dir, _ = recording
        converted = tmp_path / "converted.json"
        assert trace_main(["convert", str(out_dir / "trace.jsonl"),
                           str(converted)]) == 0
        assert validate_chrome_trace(json.loads(converted.read_text())) == []
        assert trace_main(["margins", str(out_dir / "trace.jsonl")]) == 0
        text = capsys.readouterr().out
        assert "shield switches" in text
        assert "safety margin" in text

    def test_summarize_json_document(self, recording, capsys):
        out_dir, report = recording
        code = trace_main(
            ["summarize", str(out_dir / "trace.jsonl"), "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["n_events"] == report["n_events"]
        counts = {
            (entry["kind"], entry["name"]): entry["count"]
            for entry in document["event_counts"]
        }
        assert counts[("span", "engine.step")] >= 1
        span_names = {entry["name"] for entry in document["spans"]}
        assert "engine.step" in span_names
        for entry in document["spans"]:
            assert entry["total_seconds"] >= entry["max_seconds"]
        assert (
            document["counters"]
            == report["observer"].metrics.snapshot()["counters"]
        )

    def test_missing_stream_is_a_clean_error(self, tmp_path, capsys):
        code = trace_main(["summarize", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
