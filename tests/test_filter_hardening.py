"""Numerical hardening of the estimate chain.

Two layers of defence added for long campaigns:

* the Kalman update projects its Joseph-form covariance onto the
  symmetric PSD cone, so thousands of replayed updates cannot
  accumulate an indefinite covariance (negative variance -> NaN bands);
* the information filter's divergence watchdog quarantines the Kalman
  band when consecutive innovations contradict the filter's own
  uncertainty, falling back to the sound reachability-only band instead
  of steering the nominal estimate with a diverged filter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.vehicle import VehicleLimits
from repro.errors import FilterError
from repro.filtering.info_filter import InformationFilter, WatchdogStats
from repro.filtering.kalman import KalmanFilter, KalmanState, symmetrize_psd
from repro.sensing.noise import NoiseBounds
from repro.sensing.sensor import SensorReading

LIMITS = VehicleLimits(v_min=0.0, v_max=16.0, a_min=-6.0, a_max=4.0)
DT = 0.1


def _reading(time, position, velocity, acceleration=0.0):
    return SensorReading(
        target=1,
        time=time,
        position=position,
        velocity=velocity,
        acceleration=acceleration,
    )


class TestSymmetrizePsd:
    def test_symmetric_psd_matrix_passes_through(self):
        p = np.array([[2.0, 0.5], [0.5, 1.0]])
        out = symmetrize_psd(p)
        assert np.array_equal(out, p)

    def test_asymmetry_is_averaged_out(self):
        p = np.array([[2.0, 0.5 + 1e-13], [0.5 - 1e-13, 1.0]])
        out = symmetrize_psd(p)
        assert out[0, 1] == out[1, 0]
        assert out[0, 1] == pytest.approx(0.5, abs=1e-12)

    def test_negative_variance_clamped_to_floor(self):
        p = np.array([[-1e-9, 0.0], [0.0, 1.0]])
        out = symmetrize_psd(p)
        assert out[0, 0] == 0.0
        # With a zero variance the Cauchy-Schwarz bound pins the
        # covariance term too.
        assert out[0, 1] == 0.0

    def test_covariance_clamped_to_cauchy_schwarz(self):
        p = np.array([[1.0, 2.0], [2.0, 1.0]])  # |p01| > sqrt(p00*p11)
        out = symmetrize_psd(p)
        assert out[0, 1] == pytest.approx(1.0)
        assert np.all(np.linalg.eigvalsh(out) >= -1e-15)

    def test_explicit_floor_applies_to_both_variances(self):
        p = np.zeros((2, 2))
        out = symmetrize_psd(p, floor=1e-6)
        assert out[0, 0] == pytest.approx(1e-6)
        assert out[1, 1] == pytest.approx(1e-6)


class TestJosephHardening:
    """The update's covariance stays symmetric PSD under abuse."""

    def _naive_update_covariance(self, kf, prior):
        """The textbook ``(I-K)P`` form — cheaper but numerically unsafe."""
        p_prior = prior.covariance
        gain = p_prior @ np.linalg.inv(p_prior + kf.r_matrix)
        return (np.eye(2) - gain) @ p_prior

    def test_extreme_conditioning_keeps_exact_symmetry(self):
        # delta_p huge, delta_v tiny: R condition number ~1e12; prior
        # deliberately mismatched the other way round.
        kf = KalmanFilter(DT, NoiseBounds(delta_p=1e3, delta_v=1e-3, delta_a=0.5))
        prior = KalmanState(
            time=0.0,
            x_hat=np.array([[100.0], [10.0]]),
            covariance=np.array([[1e-8, 1e-5], [1e-5, 1e4]]),
        )
        posterior = kf.update(prior, 101.0, 9.0)
        p = posterior.covariance
        assert p[0, 1] == p[1, 0]  # exactly, not approximately
        assert np.all(np.diag(p) >= 0.0)
        assert np.all(np.linalg.eigvalsh(p) >= -1e-15)

    def test_hardened_update_matches_joseph_form_within_1e12(self):
        kf = KalmanFilter(DT, NoiseBounds(delta_p=1e3, delta_v=1e-3, delta_a=0.5))
        prior = KalmanState(
            time=0.0,
            x_hat=np.array([[100.0], [10.0]]),
            covariance=np.array([[1e-8, 1e-5], [1e-5, 1e4]]),
        )
        p_prior = prior.covariance
        gain = p_prior @ np.linalg.inv(p_prior + kf.r_matrix)
        i_minus_k = np.eye(2) - gain
        joseph = i_minus_k @ p_prior @ i_minus_k.T + gain @ kf.r_matrix @ gain.T
        hardened = kf.update(prior, 101.0, 9.0).covariance
        assert np.allclose(hardened, joseph, rtol=1e-12, atol=1e-15)

    def test_naive_form_asymmetry_is_eliminated(self):
        # A chain of updates with ill-conditioned R: the naive (I-K)P
        # covariance drifts off symmetry; the hardened update never does.
        kf = KalmanFilter(DT, NoiseBounds(delta_p=200.0, delta_v=1e-4, delta_a=1.0))
        state = KalmanFilter.initial_state(0.0, 0.0, 10.0, 1e6, 1e-8)
        naive_p = state.covariance
        max_naive_asym = 0.0
        for step in range(1, 200):
            predicted = kf.predict(state, 0.0)
            # naive covariance propagated through the same chain
            naive_prior = kf.f_matrix @ naive_p @ kf.f_matrix.T + kf.q_matrix
            naive_gain = naive_prior @ np.linalg.inv(naive_prior + kf.r_matrix)
            naive_p = (np.eye(2) - naive_gain) @ naive_prior
            max_naive_asym = max(
                max_naive_asym, abs(naive_p[0, 1] - naive_p[1, 0])
            )
            state = kf.update(predicted, 0.1 * step, 10.0)
            assert state.covariance[0, 1] == state.covariance[1, 0]
            assert np.all(np.diag(state.covariance) >= 0.0)
        # The regression is meaningful only if the naive form actually
        # drifts on this workload.
        assert max_naive_asym > 0.0

    def test_long_replay_chain_keeps_finite_bands(self):
        kf = KalmanFilter(DT, NoiseBounds(delta_p=1e-6, delta_v=1e-6, delta_a=1e-6))
        state = KalmanFilter.initial_state(0.0, 0.0, 5.0, 1e-12, 1e-12)
        for step in range(1, 2000):
            predicted = kf.predict(state, 0.0)
            state = kf.update(predicted, 0.5 * step * DT, 5.0)
        assert np.isfinite(state.position_std)
        assert np.isfinite(state.velocity_std)
        assert state.position_std >= 0.0


class TestDivergenceWatchdog:
    def _filter(self, **kwargs):
        return InformationFilter(
            LIMITS,
            NoiseBounds.uniform_all(0.5),
            sensing_period=DT,
            **kwargs,
        )

    def _feed_consistent(self, info, start_step, n, position, velocity):
        for i in range(n):
            t = (start_step + i) * DT
            info.on_sensor_reading(
                _reading(t, position + velocity * t, velocity)
            )

    def test_nominal_readings_never_breach(self):
        info = self._filter()
        self._feed_consistent(info, 1, 50, 0.0, 8.0)
        assert info.watchdog.breaches == 0
        assert info.watchdog.trips == 0
        assert not info.watchdog.diverged

    def test_noiseless_setup_never_trips(self):
        info = InformationFilter(
            LIMITS, NoiseBounds.noiseless(), sensing_period=DT
        )
        for i in range(1, 40):
            t = i * DT
            info.on_sensor_reading(_reading(t, 8.0 * t, 8.0))
        assert info.watchdog.breaches == 0

    def test_single_outlier_does_not_trip(self):
        info = self._filter()
        self._feed_consistent(info, 1, 10, 0.0, 8.0)
        info.on_sensor_reading(_reading(11 * DT, 500.0, 8.0))
        assert info.watchdog.breaches == 1
        assert info.watchdog.consecutive == 1
        assert not info.watchdog.diverged
        # a consistent follow-up resets the run
        est = info.estimate(11 * DT)
        assert est.position.lo <= est.position.hi

    def test_consecutive_breaches_trip_and_fall_back(self):
        info = self._filter()
        self._feed_consistent(info, 1, 10, 0.0, 8.0)
        healthy = info.estimate(10 * DT)
        for i in range(3):
            t = (11 + i) * DT
            info.on_sensor_reading(_reading(t, 500.0 + 8.0 * t, 8.0))
        stats = info.watchdog
        assert stats.diverged
        assert stats.trips == 1
        assert stats.breaches == 3
        # graceful: estimate still works and returns a sound band
        fallback = info.estimate(13 * DT + DT / 2)
        assert fallback.position.lo <= fallback.position.hi
        # the fallback band is the reachability-only band, which is
        # wider than the healthy Kalman-fused band was
        assert fallback.position.width >= healthy.position.width

    def test_recovery_after_consistent_reading(self):
        info = self._filter()
        self._feed_consistent(info, 1, 10, 0.0, 8.0)
        for i in range(3):
            t = (11 + i) * DT
            info.on_sensor_reading(_reading(t, 500.0 + 8.0 * t, 8.0))
        assert info.watchdog.diverged
        # The filter kept folding readings in, so its posterior now
        # tracks the new regime; a reading consistent with it recovers.
        posterior = info.replay_filter.estimate_at(14 * DT)
        info.on_sensor_reading(
            _reading(14 * DT, posterior.position, posterior.velocity)
        )
        stats = info.watchdog
        assert not stats.diverged
        assert stats.recoveries == 1
        assert stats.consecutive == 0
        # and the Kalman band is trusted again
        est = info.estimate(14 * DT)
        assert est.position.lo <= est.position.hi

    def test_watchdog_can_be_disabled(self):
        info = self._filter(watchdog_sigma=None)
        self._feed_consistent(info, 1, 5, 0.0, 8.0)
        for i in range(10):
            t = (6 + i) * DT
            info.on_sensor_reading(_reading(t, 500.0 + 8.0 * t, 8.0))
        assert info.watchdog.breaches == 0
        assert not info.watchdog.diverged

    def test_invalid_watchdog_parameters_rejected(self):
        with pytest.raises(FilterError):
            self._filter(watchdog_sigma=0.0)
        with pytest.raises(FilterError):
            self._filter(watchdog_consecutive=0)

    def test_stats_object_is_live(self):
        info = self._filter()
        stats = info.watchdog
        assert stats == WatchdogStats()
        self._feed_consistent(info, 1, 3, 0.0, 8.0)
        info.on_sensor_reading(_reading(4 * DT, 900.0, 8.0))
        assert stats.breaches == 1
