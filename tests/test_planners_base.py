"""Tests for the planner protocol helpers and trivial planners."""

import math

import pytest

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import PlannerError
from repro.filtering.fusion import FusedEstimate
from repro.planners.base import Planner, PlanningContext, clipped
from repro.planners.constant import (
    ConstantPlanner,
    FullBrakePlanner,
    FullThrottlePlanner,
)
from repro.utils.intervals import Interval

LIMITS = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)


def _context():
    est = FusedEstimate(
        time=0.0,
        position=Interval(40.0, 42.0),
        velocity=Interval(-12.0, -10.0),
        nominal=VehicleState(position=41.0, velocity=-11.0),
    )
    return PlanningContext(
        time=0.0,
        ego=VehicleState(position=-30.0, velocity=10.0),
        estimates={1: est},
    )


class TestPlanningContext:
    def test_estimate_of(self):
        assert _context().estimate_of(1).nominal.position == 41.0

    def test_missing_estimate_raises(self):
        with pytest.raises(PlannerError):
            _context().estimate_of(2)

    def test_default_estimates_empty(self):
        ctx = PlanningContext(
            time=0.0, ego=VehicleState(position=0.0, velocity=0.0)
        )
        assert ctx.estimates == {}


class TestClipped:
    def test_in_range_passthrough(self):
        assert clipped(1.5, LIMITS) == 1.5

    def test_clipping(self):
        assert clipped(100.0, LIMITS) == 4.0
        assert clipped(-100.0, LIMITS) == -6.0

    def test_nan_maps_to_full_brake(self):
        assert clipped(math.nan, LIMITS) == -6.0

    def test_positive_infinity_maps_to_full_throttle(self):
        assert clipped(math.inf, LIMITS) == 4.0

    def test_negative_infinity_maps_to_full_brake(self):
        assert clipped(-math.inf, LIMITS) == -6.0


class TestTrivialPlanners:
    def test_constant(self):
        assert ConstantPlanner(1.2).plan(_context()) == 1.2

    def test_full_brake(self):
        assert FullBrakePlanner(LIMITS).plan(_context()) == -6.0

    def test_full_throttle(self):
        assert FullThrottlePlanner(LIMITS).plan(_context()) == 4.0

    def test_satisfy_protocol(self):
        for planner in (
            ConstantPlanner(0.0),
            FullBrakePlanner(LIMITS),
            FullThrottlePlanner(LIMITS),
        ):
            assert isinstance(planner, Planner)
