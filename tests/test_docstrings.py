"""Meta-test: every public item in the library carries a docstring.

"Doc comments on every public item" is a deliverable of this
reproduction; this test makes the claim checkable.  Public = importable
from a ``repro`` module without a leading underscore, plus public
methods of public classes.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

#: Dunder methods whose meaning is the protocol itself.
_EXEMPT_METHODS = {
    "__init__",  # documented via the class docstring's Parameters
    "__post_init__",
    "__repr__",
    "__eq__",
    "__hash__",
    "__str__",
    "__iter__",
    "__len__",
    "__getitem__",
    "__contains__",
    "__bool__",
    "__add__",
    "__sub__",
    "__neg__",
    "__call__",
}


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_and_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    assert inspect.getdoc(module), f"{module_name} has no module docstring"

    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not inspect.getdoc(obj):
            missing.append(f"{module_name}.{name}")
            continue
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or method_name in (
                    _EXEMPT_METHODS
                ):
                    continue
                if not callable(method) and not isinstance(
                    method, property
                ):
                    continue
                target = (
                    method.fget if isinstance(method, property) else method
                )
                if target is None or not callable(target):
                    continue
                if not inspect.getdoc(target):
                    missing.append(
                        f"{module_name}.{name}.{method_name}"
                    )
    assert not missing, f"undocumented public items: {missing}"
