"""Tests for the multi-oncoming-vehicle left-turn extension."""

import pytest

from repro.comm.disturbance import messages_delayed
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.dynamics.state import VehicleState
from repro.errors import ScenarioError
from repro.filtering.fusion import FusedEstimate
from repro.scenarios.base import Scenario
from repro.scenarios.left_turn.multi import (
    GapAcceptanceExpert,
    MultiOncomingLeftTurnScenario,
    MultiOncomingSafetyModel,
    merge_windows,
)
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import BatchRunner, EstimatorKind
from repro.utils.intervals import Interval
from repro.utils.rng import RngStream


@pytest.fixture(scope="module")
def platoon():
    return MultiOncomingLeftTurnScenario(n_oncoming=2)


def _estimate(time, position, velocity):
    return FusedEstimate(
        time=time,
        position=Interval.point(position),
        velocity=Interval.point(velocity),
        nominal=VehicleState(position=position, velocity=velocity),
    )


class TestMergeWindows:
    def test_disjoint_stay_separate(self):
        merged = merge_windows([Interval(0, 1), Interval(3, 4)])
        assert merged == [Interval(0, 1), Interval(3, 4)]

    def test_overlapping_merge(self):
        merged = merge_windows([Interval(0, 2), Interval(1, 4)])
        assert merged == [Interval(0, 4)]

    def test_touching_merge(self):
        merged = merge_windows([Interval(0, 2), Interval(2, 4)])
        assert merged == [Interval(0, 4)]

    def test_unsorted_input(self):
        merged = merge_windows([Interval(5, 6), Interval(0, 1)])
        assert merged == [Interval(0, 1), Interval(5, 6)]

    def test_empty_windows_dropped(self):
        assert merge_windows([Interval.EMPTY, Interval(0, 1)]) == [
            Interval(0, 1)
        ]

    def test_all_empty(self):
        assert merge_windows([Interval.EMPTY]) == []

    def test_nested_absorbed(self):
        merged = merge_windows([Interval(0, 10), Interval(2, 3)])
        assert merged == [Interval(0, 10)]


class TestScenario:
    def test_protocol(self, platoon):
        assert isinstance(platoon, Scenario)

    def test_vehicle_count(self, platoon):
        assert platoon.n_vehicles == 3
        assert platoon.oncoming_indices == (1, 2)

    def test_staggered_starts(self, platoon):
        state = platoon.initial_state(RngStream(0))
        p1 = state.vehicle(1).position
        p2 = state.vehicle(2).position
        assert p2 == pytest.approx(p1 + platoon.spacing)

    def test_collision_against_any(self, platoon):
        from repro.dynamics.state import SystemState

        base = [
            VehicleState(position=10.0, velocity=5.0),  # ego inside
            VehicleState(position=30.0, velocity=-10.0),
            VehicleState(position=60.0, velocity=-10.0),
        ]
        assert not platoon.is_collision(SystemState(0.0, tuple(base)))
        base[2] = VehicleState(position=10.0, velocity=-10.0)
        assert platoon.is_collision(SystemState(0.0, tuple(base)))

    def test_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ScenarioError):
            MultiOncomingLeftTurnScenario(n_oncoming=0)
        with pytest.raises(ReproError):
            MultiOncomingLeftTurnScenario(spacing=0.0)


class TestSafetyModel:
    def test_disjunction(self, platoon):
        model = platoon.safety_model()
        assert isinstance(model, MultiOncomingSafetyModel)
        # Slack inside the one-step margin band while vehicle 2's
        # window overlaps the ego's projected crossing.
        ego = VehicleState(position=4.0, velocity=3.0)
        estimates = {
            1: _estimate(0.0, 3.0, -12.0),  # cleared
            2: _estimate(0.0, 18.0, -12.0),  # imminent
        }
        assert model.in_boundary_safe_set(0.0, ego, estimates)
        # Both cleared: free to go.
        estimates[2] = _estimate(0.0, 3.5, -12.0)
        assert not model.in_boundary_safe_set(0.0, ego, estimates)

    def test_requires_vehicles(self, platoon):
        with pytest.raises(ScenarioError):
            MultiOncomingSafetyModel(
                geometry=platoon.geometry,
                ego_limits=platoon.ego_limits,
                oncoming_limits=platoon.oncoming_limits,
                dt_c=platoon.dt_c,
                oncoming_indices=(),
            )


class TestGapAcceptance:
    def test_goes_through_open_gap(self, platoon):
        expert = platoon.gap_expert(aggressive=False)
        # Both vehicles far away and slow: huge first gap.
        from repro.planners.base import PlanningContext

        ctx = PlanningContext(
            time=0.0,
            ego=VehicleState(position=-5.0, velocity=8.0),
            estimates={
                1: _estimate(0.0, 3.0, -12.0),  # cleared
                2: _estimate(0.0, 3.5, -12.0),  # cleared
            },
        )
        assert expert.plan(ctx) == expert.config.go_accel

    def test_yields_into_blocked_gap(self, platoon):
        expert = platoon.gap_expert(aggressive=False)
        from repro.planners.base import PlanningContext

        ctx = PlanningContext(
            time=0.0,
            ego=VehicleState(position=-3.0, velocity=12.0),
            estimates={
                1: _estimate(0.0, 30.0, -12.0),
                2: _estimate(0.0, 55.0, -12.0),
            },
        )
        assert expert.plan(ctx) < 0.0

    def test_single_vehicle_reduces_to_expert_decision(self):
        single = MultiOncomingLeftTurnScenario(n_oncoming=1)
        gap = single.gap_expert(aggressive=False)
        from repro.planners.expert import LeftTurnExpertPlanner

        classic = LeftTurnExpertPlanner(
            geometry=single.geometry,
            limits=single.ego_limits,
            window_estimator=gap._windows,  # same estimator
            config=gap.config,
        )
        from repro.planners.base import PlanningContext

        for p0, v0, p1 in [(-30.0, 10.0, 50.0), (-10.0, 8.0, 30.0),
                            (-5.0, 12.0, 60.0)]:
            ctx = PlanningContext(
                time=0.0,
                ego=VehicleState(position=p0, velocity=v0),
                estimates={1: _estimate(0.0, p1, -11.0)},
            )
            window = gap._windows.window(ctx.estimates[1])
            go_classic = classic.should_go(0.0, p0, v0, window)
            a_gap = gap.plan(ctx)
            if go_classic:
                assert a_gap >= 0.0
            # (The gap expert may be marginally stricter the other way;
            # equality of the GO region is only guaranteed one-sided.)

    def test_needs_vehicles(self, platoon):
        with pytest.raises(ScenarioError):
            GapAcceptanceExpert(
                geometry=platoon.geometry,
                limits=platoon.ego_limits,
                window_estimator=platoon.gap_expert()._windows,
                config=platoon.gap_expert().config,
                oncoming_indices=(),
            )


class TestClosedLoopSafety:
    def test_shielded_gap_expert_never_collides(self, platoon):
        engine = SimulationEngine(
            platoon,
            CommSetup(
                0.1,
                0.1,
                messages_delayed(0.25, 0.4),
                NoiseBounds.uniform_all(1.0),
            ),
            SimulationConfig(max_time=30.0, record_trajectories=False),
        )
        planner = CompoundPlanner(
            nn_planner=platoon.gap_expert(aggressive=True),
            emergency_planner=platoon.emergency_planner(),
            monitor=RuntimeMonitor(platoon.safety_model()),
            limits=platoon.ego_limits,
        )
        results = BatchRunner(engine, EstimatorKind.FILTERED).run_batch(
            planner, 20, seed=23
        )
        assert all(r.outcome is not Outcome.COLLISION for r in results)
