"""Shared fixtures for the test suite.

Trained NN planners are expensive (seconds each), so a session-scoped
*tiny* spec (small demonstration set, few epochs) is shared by every
test that only needs "some trained planner" rather than a calibrated
one.  Tests of calibrated behaviour (the table shapes) live in the
benchmarks, not here.
"""

from __future__ import annotations

import pytest

from repro.planners.factory import TrainedPlannerSpec, train_left_turn_planner
from repro.planners.training_data import DemonstrationConfig
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.utils.rng import RngStream

TINY_DEMO = DemonstrationConfig(n_random=300, n_rollouts=4)


@pytest.fixture(scope="session")
def scenario() -> LeftTurnScenario:
    """The default left-turn scenario."""
    return LeftTurnScenario()


@pytest.fixture(scope="session")
def tiny_conservative_spec(scenario) -> TrainedPlannerSpec:
    """A cheaply trained conservative planner (seconds, not calibrated)."""
    return train_left_turn_planner(
        "conservative",
        scenario.geometry,
        scenario.ego_limits,
        scenario.oncoming_limits,
        seed=11,
        demo_config=TINY_DEMO,
        epochs=15,
        hidden=16,
    )


@pytest.fixture(scope="session")
def tiny_aggressive_spec(scenario) -> TrainedPlannerSpec:
    """A cheaply trained aggressive planner (seconds, not calibrated)."""
    return train_left_turn_planner(
        "aggressive",
        scenario.geometry,
        scenario.ego_limits,
        scenario.oncoming_limits,
        seed=12,
        demo_config=TINY_DEMO,
        epochs=15,
        hidden=16,
    )


@pytest.fixture()
def rng() -> RngStream:
    """A fresh deterministic stream per test."""
    return RngStream(1234)
