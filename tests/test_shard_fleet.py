"""End-to-end fleet telemetry over a real sharded campaign.

The acceptance test for the fleet plane: three worker subprocesses run
a campaign while piggybacking metric deltas on their heartbeats; the
coordinator must merge them so that every unlabelled ``fleet.*``
counter equals the *exact sum* of its per-worker series, write a
``telemetry.jsonl`` sidecar, and surface the whole thing through
``shard-status`` (including ``--expo``).
"""

from __future__ import annotations

import pytest

from repro.campaign.cli import main as campaign_main
from repro.campaign.manifest import CampaignManifest
from repro.campaign.shard import ShardCoordinator, shard_status
from repro.obs.metrics import parse_series_key
from repro.obs.recorder import TELEMETRY_FILE, read_telemetry


def _manifest(n_sims=6, chunk_size=1, name="fleet-test"):
    return CampaignManifest(
        name=name,
        scenario={"kind": "left_turn"},
        comm={"sensor_noise": 0.3},
        planner={"kind": "constant", "acceleration": 2.0},
        n_sims=n_sims,
        seed=5,
        chunk_size=chunk_size,
        config={"max_time": 8.0},
    )


@pytest.fixture(scope="module")
def fleet_run(tmp_path_factory):
    """One three-worker campaign shared by every assertion below."""
    directory = tmp_path_factory.mktemp("fleet") / "campaign"
    coordinator = ShardCoordinator(
        _manifest(),
        directory,
        n_workers=3,
        heartbeat_interval=0.2,
    )
    report = coordinator.run()
    assert report.status == "completed"
    return directory, coordinator


def _split_worker(key):
    """``(name, labels)`` with the worker label separated out."""
    name, labels = parse_series_key(key)
    worker = None
    rest = []
    for label_key, value in labels:
        if label_key == "worker":
            worker = value
        else:
            rest.append((label_key, value))
    return name, tuple(rest), worker


class TestExactSum:
    def test_every_fleet_counter_is_the_sum_of_its_workers(self, fleet_run):
        _, coordinator = fleet_run
        counters = coordinator.fleet_registry.snapshot()["counters"]
        assert counters, "fleet registry absorbed no worker metrics"
        totals = {}
        sums = {}
        for key, value in counters.items():
            name, rest, worker = _split_worker(key)
            if worker is None:
                totals[(name, rest)] = value
            else:
                sums[(name, rest)] = sums.get((name, rest), 0) + value
        # Every unlabelled fleet series must be exactly the sum of its
        # per-worker series — and vice versa, no orphan worker series.
        assert totals
        assert set(totals) == set(sums)
        for series, total in totals.items():
            assert sums[series] == total, series

    def test_chunk_and_sim_totals_are_exact(self, fleet_run):
        _, coordinator = fleet_run
        fleet = coordinator.fleet_registry
        assert fleet.counter_value("fleet.worker.chunks_completed") == 6
        assert fleet.counter_value("fleet.worker.sims_completed") == 6
        assert fleet.counter_value("fleet.engine.runs") == 6

    def test_all_three_workers_tracked(self, fleet_run):
        _, coordinator = fleet_run
        gauges = coordinator.fleet_registry.snapshot()["gauges"]
        workers = set()
        for key in gauges:
            name, _, worker = _split_worker(key)
            if name == "fleet.worker_up" and worker is not None:
                workers.add(worker)
        assert workers == {"w0", "w1", "w2"}
        # The run is over: every worker was marked down at shutdown.
        for worker in workers:
            value = coordinator.fleet_registry.gauge_value(
                "fleet.worker_up", worker=worker
            )
            assert value <= 0.0


class TestTelemetrySidecar:
    def test_sidecar_written_with_final_totals(self, fleet_run):
        directory, _ = fleet_run
        frames = read_telemetry(directory / TELEMETRY_FILE)
        assert frames, "coordinator wrote no telemetry frames"
        final = frames[-1]["counters"]
        assert final["fleet.worker.chunks_completed"] == 6
        assert final["fleet.metric_reports"] >= 3

    def test_chunk_seconds_histogram_absorbed(self, fleet_run):
        directory, _ = fleet_run
        frames = read_telemetry(directory / TELEMETRY_FILE)
        histograms = frames[-1]["histograms"]
        merged = histograms.get("fleet.worker.chunk_seconds")
        assert merged is not None
        assert merged["count"] == 6
        assert merged["sum"] > 0.0


class TestShardStatusSurface:
    def test_summary_includes_telemetry(self, fleet_run):
        directory, _ = fleet_run
        summary = shard_status(directory)
        telemetry = summary["telemetry"]
        assert telemetry is not None
        assert telemetry["frames"] >= 1
        assert telemetry["counters"]["fleet.worker.chunks_completed"] == 6

    def test_cli_prints_fleet_counters(self, fleet_run, capsys):
        directory, _ = fleet_run
        code = campaign_main(["shard-status", "--dir", str(directory)])
        assert code == 0
        text = capsys.readouterr().out
        assert "telemetry:" in text
        assert "fleet.worker.chunks_completed: 6" in text

    def test_cli_expo_renders_prometheus(self, fleet_run, capsys):
        directory, _ = fleet_run
        code = campaign_main(
            ["shard-status", "--dir", str(directory), "--expo"]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_fleet_worker_chunks_completed counter" in text
        assert "repro_fleet_worker_chunks_completed 6" in text
        assert 'repro_fleet_worker_up{worker="w0"}' in text

    def test_cli_expo_without_telemetry_is_an_error(self, tmp_path, capsys):
        directory = tmp_path / "plain"
        from repro.campaign.runner import CampaignRunner

        CampaignRunner(_manifest(n_sims=1), directory).run()
        (directory / TELEMETRY_FILE).unlink()
        code = campaign_main(
            ["shard-status", "--dir", str(directory), "--expo"]
        )
        assert code == 2
        assert "no telemetry frames" in capsys.readouterr().err
