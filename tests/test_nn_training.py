"""Tests for the minibatch trainer."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.layers import Dense, Sequential, Tanh
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer


def _net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(1, 16, rng, init="xavier"), Tanh(), Dense(16, 1, rng)])


def _sine_data(n=512, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-3.0, 3.0, size=(n, 1))
    y = np.sin(x)
    return x, y


class TestFit:
    def test_learns_sine(self):
        x, y = _sine_data()
        net = _net()
        trainer = Trainer(net, optimizer=Adam(net, 1e-2), batch_size=64,
                          rng=np.random.default_rng(2))
        history = trainer.fit(x, y, epochs=150, patience=None,
                              validation_fraction=0.0)
        assert history.train_loss[-1] < 0.01
        assert history.train_loss[-1] < history.train_loss[0]

    def test_history_lengths(self):
        x, y = _sine_data(128)
        net = _net()
        trainer = Trainer(net, rng=np.random.default_rng(3))
        history = trainer.fit(x, y, epochs=5, patience=None)
        assert history.epochs_run == 5
        assert len(history.val_loss) == 5

    def test_early_stopping_triggers(self):
        x, y = _sine_data(256)
        net = _net()
        trainer = Trainer(net, optimizer=Adam(net, 1e-2), batch_size=64,
                          rng=np.random.default_rng(4))
        history = trainer.fit(x, y, epochs=500, patience=5, min_delta=1e-3)
        assert history.stopped_early
        assert history.epochs_run < 500

    def test_best_weights_restored(self):
        x, y = _sine_data(256)
        net = _net()
        trainer = Trainer(net, optimizer=Adam(net, 1e-2), batch_size=64,
                          rng=np.random.default_rng(5))
        history = trainer.fit(x, y, epochs=60, patience=10)
        final_val = trainer.evaluate(x, y)
        # Evaluating on the whole set is not the val split, but the
        # restored best weights must at least be in the same regime as
        # the best recorded val loss.
        assert final_val < history.val_loss[0]

    def test_deterministic_given_seeds(self):
        x, y = _sine_data(128)

        def run():
            net = _net(seed=7)
            trainer = Trainer(net, optimizer=Adam(net, 1e-3), batch_size=32,
                              rng=np.random.default_rng(8))
            trainer.fit(x, y, epochs=3, patience=None)
            return net.forward(x[:5]).copy()

        assert np.allclose(run(), run())


class TestValidation:
    def test_empty_dataset_rejected(self):
        net = _net()
        with pytest.raises(TrainingError):
            Trainer(net).fit(np.zeros((0, 1)), np.zeros((0, 1)))

    def test_length_mismatch_rejected(self):
        net = _net()
        with pytest.raises(TrainingError):
            Trainer(net).fit(np.zeros((4, 1)), np.zeros((3, 1)))

    def test_bad_fraction_rejected(self):
        net = _net()
        with pytest.raises(TrainingError):
            Trainer(net).fit(
                np.zeros((4, 1)), np.zeros((4, 1)), validation_fraction=1.0
            )

    def test_bad_epochs_rejected(self):
        net = _net()
        with pytest.raises(TrainingError):
            Trainer(net).fit(np.zeros((4, 1)), np.zeros((4, 1)), epochs=0)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(TrainingError):
            Trainer(_net(), batch_size=0)

    def test_single_sample_trains_without_split(self):
        net = _net()
        trainer = Trainer(net, rng=np.random.default_rng(0))
        history = trainer.fit(
            np.ones((1, 1)), np.ones((1, 1)), epochs=2, patience=None
        )
        assert history.epochs_run == 2
        assert history.val_loss == []

    def test_evaluate_does_not_change_model(self):
        x, y = _sine_data(64)
        net = _net()
        trainer = Trainer(net)
        before = net.forward(x[:3]).copy()
        trainer.evaluate(x, y)
        assert np.allclose(net.forward(x[:3]), before)
