"""Integration tests of the paper's central claims.

These drive the full closed loop — scenario, channels, sensors,
estimators, monitor, emergency planner — and check the two halves of
Eq. (1):

* **safety** — ``eta(kappa_c) >= 0``: a compound planner never enters
  the true unsafe set, whatever the embedded planner does, under every
  communication setting (including an adversarial embedded planner that
  floors the throttle every step);
* **efficiency** — the compound planner's mean eta is at least the pure
  embedded planner's on the same workloads when the pure planner is
  unsafe.

Batches are kept moderate for test runtime; the benchmarks run the
larger, calibrated versions.
"""

import pytest

from repro.comm.disturbance import (
    messages_delayed,
    messages_lost,
    no_disturbance,
)
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.planners.constant import FullThrottlePlanner
from repro.planners.expert import ExpertConfig, LeftTurnExpertPlanner
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import AggregateStats, Outcome
from repro.sim.runner import BatchRunner, EstimatorKind

N_RUNS = 25

SETTINGS = {
    "no_disturbance": CommSetup(
        0.1, 0.1, no_disturbance(), NoiseBounds.uniform_all(1.0)
    ),
    "delayed_dropping": CommSetup(
        0.1, 0.1, messages_delayed(0.25, 0.5), NoiseBounds.uniform_all(1.0)
    ),
    "messages_lost": CommSetup(
        0.1, 0.1, messages_lost(), NoiseBounds.uniform_all(3.0)
    ),
}


def _engine(scenario, comm):
    return SimulationEngine(
        scenario, comm, SimulationConfig(max_time=30.0,
                                         record_trajectories=False)
    )


def _compound(scenario, embedded):
    return CompoundPlanner(
        nn_planner=embedded,
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
    )


def _aggressive_expert(scenario):
    return LeftTurnExpertPlanner(
        geometry=scenario.geometry,
        limits=scenario.ego_limits,
        window_estimator=PassingWindowEstimator(
            scenario.geometry, scenario.oncoming_limits, aggressive=True
        ),
        config=ExpertConfig.aggressive(),
    )


class TestSafetyTheorem:
    @pytest.mark.parametrize("setting", sorted(SETTINGS))
    @pytest.mark.parametrize("kind", [EstimatorKind.RAW, EstimatorKind.FILTERED])
    def test_compound_full_throttle_never_collides(
        self, scenario, setting, kind
    ):
        """Worst-case embedded planner: flat-out throttle, every step."""
        engine = _engine(scenario, SETTINGS[setting])
        planner = _compound(
            scenario, FullThrottlePlanner(scenario.ego_limits)
        )
        results = BatchRunner(engine, kind).run_batch(
            planner, N_RUNS, seed=100
        )
        assert all(r.outcome is not Outcome.COLLISION for r in results)

    @pytest.mark.parametrize("setting", sorted(SETTINGS))
    def test_compound_aggressive_expert_never_collides(
        self, scenario, setting
    ):
        engine = _engine(scenario, SETTINGS[setting])
        planner = _compound(scenario, _aggressive_expert(scenario))
        results = BatchRunner(engine, EstimatorKind.FILTERED).run_batch(
            planner, N_RUNS, seed=101
        )
        assert all(r.outcome is not Outcome.COLLISION for r in results)

    @pytest.mark.parametrize("setting", sorted(SETTINGS))
    def test_compound_tiny_nn_never_collides(
        self, scenario, setting, tiny_aggressive_spec
    ):
        """Even a barely trained (sloppy) NN stays safe when wrapped."""
        engine = _engine(scenario, SETTINGS[setting])
        nn = tiny_aggressive_spec.build_planner(
            PassingWindowEstimator(
                scenario.geometry, scenario.oncoming_limits, aggressive=True
            ),
            scenario.ego_limits,
        )
        planner = _compound(scenario, nn)
        results = BatchRunner(engine, EstimatorKind.FILTERED).run_batch(
            planner, N_RUNS, seed=102
        )
        assert all(r.outcome is not Outcome.COLLISION for r in results)

    def test_compound_always_reaches_eventually(self, scenario):
        """Liveness on the default setting: no timeouts either."""
        engine = _engine(scenario, SETTINGS["no_disturbance"])
        planner = _compound(scenario, _aggressive_expert(scenario))
        results = BatchRunner(engine, EstimatorKind.FILTERED).run_batch(
            planner, N_RUNS, seed=103
        )
        assert all(r.outcome is Outcome.REACHED for r in results)


class TestEfficiencyClaim:
    def test_compound_eta_beats_unsafe_pure_planner(self, scenario):
        """eta(kappa_c) >= eta(kappa_n) in the mean when kappa_n is unsafe."""
        engine = _engine(scenario, SETTINGS["no_disturbance"])
        pure = FullThrottlePlanner(scenario.ego_limits)
        pure_results = BatchRunner(engine, EstimatorKind.RAW).run_batch(
            pure, N_RUNS, seed=104
        )
        compound = _compound(
            scenario, FullThrottlePlanner(scenario.ego_limits)
        )
        compound_results = BatchRunner(
            engine, EstimatorKind.FILTERED
        ).run_batch(compound, N_RUNS, seed=104)
        pure_eta = AggregateStats.from_results(pure_results).mean_eta
        compound_eta = AggregateStats.from_results(compound_results).mean_eta
        # Full throttle collides often; the compound planner must do
        # strictly better on eta.
        assert any(not r.is_safe for r in pure_results)
        assert compound_eta > pure_eta

    def test_emergency_steps_recorded(self, scenario):
        engine = _engine(scenario, SETTINGS["no_disturbance"])
        planner = _compound(
            scenario, FullThrottlePlanner(scenario.ego_limits)
        )
        results = BatchRunner(engine, EstimatorKind.FILTERED).run_batch(
            planner, 10, seed=105
        )
        assert any(r.emergency_steps > 0 for r in results)
