"""Tests for unit helpers and kinematic one-liners."""

import pytest

from repro.utils.units import (
    braking_distance,
    isclose_time,
    kmh,
    mph,
    stopping_time,
    to_kmh,
)


class TestConversions:
    def test_kmh_roundtrip(self):
        assert to_kmh(kmh(72.0)) == pytest.approx(72.0)

    def test_kmh_value(self):
        assert kmh(36.0) == pytest.approx(10.0)

    def test_mph(self):
        assert mph(60.0) == pytest.approx(26.8224)


class TestBrakingDistance:
    def test_basic(self):
        # 20 m/s at 4 m/s^2: 400 / 8 = 50 m.
        assert braking_distance(20.0, 4.0) == pytest.approx(50.0)

    def test_zero_speed(self):
        assert braking_distance(0.0, 4.0) == 0.0

    def test_rejects_nonpositive_decel(self):
        with pytest.raises(ValueError):
            braking_distance(10.0, 0.0)

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            braking_distance(-1.0, 4.0)


class TestStoppingTime:
    def test_basic(self):
        assert stopping_time(12.0, 4.0) == pytest.approx(3.0)

    def test_rejects_nonpositive_decel(self):
        with pytest.raises(ValueError):
            stopping_time(10.0, -4.0)

    def test_consistency_with_distance(self):
        # d = v * t / 2 for constant deceleration to rest.
        v, b = 14.0, 3.5
        assert braking_distance(v, b) == pytest.approx(
            v * stopping_time(v, b) / 2.0
        )


class TestTimeComparison:
    def test_accumulated_steps_close(self):
        t = sum([0.05] * 20)  # not exactly 1.0 in binary
        assert isclose_time(t, 1.0)

    def test_distinct_times_not_close(self):
        assert not isclose_time(1.0, 1.05)
