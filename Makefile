# Developer entry points.  The offline test image ships python+numpy+pytest
# only; ruff and mypy are optional extras (pip install -e .[lint]) and are
# skipped with a notice when absent so `make lint` works everywhere.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint safelint safedim lint-shape lint-flow gates ruff mypy precommit test benchmarks bench-record bench-compare slo chaos campaign-smoke shard-smoke trace-smoke serve-smoke baseline

lint: safelint ruff mypy

safelint:
	$(PYTHON) -m repro.lint src tests benchmarks

# The dimensional-analysis family alone (SFL100-SFL105), baseline-free:
# a unit violation in src/ can never be grandfathered.
safedim:
	$(PYTHON) -m repro.lint src --select SFL1 --no-baseline

# The safeshape family alone (SFL200-SFL205), baseline-free: the array
# core must stay shape-certified with zero suppressions (the
# precondition for the vectorized batch engine; see docs/LINTING.md).
lint-shape:
	$(PYTHON) -m repro.lint src --select SFL2 --no-baseline

# The safeflow family alone (SFL300-SFL306), baseline-free: purity/
# effect contradictions and vectorization blockers in src/ can never be
# grandfathered (see docs/LINTING.md).
lint-flow:
	$(PYTHON) -m repro.lint src --select SFL3 --no-baseline

# All four gate families in ONE interpreter (--gates shares the parse
# cache across them), baseline-free over src.
gates:
	$(PYTHON) -m repro.lint src --gates lint,dim,shape,flow --no-baseline

# What CI's lint job runs; mirror of .pre-commit-config.yaml.  The
# per-family gates run through `gates` (one process); the full-tree
# safelint pass still covers tests/ and benchmarks/.
precommit: safelint gates ruff mypy

ruff:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; \
	then ruff check .; \
	else echo "ruff not installed; skipping (pip install -e .[lint])"; fi

mypy:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; \
	then $(PYTHON) -m mypy src/repro; \
	else echo "mypy not installed; skipping (pip install -e .[lint])"; fi

test:
	$(PYTHON) -m pytest -x -q

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Benchmarks with machine-readable recording: writes one
# BENCH_<area>.json per benchmark file (see docs/OBSERVABILITY.md).
bench-record:
	REPRO_BENCH_RECORD=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Structural comparison of a fresh recording (REPRO_BENCH_DIR, default
# /tmp/repro-bench) against the checked-in baselines; what CI's
# bench-record job runs.  See docs/OBSERVABILITY.md.
BENCH_DIR ?= /tmp/repro-bench
bench-compare:
	$(PYTHON) scripts/bench_compare.py --recorded $(BENCH_DIR)

# SLO gate over the freshly recorded serve benchmark (run bench-record
# with REPRO_BENCH_DIR=$(BENCH_DIR) first); exit 1 on any violated
# objective.  See the SLO section of docs/OBSERVABILITY.md.
slo:
	$(PYTHON) -m repro.obs.obs_cli slo check $(BENCH_DIR)/BENCH_serve.json \
		--spec slo/serve_bench.json

# Chaos suite (~30 s): fault-model, fault-plan and crash-tolerance tests
# plus the chaos certification benchmark (zero collisions for the
# shielded planner across the fault grid, bit-identical parallel results
# under injected worker crashes).  See docs/ROBUSTNESS.md.
chaos:
	$(PYTHON) -m pytest tests/test_comm_faults.py tests/test_fault_plan.py \
		tests/test_parallel_faults.py -q
	$(PYTHON) -m pytest benchmarks/test_bench_chaos.py \
		benchmarks/test_bench_campaign.py --benchmark-only -q

# Durability smoke (~20 s): runs a campaign, SIGKILLs it mid-run,
# resumes, and requires the resumed aggregate.json to be byte-identical
# to an uninterrupted reference — all through the repro-campaign CLI.
# See the Durability section of docs/ROBUSTNESS.md.
campaign-smoke:
	$(PYTHON) scripts/campaign_smoke.py

# Shard chaos smoke (~60 s): shards a campaign across three worker
# processes, SIGKILLs one worker and then the coordinator itself,
# shard-resumes with a fresh fleet, and requires the merged
# aggregate.json to be byte-identical to a sequential reference — all
# through the repro-campaign CLI.  See the Distribution section of
# docs/ROBUSTNESS.md.
shard-smoke:
	$(PYTHON) scripts/shard_smoke.py

# Observability smoke (~30 s): records a fully traced episode + a small
# traced campaign, validates the Chrome trace-event export, checks the
# shield/filter/channel events are present, and gates the disabled-
# observer overhead on a micro benchmark (<=3% vs an untraced baseline,
# REPRO_TRACE_TOL to widen on noisy machines).  See docs/OBSERVABILITY.md.
trace-smoke:
	$(PYTHON) scripts/trace_smoke.py

# Serving chaos smoke (~15 s): streams ~200 decisions through the
# repro-serve CLI — healthy planner, injected hung planner, SIGKILL
# mid-stream + restart — and requires every reply at every ladder
# level to be shield-verified safe with exact serve.* accounting.
# See docs/ROBUSTNESS.md.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Regenerate the safelint baseline (see docs/LINTING.md before using).
baseline:
	$(PYTHON) -m repro.lint src --write-baseline
