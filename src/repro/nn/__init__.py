"""A small from-scratch neural-network library (numpy only).

The paper wraps "any NN-based planner"; this subpackage provides the
substrate to build, train, save and load the multilayer perceptrons used
as planners.  It deliberately contains only what the reproduction needs —
dense layers, standard activations, regression losses, SGD/Adam, a
minibatch trainer and npz serialization — implemented with explicit
forward/backward passes so the library has no dependency beyond numpy.
"""

from repro.nn.layers import Dense, Identity, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.losses import HuberLoss, MAELoss, MSELoss
from repro.nn.optimizers import SGD, Adam
from repro.nn.training import TrainingHistory, Trainer
from repro.nn.serialization import load_model, save_model
from repro.nn import schedules

__all__ = [
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Sequential",
    "MSELoss",
    "MAELoss",
    "HuberLoss",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingHistory",
    "save_model",
    "load_model",
    "schedules",
]
