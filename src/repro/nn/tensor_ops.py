"""Numeric helpers for the neural-network substrate.

Weight-initialisation schemes and small array utilities shared by the
layer implementations.  All functions take an explicit
:class:`numpy.random.Generator` so training is reproducible from a single
seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "he_init",
    "xavier_init",
    "zeros_init",
    "as_batch",
    "check_2d",
]


def he_init(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """He-normal initialisation, suited to ReLU layers.

    Shapes: -> [I, O]
    """
    _check_fans(fan_in, fan_out)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def xavier_init(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Xavier/Glorot-uniform initialisation, suited to tanh layers.

    Shapes: -> [I, O]
    """
    _check_fans(fan_in, fan_out)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialisation (used for biases).

    Shapes: -> [I, O]
    """
    _check_fans(fan_in, fan_out)
    return np.zeros((fan_in, fan_out))


def as_batch(x: np.ndarray) -> np.ndarray:
    """Promote a 1-D feature vector to a single-row batch.

    The planner inference path feeds one feature vector at a time; the
    layers operate on ``(batch, features)`` arrays.

    Shapes: x array -> [B, F]
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        return arr.reshape(1, -1)
    if arr.ndim == 2:
        return arr
    raise ConfigurationError(
        f"expected a 1-D or 2-D array, got shape {arr.shape}"
    )


def check_2d(x: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``x`` is a 2-D float array and return it as such.

    Shapes: x array -> [B, F]
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"{name} must be 2-D (batch, features), got shape {arr.shape}"
        )
    return arr


def _check_fans(fan_in: int, fan_out: int) -> None:
    if fan_in <= 0 or fan_out <= 0:
        raise ConfigurationError(
            f"layer dimensions must be positive, got ({fan_in}, {fan_out})"
        )
