"""Model serialization: architecture as JSON, weights as npz.

A saved model is a single ``.npz`` file that contains every parameter
array plus a ``__config__`` entry holding the JSON architecture
description produced by ``Layer.config()``.  :func:`load_model` rebuilds
the architecture and restores the weights, so trained planners can be
shipped and reloaded without retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.errors import SerializationError
from repro.nn.layers import Dense, Identity, Layer, ReLU, Sequential, Sigmoid, Tanh

__all__ = ["save_model", "load_model"]

_ACTIVATIONS: Dict[str, type] = {
    "ReLU": ReLU,
    "Tanh": Tanh,
    "Sigmoid": Sigmoid,
    "Identity": Identity,
}


def save_model(model: Sequential, path: Union[str, Path]) -> Path:
    """Write ``model`` (architecture + weights) to ``path``.

    Returns the path written (with ``.npz`` appended if missing).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays = {name: param for name, param in model.parameters().items()}
    config_json = json.dumps(model.config())
    arrays["__config__"] = np.frombuffer(
        config_json.encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_model(path: Union[str, Path]) -> Sequential:
    """Rebuild a model saved by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"model file not found: {path}")
    with np.load(path) as data:
        if "__config__" not in data:
            raise SerializationError(
                f"{path} is not a repro model file (missing __config__)"
            )
        config = json.loads(bytes(data["__config__"].tobytes()).decode("utf-8"))
        model = _build_from_config(config)
        params = model.parameters()
        for name, param in params.items():
            if name not in data:
                raise SerializationError(
                    f"{path} is missing parameter {name!r}"
                )
            stored = data[name]
            if stored.shape != param.shape:
                raise SerializationError(
                    f"parameter {name!r} shape mismatch: file has "
                    f"{stored.shape}, architecture expects {param.shape}"
                )
            np.copyto(param, stored)
    return model


def _build_from_config(config: dict) -> Sequential:
    if config.get("type") != "Sequential":
        raise SerializationError(
            f"expected a Sequential config, got {config.get('type')!r}"
        )
    layers: list[Layer] = []
    for layer_cfg in config.get("layers", []):
        layer_type = layer_cfg.get("type")
        if layer_type == "Dense":
            layers.append(
                Dense(
                    in_features=int(layer_cfg["in_features"]),
                    out_features=int(layer_cfg["out_features"]),
                    init=str(layer_cfg.get("init", "he")),
                )
            )
        elif layer_type in _ACTIVATIONS:
            layers.append(_ACTIVATIONS[layer_type]())
        else:
            raise SerializationError(f"unknown layer type {layer_type!r}")
    if not layers:
        raise SerializationError("model config contains no layers")
    return Sequential(layers)
