"""Regression losses with analytic gradients.

Each loss exposes ``value`` (mean over the batch) and ``gradient`` (the
derivative of that mean with respect to the predictions, ready to feed
into ``Sequential.backward``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor_ops import check_2d

__all__ = ["Loss", "MSELoss", "MAELoss", "HuberLoss"]


class Loss:
    """Base class for losses over ``(batch, outputs)`` arrays."""

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        """Mean loss over the batch.

        Shapes: predicted [B, F], target [B, F]
        """
        raise NotImplementedError

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Derivative of :meth:`value` with respect to ``predicted``.

        Shapes: predicted [B, F], target [B, F] -> [B, F]
        """
        raise NotImplementedError

    @staticmethod
    def _validate(predicted: np.ndarray, target: np.ndarray):
        p = check_2d(predicted, "predicted")
        t = check_2d(target, "target")
        if p.shape != t.shape:
            raise ConfigurationError(
                f"prediction shape {p.shape} != target shape {t.shape}"
            )
        return p, t


class MSELoss(Loss):
    """Mean squared error."""

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        """Mean squared error over the batch.

        Shapes: predicted [B, F], target [B, F]
        """
        p, t = self._validate(predicted, target)
        return float(np.mean((p - t) ** 2))

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Gradient ``2 (p - t) / n`` of the batch-mean MSE.

        Shapes: predicted [B, F], target [B, F] -> [B, F]
        """
        p, t = self._validate(predicted, target)
        return 2.0 * (p - t) / p.size


class MAELoss(Loss):
    """Mean absolute error (subgradient 0 at exact zero residual)."""

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        """Mean absolute error over the batch.

        Shapes: predicted [B, F], target [B, F]
        """
        p, t = self._validate(predicted, target)
        return float(np.mean(np.abs(p - t)))

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Subgradient ``sign(p - t) / n`` of the batch-mean MAE.

        Shapes: predicted [B, F], target [B, F] -> [B, F]
        """
        p, t = self._validate(predicted, target)
        return np.sign(p - t) / p.size


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear in the tails.

    Parameters
    ----------
    delta:
        Residual magnitude where the loss switches from quadratic to
        linear.
    """

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0.0:
            raise ConfigurationError(f"delta must be > 0, got {delta}")
        self.delta = float(delta)

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        """Mean Huber loss over the batch.

        Shapes: predicted [B, F], target [B, F]
        """
        p, t = self._validate(predicted, target)
        residual = p - t
        abs_r = np.abs(residual)
        quad = 0.5 * residual**2
        lin = self.delta * (abs_r - 0.5 * self.delta)
        return float(np.mean(np.where(abs_r <= self.delta, quad, lin)))

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Gradient ``clip(p - t, ±delta) / n`` of the batch-mean Huber loss.

        Shapes: predicted [B, F], target [B, F] -> [B, F]
        """
        p, t = self._validate(predicted, target)
        residual = p - t
        clipped = np.clip(residual, -self.delta, self.delta)
        return clipped / p.size
