"""Learning-rate schedules.

A schedule is a callable mapping the (0-based) epoch index to a learning
rate; :class:`ScheduledTrainer` applies it to an optimizer between
epochs.  The :class:`~repro.nn.training.Trainer` takes an optional
``schedule`` so existing call sites are untouched.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["constant", "step_decay", "cosine", "warmup"]

Schedule = Callable[[int], float]


def constant(learning_rate: float) -> Schedule:
    """The identity schedule."""
    if learning_rate <= 0.0:
        raise ConfigurationError("learning_rate must be > 0")
    return lambda epoch: learning_rate


def step_decay(
    initial: float, factor: float = 0.5, every: int = 25
) -> Schedule:
    """Multiply by ``factor`` every ``every`` epochs."""
    if initial <= 0.0:
        raise ConfigurationError("initial must be > 0")
    if not 0.0 < factor <= 1.0:
        raise ConfigurationError("factor must be in (0, 1]")
    if every < 1:
        raise ConfigurationError("every must be >= 1")

    def schedule(epoch: int) -> float:
        return initial * factor ** (epoch // every)

    return schedule


def cosine(initial: float, total_epochs: int, floor: float = 0.0) -> Schedule:
    """Cosine annealing from ``initial`` to ``floor`` over the run."""
    if initial <= 0.0:
        raise ConfigurationError("initial must be > 0")
    if total_epochs < 1:
        raise ConfigurationError("total_epochs must be >= 1")
    if not 0.0 <= floor < initial:
        raise ConfigurationError("floor must be in [0, initial)")

    def schedule(epoch: int) -> float:
        progress = min(epoch / max(total_epochs - 1, 1), 1.0)
        return floor + 0.5 * (initial - floor) * (
            1.0 + math.cos(math.pi * progress)
        )

    return schedule


def warmup(base: Schedule, warmup_epochs: int) -> Schedule:
    """Linear ramp from near-zero into ``base`` over ``warmup_epochs``."""
    if warmup_epochs < 1:
        raise ConfigurationError("warmup_epochs must be >= 1")

    def schedule(epoch: int) -> float:
        if epoch < warmup_epochs:
            return base(epoch) * (epoch + 1) / warmup_epochs
        return base(epoch)

    return schedule
