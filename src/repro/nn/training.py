"""Minibatch training loop with validation and early stopping.

The planner factory uses :class:`Trainer` to fit the imitation-learning
MLPs; it is a general-purpose regression trainer over the
:mod:`repro.nn` layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.nn.layers import Sequential
from repro.nn.losses import Loss, MSELoss
from repro.nn.optimizers import Adam, Optimizer
from repro.nn.tensor_ops import check_2d

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss curves recorded by the trainer."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    #: Epoch index (0-based) of the best validation loss, -1 before any.
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """How many epochs actually ran."""
        return len(self.train_loss)

    @property
    def best_val_loss(self) -> float:
        """Best validation loss seen (inf if no validation split)."""
        if not self.val_loss:
            return float("inf")
        return min(self.val_loss)


class Trainer:
    """Fits a :class:`~repro.nn.layers.Sequential` model by minibatch SGD.

    Parameters
    ----------
    model:
        The network to train (updated in place).
    loss:
        Loss object; defaults to MSE.
    optimizer:
        Defaults to Adam at 1e-3.
    batch_size:
        Minibatch size.
    rng:
        Generator used for shuffling and the validation split.
    """

    def __init__(
        self,
        model: Sequential,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        batch_size: int = 64,
        rng: Optional[np.random.Generator] = None,
        schedule=None,
    ) -> None:
        if batch_size <= 0:
            raise TrainingError(f"batch_size must be > 0, got {batch_size}")
        self.model = model
        self.loss = loss if loss is not None else MSELoss()
        self.optimizer = optimizer if optimizer is not None else Adam(model)
        self.batch_size = int(batch_size)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Optional learning-rate schedule (epoch -> lr), applied to the
        #: optimizer at the start of every epoch; see repro.nn.schedules.
        self.schedule = schedule

    # ------------------------------------------------------------------
    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: int = 100,
        validation_fraction: float = 0.1,
        patience: Optional[int] = 10,
        min_delta: float = 1e-6,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs with optional early stopping.

        Shapes: inputs [N, I], targets [N, O]

        Parameters
        ----------
        inputs, targets:
            ``(n, d_in)`` and ``(n, d_out)`` arrays.
        validation_fraction:
            Held-out fraction for validation; 0 disables validation (and
            therefore early stopping).
        patience:
            Stop after this many epochs without validation improvement;
            ``None`` disables early stopping.
        min_delta:
            Minimum improvement that resets the patience counter.

        Returns
        -------
        TrainingHistory
        """
        x = check_2d(inputs, "inputs")
        y = check_2d(targets, "targets")
        if x.shape[0] != y.shape[0]:
            raise TrainingError(
                f"inputs and targets disagree on n: {x.shape[0]} vs {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise TrainingError("cannot train on an empty dataset")
        if not 0.0 <= validation_fraction < 1.0:
            raise TrainingError(
                f"validation_fraction must be in [0, 1), got {validation_fraction}"
            )
        if epochs <= 0:
            raise TrainingError(f"epochs must be > 0, got {epochs}")

        x_train, y_train, x_val, y_val = self._split(x, y, validation_fraction)
        history = TrainingHistory()
        best_val = float("inf")
        strikes = 0
        best_params = None

        for epoch in range(epochs):
            if self.schedule is not None:
                self.optimizer.learning_rate = float(self.schedule(epoch))
            train_loss = self._run_epoch(x_train, y_train)
            history.train_loss.append(train_loss)
            if verbose:
                print(f"epoch {epoch}: train_loss={train_loss:.6f}")

            if x_val is None:
                continue
            val_loss = self.evaluate(x_val, y_val)
            history.val_loss.append(val_loss)
            if val_loss < best_val - min_delta:
                best_val = val_loss
                history.best_epoch = epoch
                strikes = 0
                best_params = self._snapshot_params()
            else:
                strikes += 1
                if patience is not None and strikes >= patience:
                    history.stopped_early = True
                    break

        if best_params is not None:
            self._restore_params(best_params)
        return history

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over a dataset without updating the model.

        Shapes: inputs [N, I], targets [N, O]
        """
        x = check_2d(inputs, "inputs")
        y = check_2d(targets, "targets")
        predictions = self.model.forward(x)
        return self.loss.value(predictions, y)

    # ------------------------------------------------------------------
    def _run_epoch(self, x: np.ndarray, y: np.ndarray) -> float:
        order = self._rng.permutation(x.shape[0])
        total = 0.0
        count = 0
        for start in range(0, x.shape[0], self.batch_size):
            batch = order[start : start + self.batch_size]
            xb = x[batch]
            yb = y[batch]
            self.optimizer.zero_grad()
            pred = self.model.forward(xb)
            batch_loss = self.loss.value(pred, yb)
            grad = self.loss.gradient(pred, yb)
            self.model.backward(grad)
            self.optimizer.step()
            total += batch_loss * xb.shape[0]
            count += xb.shape[0]
        return total / count

    def _split(
        self, x: np.ndarray, y: np.ndarray, fraction: float
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        if fraction == 0.0 or x.shape[0] < 2:
            return x, y, None, None
        n_val = max(1, int(round(x.shape[0] * fraction)))
        if n_val >= x.shape[0]:
            n_val = x.shape[0] - 1
        order = self._rng.permutation(x.shape[0])
        val_idx = order[:n_val]
        train_idx = order[n_val:]
        return x[train_idx], y[train_idx], x[val_idx], y[val_idx]

    def _snapshot_params(self):
        return {
            name: param.copy() for name, param in self.model.parameters().items()
        }

    def _restore_params(self, snapshot) -> None:
        for name, param in self.model.parameters().items():
            np.copyto(param, snapshot[name])
