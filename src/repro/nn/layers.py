"""Layers and the sequential container.

Each layer implements ``forward`` (caching what ``backward`` needs) and
``backward`` (returning the gradient with respect to its input and
accumulating parameter gradients).  The design is the classic explicit
reverse-mode pipeline: ``Sequential.backward`` feeds the loss gradient
through the layers in reverse.

Shapes are ``(batch, features)`` everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor_ops import check_2d, he_init, xavier_init

__all__ = ["Layer", "Dense", "ReLU", "Tanh", "Sigmoid", "Identity", "Sequential"]


class Layer:
    """Base class: a differentiable map with (possibly empty) parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching for :meth:`backward`.

        Shapes: x [B, F] -> [B, G]
        """
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate the gradient; accumulate parameter gradients.

        Shapes: grad_output [B, G] -> [B, F]
        """
        raise NotImplementedError

    def parameters(self) -> Dict[str, np.ndarray]:
        """Named parameter arrays (mutated in place by optimizers)."""
        return {}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Named gradient arrays, aligned with :meth:`parameters`."""
        return {}

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""

    def config(self) -> Dict[str, object]:
        """JSON-serialisable description used by the model serializer."""
        return {"type": type(self).__name__}


class Dense(Layer):
    """Fully connected affine layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    rng:
        Generator used for weight initialisation.
    init:
        ``"he"`` (default, for ReLU stacks) or ``"xavier"`` (for tanh).
    """

    _INITS: Dict[str, Callable] = {"he": he_init, "xavier": xavier_init}

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        init: str = "he",
    ) -> None:
        if init not in self._INITS:
            raise ConfigurationError(
                f"unknown init {init!r}; expected one of {sorted(self._INITS)}"
            )
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self._init_name = init
        self.weight = self._INITS[init](self.in_features, self.out_features, rng)
        self.bias = np.zeros(self.out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Affine map ``x W + b`` over the batch.

        Shapes: x [B, F] -> [B, G]
        """
        x = check_2d(x, "Dense input")
        if x.shape[1] != self.in_features:
            raise ConfigurationError(
                f"Dense expected {self.in_features} features, got {x.shape[1]}"
            )
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Input gradient ``g W'``; accumulates ``x' g`` and column sums.

        Shapes: grad_output [B, G] -> [B, F]
        """
        if self._input is None:
            raise ConfigurationError("backward called before forward")
        grad_output = check_2d(grad_output, "Dense grad_output")
        self.grad_weight += self._input.T @ grad_output
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def zero_grad(self) -> None:
        self.grad_weight.fill(0.0)
        self.grad_bias.fill(0.0)

    def config(self) -> Dict[str, object]:
        return {
            "type": "Dense",
            "in_features": self.in_features,
            "out_features": self.out_features,
            "init": self._init_name,
        }


class _Activation(Layer):
    """Base for parameter-free elementwise activations."""

    def __init__(self) -> None:
        self._cache: Optional[np.ndarray] = None

    def _fn(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _dfn(self, cached: np.ndarray) -> np.ndarray:
        """Derivative expressed in terms of what :meth:`forward` cached."""
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self._fn(np.asarray(x, dtype=float))
        self._cache = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        return grad_output * self._dfn(self._cache)


class ReLU(_Activation):
    """Rectified linear unit."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def _dfn(self, cached: np.ndarray) -> np.ndarray:
        return (cached > 0.0).astype(float)


class Tanh(_Activation):
    """Hyperbolic tangent."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def _dfn(self, cached: np.ndarray) -> np.ndarray:
        return 1.0 - cached * cached


class Sigmoid(_Activation):
    """Logistic sigmoid."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise evaluation.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def _dfn(self, cached: np.ndarray) -> np.ndarray:
        return cached * (1.0 - cached)


class Identity(_Activation):
    """Identity activation (handy as an output placeholder)."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return x

    def _dfn(self, cached: np.ndarray) -> np.ndarray:
        return np.ones_like(cached)


class Sequential(Layer):
    """A stack of layers applied in order.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> net = Sequential([Dense(3, 8, rng), ReLU(), Dense(8, 1, rng)])
    >>> net.forward(np.zeros((4, 3))).shape
    (4, 1)
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ConfigurationError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Feed ``x`` through every layer in order.

        Shapes: x [B, F] -> [B, G]
        """
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Feed the loss gradient through the layers in reverse.

        Shapes: grad_output [B, G] -> [B, F]
        """
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def parameters(self) -> Dict[str, np.ndarray]:
        params: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.parameters().items():
                params[f"layer{i}.{name}"] = value
        return params

    def gradients(self) -> Dict[str, np.ndarray]:
        grads: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.gradients().items():
                grads[f"layer{i}.{name}"] = value
        return grads

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def config(self) -> Dict[str, object]:
        return {
            "type": "Sequential",
            "layers": [layer.config() for layer in self.layers],
        }

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward` for inference-flavoured call sites.

        Shapes: x [B, F] -> [B, G]
        """
        return self.forward(x)

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
