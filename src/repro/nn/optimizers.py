"""First-order optimizers.

Optimizers hold references to the model's parameter arrays and update
them *in place* from the gradient arrays — the same convention as the
mainstream frameworks, scaled down to what the planner training needs.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Layer

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class tying a model's parameters to an update rule.

    Parameters
    ----------
    model:
        The network whose parameters are updated in place.
    learning_rate:
        Step size (mutable: learning-rate schedules assign to
        :attr:`learning_rate` between steps).
    weight_decay:
        Decoupled L2 regularisation: each step first shrinks every
        parameter by ``learning_rate * weight_decay * param`` (AdamW
        style), independent of the gradient statistics.
    grad_clip:
        If set, gradients are clipped to this global L2 norm before the
        update — the standard guard against exploding steps on the
        expert's discontinuous GO/YIELD labels.
    """

    def __init__(
        self,
        model: Layer,
        learning_rate: float,
        weight_decay: float = 0.0,
        grad_clip: float = None,
    ) -> None:
        if learning_rate <= 0.0:
            raise ConfigurationError(
                f"learning_rate must be > 0, got {learning_rate}"
            )
        if weight_decay < 0.0:
            raise ConfigurationError(
                f"weight_decay must be >= 0, got {weight_decay}"
            )
        if grad_clip is not None and grad_clip <= 0.0:
            raise ConfigurationError(
                f"grad_clip must be > 0, got {grad_clip}"
            )
        self._model = model
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.grad_clip = grad_clip

    def step(self) -> None:
        """Apply one update from the currently accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear the model's accumulated gradients."""
        self._model.zero_grad()

    def _prepare(self) -> None:
        """Apply decay and clipping before the rule-specific update."""
        if self.weight_decay > 0.0:
            for param in self._model.parameters().values():
                param -= self.learning_rate * self.weight_decay * param
        if self.grad_clip is not None:
            grads = self._model.gradients()
            total = float(
                np.sqrt(
                    sum(float(np.sum(g * g)) for g in grads.values())
                )
            )
            if total > self.grad_clip and total > 0.0:
                scale = self.grad_clip / total
                for grad in grads.values():
                    grad *= scale


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        model: Layer,
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        grad_clip: float = None,
    ) -> None:
        super().__init__(
            model, learning_rate, weight_decay=weight_decay,
            grad_clip=grad_clip,
        )
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}"
            )
        self.momentum = float(momentum)
        self._velocity: Dict[str, np.ndarray] = {
            name: np.zeros_like(param)
            for name, param in model.parameters().items()
        }

    def step(self) -> None:
        self._prepare()
        params = self._model.parameters()
        grads = self._model.gradients()
        for name, param in params.items():
            grad = grads[name]
            if self.momentum > 0.0:
                v = self._velocity[name]
                v *= self.momentum
                v -= self.learning_rate * grad
                param += v
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        model: Layer,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: float = None,
    ) -> None:
        super().__init__(
            model, learning_rate, weight_decay=weight_decay,
            grad_clip=grad_clip,
        )
        if not 0.0 <= beta1 < 1.0:
            raise ConfigurationError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(f"beta2 must be in [0, 1), got {beta2}")
        if eps <= 0.0:
            raise ConfigurationError(f"eps must be > 0, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._t = 0
        params = model.parameters()
        self._m: Dict[str, np.ndarray] = {
            name: np.zeros_like(p) for name, p in params.items()
        }
        self._v: Dict[str, np.ndarray] = {
            name: np.zeros_like(p) for name, p in params.items()
        }

    def step(self) -> None:
        self._prepare()
        self._t += 1
        params = self._model.parameters()
        grads = self._model.gradients()
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, param in params.items():
            grad = grads[name]
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
