"""Composable channel fault models.

The paper evaluates three communication settings (independent drop plus a
fixed delay, see :mod:`repro.comm.disturbance`), but real V2V channels
misbehave in richer ways: losses arrive in *bursts* (fading), delays
*jitter* (queueing), jitter induces *out-of-order* delivery, and link
retransmission produces *duplicates*.  This module models each of those
as a small immutable :class:`FaultModel` and lets them be stacked with
:func:`compose`, so a channel condition is written declaratively::

    faults = compose(
        GilbertElliottLoss(p_enter_burst=0.05, p_exit_burst=0.4),
        FixedDelay(0.25),
        UniformJitter(0.0, 0.3),       # reorders messages
        Duplication(probability=0.1),
    )
    channel = Channel(period=0.1, faults=faults, rng=stream)

A model is an immutable *specification*; per-channel mutable state (the
Gilbert–Elliott channel state, for example) lives in the
:class:`FaultProcess` created by :meth:`FaultModel.start`, so one model
instance can be shared by many seeded channels and simulations.

Every fault process consumes randomness only from the
:class:`~repro.utils.rng.RngStream` handed to it per message, which keeps
whole batches bit-reproducible: the same seed always produces the same
losses, delays and duplicates.

Semantics
---------

A process transforms a list of *delay offsets* — one entry per copy of
the message that is still alive, ``[0.0]`` initially:

* loss models remove copies (an empty list means the message is dropped);
* delay/jitter models add to each copy's offset;
* duplication models append extra copies.

Stages composed with :func:`compose` apply in order, so
``compose(loss, delay, duplication)`` duplicates only messages that
survived the loss stage, and each duplicate inherits the delay drawn
before it.  Negative total offsets (possible when composing a negative
Gaussian jitter mean with a small fixed delay) are clamped to zero by
the channel: a message is never delivered before it was sent.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.utils.rng import RngStream
from repro.utils.validation import (
    check_finite,
    check_nonnegative,
    check_probability,
    check_range,
)

__all__ = [
    "FaultModel",
    "FaultProcess",
    "NoFault",
    "IndependentLoss",
    "GilbertElliottLoss",
    "FixedDelay",
    "UniformJitter",
    "GaussianJitter",
    "Duplication",
    "ComposedFaults",
    "compose",
]


class FaultProcess(ABC):
    """Mutable per-channel instantiation of one fault model."""

    @abstractmethod
    def transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        """Map the live copies' delay offsets for one message.

        Units: -> [s]

        ``offsets`` holds one delay offset per surviving copy of the
        message (``[0.0]`` when the message enters the pipeline); the
        returned list is the stage's output.  An empty list drops the
        message.  ``rng`` is ``None`` only for deterministic models.
        """


class FaultModel(ABC):
    """Immutable specification of one channel fault mechanism."""

    @property
    @abstractmethod
    def is_stochastic(self) -> bool:
        """Whether the model draws randomness (and so requires an rng)."""

    @abstractmethod
    def start(self) -> FaultProcess:
        """Create a fresh per-channel process (fresh mutable state)."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable one-line description (used in reports)."""


# ---------------------------------------------------------------------------
# Stateless stages share one process class.
# ---------------------------------------------------------------------------
class _StatelessProcess(FaultProcess):
    """Process wrapper for models whose transform needs no state."""

    def __init__(self, model: "FaultModel") -> None:
        self._model = model

    def transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        """Delegate to the model's pure per-message transform.

        Units: -> [s]
        Effects: draws-rng
        """
        return self._model._transform(offsets, rng)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class NoFault(FaultModel):
    """The identity model: every message is delivered once, immediately."""

    @property
    def is_stochastic(self) -> bool:
        """Never draws randomness."""
        return False

    def start(self) -> FaultProcess:
        """Create the (stateless) identity process."""
        return _StatelessProcess(self)

    def _transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        return offsets

    def describe(self) -> str:
        """One-line description."""
        return "no fault"


@dataclass(frozen=True)
class IndependentLoss(FaultModel):
    """Independent per-copy loss with a fixed probability.

    ``IndependentLoss(1.0)`` is the paper's "messages lost" setting;
    together with :class:`FixedDelay` it reproduces the paper's
    "messages delayed" setting exactly (one Bernoulli draw per message).

    Units: probability [1]
    """

    probability: float

    def __post_init__(self) -> None:
        check_probability(self.probability, "probability")

    @property
    def is_stochastic(self) -> bool:
        """Draws one Bernoulli per copy unless the probability is 0 or 1."""
        return 0.0 < self.probability < 1.0

    def start(self) -> FaultProcess:
        """Create the (stateless) loss process."""
        return _StatelessProcess(self)

    def _transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        """Drop each copy independently.

        Effects: draws-rng
        """
        if self.probability == 0.0:
            return offsets
        if self.probability >= 1.0:  # safelint: disable=SFL001 - prob sentinel
            return []
        assert rng is not None  # enforced by Channel for stochastic models
        return [o for o in offsets if not rng.bernoulli(self.probability)]

    def describe(self) -> str:
        """One-line description."""
        if self.probability >= 1.0:  # safelint: disable=SFL001 - prob sentinel
            return "all messages lost"
        return f"independent loss p={self.probability:g}"


@dataclass(frozen=True)
class GilbertElliottLoss(FaultModel):
    """Two-state Markov (Gilbert–Elliott) burst loss.

    The channel alternates between a *good* and a *bad* (burst) state;
    one state transition is drawn per message offer, then each copy of
    the message is dropped with the current state's loss probability.
    With ``loss_good = 0`` and ``loss_bad = 1`` (the classic Gilbert
    channel) messages are lost exactly during bursts, whose mean length
    is ``1 / p_exit_burst`` messages.

    Units: p_enter_burst [1], p_exit_burst [1], loss_good [1], loss_bad [1]

    Parameters
    ----------
    p_enter_burst:
        Per-message probability of moving good -> bad.
    p_exit_burst:
        Per-message probability of moving bad -> good.
    loss_good:
        Loss probability while in the good state (default 0).
    loss_bad:
        Loss probability while in the bad state (default 1).
    start_bad:
        Whether the channel starts inside a burst (default ``False``).
    """

    p_enter_burst: float
    p_exit_burst: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    start_bad: bool = False

    def __post_init__(self) -> None:
        check_probability(self.p_enter_burst, "p_enter_burst")
        check_probability(self.p_exit_burst, "p_exit_burst")
        check_probability(self.loss_good, "loss_good")
        check_probability(self.loss_bad, "loss_bad")

    @property
    def is_stochastic(self) -> bool:
        """State transitions and drops are both random."""
        return True

    def start(self) -> FaultProcess:
        """Create a process holding the Markov state."""
        return _GilbertElliottProcess(self)

    def describe(self) -> str:
        """One-line description."""
        return (
            f"Gilbert-Elliott burst loss (enter={self.p_enter_burst:g}, "
            f"exit={self.p_exit_burst:g}, loss bad={self.loss_bad:g})"
        )


class _GilbertElliottProcess(FaultProcess):
    """Holds the good/bad state of one Gilbert–Elliott channel."""

    def __init__(self, model: GilbertElliottLoss) -> None:
        self._model = model
        self._bad = model.start_bad

    @property
    def in_burst(self) -> bool:
        """Whether the channel is currently in the bad (burst) state."""
        return self._bad

    def transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        """Advance the Markov state once, then drop per-copy.

        Units: -> [s]
        Effects: mutates-args, draws-rng
        """
        assert rng is not None  # model is always stochastic
        m = self._model
        if self._bad:
            if rng.bernoulli(m.p_exit_burst):
                self._bad = False
        elif rng.bernoulli(m.p_enter_burst):
            self._bad = True
        loss = m.loss_bad if self._bad else m.loss_good
        if loss == 0.0:
            return offsets
        return [o for o in offsets if not rng.bernoulli(loss)]


@dataclass(frozen=True)
class FixedDelay(FaultModel):
    """Constant delivery delay added to every copy.

    Units: delay [s]
    """

    delay: float

    def __post_init__(self) -> None:
        check_nonnegative(self.delay, "delay")

    @property
    def is_stochastic(self) -> bool:
        """Deterministic."""
        return False

    def start(self) -> FaultProcess:
        """Create the (stateless) delay process."""
        return _StatelessProcess(self)

    def _transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        return [o + self.delay for o in offsets]

    def describe(self) -> str:
        """One-line description."""
        return f"fixed delay {self.delay:g}s"


@dataclass(frozen=True)
class UniformJitter(FaultModel):
    """Per-copy uniform random delay on ``[low, high)``.

    Any jitter whose spread exceeds the transmission period can reorder
    deliveries: a message sent at ``t`` with a large draw arrives after
    the message sent at ``t + dt_m`` with a small draw.  The estimators
    are required to handle that (see :mod:`repro.filtering.replay`).

    Units: low [s], high [s]
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        check_nonnegative(self.low, "low")
        check_finite(self.high, "high")
        check_range(self.low, self.high, "low", "high")

    @property
    def is_stochastic(self) -> bool:
        """One uniform draw per copy (unless the window is a point)."""
        return self.high > self.low

    def start(self) -> FaultProcess:
        """Create the (stateless) jitter process."""
        return _StatelessProcess(self)

    def _transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        """Shift every copy by one shared uniform draw.

        Effects: draws-rng
        """
        if self.high <= self.low:
            return [o + self.low for o in offsets]
        assert rng is not None  # enforced by Channel for stochastic models
        return [o + float(rng.uniform(self.low, self.high)) for o in offsets]

    def describe(self) -> str:
        """One-line description."""
        return f"uniform jitter [{self.low:g}, {self.high:g})s"


@dataclass(frozen=True)
class GaussianJitter(FaultModel):
    """Per-copy truncated-Gaussian random delay.

    Draws ``N(mean, std)`` and rejects samples outside ``[low, high]``
    (up to a bounded number of redraws, then clamps), so the offset is
    guaranteed to stay inside the truncation window.  ``low`` defaults
    to 0 — a delay cannot be negative.

    Units: mean [s], std [s], low [s], high [s]
    """

    mean: float
    std: float
    low: float = 0.0
    high: float = math.inf

    #: Redraws before falling back to clamping (keeps cost bounded).
    _MAX_REDRAWS = 16

    def __post_init__(self) -> None:
        check_finite(self.mean, "mean")
        check_nonnegative(self.std, "std")
        check_nonnegative(self.low, "low")
        if math.isnan(self.high):
            raise ConfigurationError("high must not be NaN")
        check_range(self.low, self.high, "low", "high")

    @property
    def is_stochastic(self) -> bool:
        """One (or a few, under rejection) Gaussian draws per copy."""
        return self.std > 0.0

    def start(self) -> FaultProcess:
        """Create the (stateless) jitter process."""
        return _StatelessProcess(self)

    def _draw(self, rng: RngStream) -> float:
        """One truncated-normal delay sample.

        Effects: draws-rng
        """
        if self.std == 0.0:
            return min(max(self.mean, self.low), self.high)
        for _ in range(self._MAX_REDRAWS):
            sample = float(rng.normal(self.mean, self.std))
            if self.low <= sample <= self.high:
                return sample
        return min(max(sample, self.low), self.high)

    def _transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        """Shift each copy by an independent truncated-normal draw.

        Effects: draws-rng
        """
        if not self.is_stochastic:
            fixed = min(max(self.mean, self.low), self.high)
            return [o + fixed for o in offsets]
        assert rng is not None  # enforced by Channel for stochastic models
        return [o + self._draw(rng) for o in offsets]

    def describe(self) -> str:
        """One-line description."""
        return (
            f"gaussian jitter N({self.mean:g}, {self.std:g}) on "
            f"[{self.low:g}, {self.high:g}]s"
        )


@dataclass(frozen=True)
class Duplication(FaultModel):
    """Random duplication of surviving copies (link retransmission).

    Each copy entering the stage spawns, with the given probability, one
    duplicate delivered ``lag`` seconds after the original.  With
    ``lag = 0`` the duplicate shares the original's delivery time (the
    channel still delivers both, in send order).

    Units: probability [1], lag [s]
    """

    probability: float
    lag: float = 0.0

    def __post_init__(self) -> None:
        check_probability(self.probability, "probability")
        check_nonnegative(self.lag, "lag")

    @property
    def is_stochastic(self) -> bool:
        """One Bernoulli per copy unless the probability is 0 or 1."""
        return self.probability > 0.0

    def start(self) -> FaultProcess:
        """Create the (stateless) duplication process."""
        return _StatelessProcess(self)

    def _transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        """Emit each copy, plus a lagged duplicate with probability p.

        Effects: draws-rng
        """
        if self.probability == 0.0:
            return offsets
        assert rng is not None  # enforced by Channel for stochastic models
        out: List[float] = []
        for offset in offsets:
            out.append(offset)
            if rng.bernoulli(self.probability):
                out.append(offset + self.lag)
        return out

    def describe(self) -> str:
        """One-line description."""
        return f"duplication p={self.probability:g} lag={self.lag:g}s"


@dataclass(frozen=True)
class ComposedFaults(FaultModel):
    """Sequential composition of fault stages (see :func:`compose`)."""

    stages: Tuple[FaultModel, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("compose() requires at least one stage")
        for stage in self.stages:
            if not isinstance(stage, FaultModel):
                raise ConfigurationError(
                    f"compose() arguments must be FaultModels, got {stage!r}"
                )

    @property
    def is_stochastic(self) -> bool:
        """Stochastic iff any stage is."""
        return any(stage.is_stochastic for stage in self.stages)

    def start(self) -> FaultProcess:
        """Create a pipeline of fresh per-stage processes."""
        return _ComposedProcess([stage.start() for stage in self.stages])

    def describe(self) -> str:
        """One-line description."""
        return " + ".join(stage.describe() for stage in self.stages)


class _ComposedProcess(FaultProcess):
    """Applies each stage's process in order."""

    def __init__(self, processes: List[FaultProcess]) -> None:
        self._processes = processes

    def transform(
        self, offsets: List[float], rng: Optional[RngStream]
    ) -> List[float]:
        """Pipe the copies through every stage, stopping once dropped.

        Units: -> [s]
        Effects: mutates-args, draws-rng
        """
        for process in self._processes:
            offsets = process.transform(offsets, rng)
            if not offsets:
                return offsets
        return offsets


def compose(*models: FaultModel) -> FaultModel:
    """Stack fault models into a pipeline applied in argument order.

    ``compose(a)`` returns ``a`` unchanged; nested compositions are
    flattened so ``describe()`` reads as one flat pipeline.
    """
    flat: List[FaultModel] = []
    for model in models:
        if isinstance(model, ComposedFaults):
            flat.extend(model.stages)
        else:
            flat.append(model)
    if len(flat) == 1:
        return flat[0]
    return ComposedFaults(stages=tuple(flat))
