"""V2V communication substrate: messages, disturbed channels, fault models."""

from repro.comm.message import Message
from repro.comm.channel import Channel, ChannelStats
from repro.comm.disturbance import (
    DisturbanceModel,
    messages_delayed,
    messages_lost,
    no_disturbance,
)
from repro.comm.faults import (
    ComposedFaults,
    Duplication,
    FaultModel,
    FaultProcess,
    FixedDelay,
    GaussianJitter,
    GilbertElliottLoss,
    IndependentLoss,
    NoFault,
    UniformJitter,
    compose,
)

__all__ = [
    "Message",
    "Channel",
    "ChannelStats",
    "DisturbanceModel",
    "no_disturbance",
    "messages_delayed",
    "messages_lost",
    "FaultModel",
    "FaultProcess",
    "NoFault",
    "IndependentLoss",
    "GilbertElliottLoss",
    "FixedDelay",
    "UniformJitter",
    "GaussianJitter",
    "Duplication",
    "ComposedFaults",
    "compose",
]
