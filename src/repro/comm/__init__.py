"""V2V communication substrate: messages, disturbed channels, presets."""

from repro.comm.message import Message
from repro.comm.channel import Channel, ChannelStats
from repro.comm.disturbance import (
    DisturbanceModel,
    messages_delayed,
    messages_lost,
    no_disturbance,
)

__all__ = [
    "Message",
    "Channel",
    "ChannelStats",
    "DisturbanceModel",
    "no_disturbance",
    "messages_delayed",
    "messages_lost",
]
