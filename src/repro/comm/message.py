"""V2V message content.

Per the paper's system model (Section II-A, "Message"), every ``dt_m``
seconds each connected vehicle broadcasts its exact state
``(p_i(t), v_i(t), a_i(t))`` stamped with the sampling time ``t``.  The
*content* is accurate; only its *delivery* may be delayed or dropped,
which the :mod:`repro.comm.channel` module models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError

__all__ = ["Message"]


@dataclass(frozen=True, slots=True)
class Message:
    """A stamped state broadcast by one vehicle.

    Attributes
    ----------
    sender:
        Index of the broadcasting vehicle (1..n-1; the ego does not send
        to itself).
    stamp:
        The timestamp ``t_k`` at which ``state`` was sampled.  The
        receiver uses ``stamp`` for reachability analysis and for the
        Kalman-filter message replay.
    state:
        The exact ``(p, v, a)`` of the sender at ``stamp``.
    """

    sender: int
    stamp: float
    state: VehicleState

    def __post_init__(self) -> None:
        if self.sender < 0:
            raise ConfigurationError(
                f"Message.sender must be >= 0, got {self.sender}"
            )
        stamp = float(self.stamp)
        if math.isnan(stamp) or math.isinf(stamp):
            raise ConfigurationError(
                f"Message.stamp must be finite, got {self.stamp!r}"
            )
        if stamp < 0.0:
            raise ConfigurationError(
                f"Message.stamp must be >= 0 (simulation starts at t=0), "
                f"got {self.stamp!r}"
            )
        # The filter replays message content as *exact* state; a corrupted
        # payload must fail here, not propagate into the safety argument.
        for name in ("position", "velocity", "acceleration"):
            value = float(getattr(self.state, name))
            if not math.isfinite(value):
                raise ConfigurationError(
                    f"Message.state.{name} must be finite, got {value!r}"
                )

    def age(self, now: float) -> float:
        """Seconds elapsed since the message content was sampled.

        Units: now [s] -> [s]
        """
        return float(now) - self.stamp

    def __str__(self) -> str:
        return f"msg[C{self.sender} @ t={self.stamp:.3f}s: {self.state}]"
