"""The disturbed V2V channel.

A :class:`Channel` connects one broadcasting vehicle to the ego receiver.
Every ``dt_m`` seconds the simulation engine offers the sender's exact
state to the channel; the channel applies its
:class:`~repro.comm.disturbance.DisturbanceModel` (drop, then fixed delay)
and queues surviving messages for delivery.  The receiver polls
:meth:`Channel.receive` each control step and gets every message whose
delivery time has passed, in delivery order.

The channel also keeps delivery statistics (:class:`ChannelStats`) used by
tests and by the experiment reports.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.comm.disturbance import DisturbanceModel, no_disturbance
from repro.comm.message import Message
from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["Channel", "ChannelStats"]


@dataclass
class ChannelStats:
    """Counters of what happened on a channel during a simulation."""

    sent: int = 0
    dropped: int = 0
    delivered: int = 0
    #: Total delay accumulated over delivered messages (for the mean).
    total_delay: float = field(default=0.0, repr=False)

    @property
    def in_flight(self) -> int:
        """Messages accepted but not yet delivered."""
        return self.sent - self.dropped - self.delivered

    @property
    def drop_rate(self) -> float:
        """Fraction of sent messages that were dropped (0 if none sent)."""
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    @property
    def mean_delay(self) -> float:
        """Mean delivery delay over delivered messages (0 if none)."""
        if self.delivered == 0:
            return 0.0
        return self.total_delay / self.delivered


class Channel:
    """Unidirectional message channel from one sender to the ego vehicle.

    Parameters
    ----------
    period:
        Transmission period ``dt_m``: the sender broadcasts at
        ``t = 0, dt_m, 2*dt_m, ...``.
    disturbance:
        Drop/delay model; defaults to perfect communication.
    rng:
        Stream used for drop decisions.  Required whenever the
        disturbance has ``0 < p_d < 1``.
    """

    def __init__(
        self,
        period: float,
        disturbance: Optional[DisturbanceModel] = None,
        rng: Optional[RngStream] = None,
    ) -> None:
        self._period = check_positive(period, "period")
        self._disturbance = disturbance if disturbance is not None else no_disturbance()
        needs_rng = 0.0 < self._disturbance.drop_probability < 1.0
        if needs_rng and rng is None:
            raise ConfigurationError(
                "a Channel with probabilistic drops requires an rng stream"
            )
        self._rng = rng
        self._queue: List[Tuple[float, int, Message]] = []
        self._tiebreak = itertools.count()
        self._stats = ChannelStats()
        self._next_send_index = 0

    @property
    def period(self) -> float:
        """Transmission period ``dt_m``."""
        return self._period

    @property
    def disturbance(self) -> DisturbanceModel:
        """The channel's disturbance model."""
        return self._disturbance

    @property
    def stats(self) -> ChannelStats:
        """Delivery statistics accumulated so far."""
        return self._stats

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def is_transmission_time(self, time: float, tol: float = 1e-9) -> bool:
        """Whether ``time`` falls on the broadcast schedule.

        The engine drives the schedule by control-step index, so this is a
        convenience mainly for tests and standalone use.
        """
        ratio = time / self._period
        return abs(ratio - round(ratio)) <= tol * max(1.0, abs(ratio))

    def send(self, sender: int, time: float, state: VehicleState) -> bool:
        """Offer a broadcast to the channel.

        Applies the drop decision; surviving messages are queued for
        delivery at ``time + dt_d``.

        Returns
        -------
        bool
            ``True`` if the message was accepted (will eventually be
            delivered), ``False`` if it was dropped.
        """
        self._stats.sent += 1
        if self._disturbance.always_drops:
            self._stats.dropped += 1
            return False
        if self._disturbance.drop_probability > 0.0:
            assert self._rng is not None  # enforced in __init__
            if self._disturbance.is_dropped(self._rng):
                self._stats.dropped += 1
                return False
        message = Message(sender=sender, stamp=float(time), state=state)
        delivery_time = float(time) + self._disturbance.delivery_delay()
        heapq.heappush(
            self._queue, (delivery_time, next(self._tiebreak), message)
        )
        return True

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def receive(self, now: float) -> List[Message]:
        """Pop every message whose delivery time is at or before ``now``.

        Messages are returned in delivery order (FIFO among equal delivery
        times).
        """
        delivered: List[Message] = []
        while self._queue and self._queue[0][0] <= float(now) + 1e-12:
            delivery_time, _, message = heapq.heappop(self._queue)
            self._stats.delivered += 1
            self._stats.total_delay += delivery_time - message.stamp
            delivered.append(message)
        return delivered

    def peek_next_delivery(self) -> Optional[float]:
        """Delivery time of the next queued message, or ``None``."""
        if not self._queue:
            return None
        return self._queue[0][0]
