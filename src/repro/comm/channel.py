"""The disturbed V2V channel.

A :class:`Channel` connects one broadcasting vehicle to the ego receiver.
Every ``dt_m`` seconds the simulation engine offers the sender's exact
state to the channel; the channel applies its fault pipeline (either a
composable :class:`~repro.comm.faults.FaultModel` or the legacy
:class:`~repro.comm.disturbance.DisturbanceModel`, which is converted to
one) and queues the surviving copies for delivery.  The receiver polls
:meth:`Channel.receive` each control step and gets every copy whose
delivery time has passed, in delivery order.

Under jitter a later-sent message can be delivered before an earlier one
(out-of-order delivery), and under duplication one send produces several
deliveries; the channel counts both (:class:`ChannelStats`) and the
estimators are required to handle them (see
:mod:`repro.filtering.replay`).

The channel also keeps delivery statistics (:class:`ChannelStats`) used by
tests and by the experiment reports.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.comm.disturbance import DisturbanceModel, no_disturbance
from repro.comm.faults import ComposedFaults, FaultModel
from repro.comm.message import Message
from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.obs.observer import resolve_observer
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["Channel", "ChannelStats"]


@dataclass
class ChannelStats:
    """Counters of what happened on a channel during a simulation.

    ``delivered`` counts delivered *copies* — under duplication it can
    exceed ``sent - dropped``.  The conservation invariant is

    ``in_flight = sent - dropped + duplicated - delivered >= 0``

    which tests assert under every fault model.
    """

    sent: int = 0
    dropped: int = 0
    delivered: int = 0
    #: Extra copies created by duplication faults (0 without them).
    duplicated: int = 0
    #: Deliveries whose stamp was older than an already-delivered stamp.
    out_of_order: int = 0
    #: Total delay accumulated over delivered messages (for the mean).
    total_delay: float = field(default=0.0, repr=False)

    @property
    def in_flight(self) -> int:
        """Copies accepted but not yet delivered (never negative)."""
        return self.sent - self.dropped + self.duplicated - self.delivered

    @property
    def drop_rate(self) -> float:
        """Fraction of sent messages that were dropped (0 if none sent)."""
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    @property
    def mean_delay(self) -> float:
        """Mean delivery delay over delivered copies (0 if none).

        Units: -> [s]
        """
        if self.delivered == 0:
            return 0.0
        return self.total_delay / self.delivered


class Channel:
    """Unidirectional message channel from one sender to the ego vehicle.

    Parameters
    ----------
    period:
        Transmission period ``dt_m``: the sender broadcasts at
        ``t = 0, dt_m, 2*dt_m, ...``.
    disturbance:
        Legacy drop/delay preset; converted internally to a fault model.
        Mutually exclusive with ``faults``.
    rng:
        Stream used for stochastic fault decisions.  Required whenever
        the effective fault model is stochastic.
    faults:
        Composable fault pipeline (see :mod:`repro.comm.faults`).
        Mutually exclusive with ``disturbance``.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; records per-stage
        drop/duplication counters and delivery-delay observations.
        Write-only — channel behaviour (including the RNG sequence) is
        bit-identical with or without it.
    name:
        Label attached to this channel's metrics (the engine passes
        ``veh<i>``).
    """

    def __init__(
        self,
        period: float,
        disturbance: Optional[DisturbanceModel] = None,
        rng: Optional[RngStream] = None,
        faults: Optional[FaultModel] = None,
        observer=None,
        name: str = "",
    ) -> None:
        """Bind the channel's configuration and fault processes.

        Effects: mutates-args, draws-rng
        """
        self._period = check_positive(period, "period")
        if faults is not None and disturbance is not None:
            raise ConfigurationError(
                "pass either 'disturbance' or 'faults' to Channel, not both"
            )
        if faults is not None:
            self._disturbance: Optional[DisturbanceModel] = None
            self._faults = faults
        else:
            self._disturbance = (
                disturbance if disturbance is not None else no_disturbance()
            )
            self._faults = self._disturbance.as_fault_model()
        if self._faults.is_stochastic and rng is None:
            raise ConfigurationError(
                "a Channel with a stochastic fault model requires an rng stream"
            )
        self._rng = rng
        self._obs = resolve_observer(observer)
        self._name = name
        # Per-stage processes: iterating them with the early-exit loop in
        # send() consumes the RNG exactly like _ComposedProcess.transform,
        # so per-stage accounting never perturbs the fault sequence.
        if isinstance(self._faults, ComposedFaults):
            self._stage_processes: List[Tuple[str, object]] = [
                (type(stage).__name__, stage.start())
                for stage in self._faults.stages
            ]
        else:
            self._stage_processes = [
                (type(self._faults).__name__, self._faults.start())
            ]
        self._queue: List[Tuple[float, int, Message]] = []
        self._tiebreak = itertools.count()
        self._stats = ChannelStats()
        self._newest_delivered_stamp = float("-inf")

    @property
    def period(self) -> float:
        """Transmission period ``dt_m``.

        Units: -> [s]
        """
        return self._period

    @property
    def disturbance(self) -> Optional[DisturbanceModel]:
        """The legacy disturbance preset, or ``None`` under a fault model."""
        return self._disturbance

    @property
    def faults(self) -> FaultModel:
        """The effective fault model (presets are converted to one)."""
        return self._faults

    @property
    def stats(self) -> ChannelStats:
        """Delivery statistics accumulated so far."""
        return self._stats

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def is_transmission_time(self, time: float, tol: float = 1e-9) -> bool:
        """Whether ``time`` falls on the broadcast schedule.

        Units: time [s], tol [1]

        The engine drives the schedule by control-step index, so this is a
        convenience mainly for tests and standalone use.
        """
        ratio = time / self._period
        return abs(ratio - round(ratio)) <= tol * max(1.0, abs(ratio))

    def send(self, sender: int, time: float, state: VehicleState) -> bool:
        """Offer a broadcast to the channel.

        Units: time [s]

        Runs the fault pipeline on the message; every surviving copy is
        queued for delivery at ``time`` plus its (non-negative) delay
        offset.  Copies queued by the same or earlier sends always rank
        before later sends at equal delivery times (stable send-order
        tie-breaking).

        Returns
        -------
        bool
            ``True`` if at least one copy was accepted (will eventually
            be delivered), ``False`` if the message was dropped.
        """
        self._stats.sent += 1
        obs = self._obs
        offsets: List[float] = [0.0]
        if obs.enabled:
            obs.count("channel.sent", channel=self._name)
            for label, process in self._stage_processes:
                before = len(offsets)
                offsets = process.transform(offsets, self._rng)
                after = len(offsets)
                if after < before:
                    obs.count(
                        "channel.stage_dropped",
                        before - after,
                        channel=self._name,
                        stage=label,
                    )
                elif after > before:
                    obs.count(
                        "channel.stage_duplicated",
                        after - before,
                        channel=self._name,
                        stage=label,
                    )
                if not offsets:
                    break
        else:
            for _, process in self._stage_processes:
                offsets = process.transform(offsets, self._rng)
                if not offsets:
                    break
        if not offsets:
            self._stats.dropped += 1
            if obs.enabled:
                obs.count("channel.dropped", channel=self._name)
            return False
        if len(offsets) > 1:
            self._stats.duplicated += len(offsets) - 1
            if obs.enabled:
                obs.count(
                    "channel.duplicated",
                    len(offsets) - 1,
                    channel=self._name,
                )
        message = Message(sender=sender, stamp=float(time), state=state)
        for offset in offsets:
            delivery_time = float(time) + max(0.0, offset)
            heapq.heappush(
                self._queue, (delivery_time, next(self._tiebreak), message)
            )
        return True

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def receive(self, now: float) -> List[Message]:
        """Pop every copy whose delivery time is at or before ``now``.

        Units: now [s]

        Copies are returned in delivery order; at equal delivery times
        the send order breaks the tie (the heap entries carry a
        monotonically increasing send counter).  A returned message whose
        stamp is older than a previously returned stamp is counted in
        :attr:`ChannelStats.out_of_order`.
        """
        obs = self._obs
        delivered: List[Message] = []
        while self._queue and self._queue[0][0] <= float(now) + 1e-12:
            delivery_time, _, message = heapq.heappop(self._queue)
            self._stats.delivered += 1
            self._stats.total_delay += delivery_time - message.stamp
            if obs.enabled:
                obs.count("channel.delivered", channel=self._name)
                obs.observe(
                    "channel.delay_seconds",
                    delivery_time - message.stamp,
                    channel=self._name,
                )
            if message.stamp < self._newest_delivered_stamp:
                self._stats.out_of_order += 1
                if obs.enabled:
                    obs.count("channel.out_of_order", channel=self._name)
            else:
                self._newest_delivered_stamp = message.stamp
            delivered.append(message)
        return delivered

    def peek_next_delivery(self) -> Optional[float]:
        """Delivery time of the next queued copy, or ``None``.

        Units: -> [s]
        """
        if not self._queue:
            return None
        return self._queue[0][0]
