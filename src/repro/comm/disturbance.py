"""Communication disturbance models and the paper's three presets.

Section V of the paper evaluates three communication settings:

* **no disturbance** — every message arrives immediately;
* **messages delayed** — each message is independently dropped with
  probability ``p_d``; surviving messages are delivered after a fixed
  delay ``dt_d`` (the paper uses ``dt_d = 0.25 s`` and sweeps
  ``p_d in {0, 0.05, ..., 0.95}``);
* **messages lost** — every message is dropped, so the ego must rely on
  its noisy onboard sensors alone.

A :class:`DisturbanceModel` decides, per message, whether it is dropped
and how long its delivery is delayed.  Randomness comes from the stream
passed at decision time so one model instance can serve many seeded
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.faults import FaultModel, FixedDelay, IndependentLoss, NoFault, compose
from repro.utils.rng import RngStream
from repro.utils.validation import check_nonnegative, check_probability

__all__ = [
    "DisturbanceModel",
    "no_disturbance",
    "messages_delayed",
    "messages_lost",
]


@dataclass(frozen=True, slots=True)
class DisturbanceModel:
    """Per-message drop probability and delivery delay.

    Attributes
    ----------
    delay:
        Fixed delivery delay ``dt_d`` (seconds) applied to every message
        that is not dropped.
    drop_probability:
        Independent probability ``p_d`` that a message never arrives.
        ``1.0`` models the paper's "messages lost" setting.
    """

    delay: float = 0.0
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "delay", check_nonnegative(self.delay, "delay"))
        object.__setattr__(
            self,
            "drop_probability",
            check_probability(self.drop_probability, "drop_probability"),
        )

    @property
    def always_drops(self) -> bool:
        """Whether no message ever gets through (``p_d == 1``)."""
        return self.drop_probability >= 1.0

    def is_dropped(self, rng: RngStream) -> bool:
        """Draw the drop decision for one message.

        Effects: draws-rng
        """
        return rng.bernoulli(self.drop_probability)

    def delivery_delay(self) -> float:
        """Delay applied to a message that survives the drop decision.

        Units: -> [s]
        """
        return self.delay

    def as_fault_model(self) -> FaultModel:
        """This preset expressed in the composable fault-model algebra.

        The paper's three settings are trivial instances of
        :mod:`repro.comm.faults`: independent loss composed with a fixed
        delay.  The channel performs this conversion internally, so the
        legacy ``DisturbanceModel`` API and the fault-model API draw
        identical random sequences for identical seeds.
        """
        if self.delay == 0.0 and self.drop_probability == 0.0:
            return NoFault()
        stages = []
        if self.drop_probability > 0.0:
            stages.append(IndependentLoss(self.drop_probability))
        if self.delay > 0.0:
            stages.append(FixedDelay(self.delay))
        return compose(*stages)

    def describe(self) -> str:
        """Human-readable one-line description (used in reports)."""
        if self.always_drops:
            return "messages lost (always dropped)"
        if self.delay == 0.0 and self.drop_probability == 0.0:
            return "no disturbance"
        return (
            f"delay={self.delay:g}s, drop probability={self.drop_probability:g}"
        )


def no_disturbance() -> DisturbanceModel:
    """The paper's "no disturbance" setting: immediate, lossless delivery."""
    return DisturbanceModel(delay=0.0, drop_probability=0.0)


def messages_delayed(
    delay: float = 0.25, drop_probability: float = 0.0
) -> DisturbanceModel:
    """The paper's "messages delayed" setting.

    Parameters
    ----------
    delay:
        Fixed delay ``dt_d``; the paper uses 0.25 s.
    drop_probability:
        Independent drop probability ``p_d``; the paper sweeps
        ``{0.05 j | j = 0..19}``.
    """
    return DisturbanceModel(delay=delay, drop_probability=drop_probability)


def messages_lost() -> DisturbanceModel:
    """The paper's "messages lost" setting: communication is unavailable."""
    return DisturbanceModel(delay=0.0, drop_probability=1.0)
