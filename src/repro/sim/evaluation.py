"""The evaluation function ``eta`` (Section II-A).

.. math::

    \\eta(\\kappa) = \\begin{cases}
        -1, & \\text{a violation happened before reaching the target};\\\\
        1/t_r, & \\text{the target was reached safely at } t_r;\\\\
        0, & \\text{otherwise (horizon expired).}
    \\end{cases}

Safety dominates: any violation scores ``-1`` regardless of speed, and
among safe runs faster completion scores higher.  :func:`eta` evaluates a
result record; :func:`eta_from_events` evaluates raw event times, which
the property tests use to cross-check the engine's classification.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.sim.results import Outcome, SimulationResult

__all__ = ["Outcome", "eta", "eta_from_events"]


def eta(result: SimulationResult) -> float:
    """The eta value of a recorded simulation."""
    return result.eta


def eta_from_events(
    collision_time: Optional[float], reaching_time: Optional[float]
) -> float:
    """Eta from raw event times.

    A collision only counts if it happened before the target was reached
    (the paper's ``forall t < t_k: x(t) not in X_t`` side condition).
    """
    if collision_time is not None and (
        reaching_time is None or collision_time <= reaching_time
    ):
        return -1.0
    if reaching_time is not None:
        if reaching_time <= 0.0:
            raise SimulationError(
                f"reaching time must be positive, got {reaching_time}"
            )
        return 1.0 / reaching_time
    return 0.0
