"""Batch execution over seeded workloads.

The paper's tables compare several planner configurations on *identical*
workloads; the runner guarantees that by deriving every stochastic
component of simulation ``k`` from child ``k`` of the batch seed — so two
batches with the same seed see the same oncoming-vehicle behaviour, the
same message drops and the same sensor noise, and the paired "winning
percentage" statistic is exact.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, List, Optional

from repro.filtering.info_filter import (
    EstimateProvider,
    InformationFilter,
    RawEstimator,
)
from repro.planners.base import Planner
from repro.sim.engine import SimulationEngine
from repro.sim.results import BatchResult, FailureRecord, SimulationResult
from repro.utils.rng import spawn_streams

__all__ = ["EstimatorKind", "PlannerFactory", "make_estimator_factory", "BatchRunner"]

#: Builds (or returns) the planner used for a batch.
PlannerFactory = Callable[[], Planner]


class EstimatorKind(str, Enum):
    """Which estimate provider a configuration uses."""

    #: Latest raw message + raw sensor band (basic compound, pure NN).
    RAW = "raw"
    #: The full information filter (ultimate compound planner).
    FILTERED = "filtered"


def make_estimator_factory(
    kind: EstimatorKind, engine: SimulationEngine, observer=None
) -> Callable[[int], EstimateProvider]:
    """Estimator factory matching the engine's scenario and comm setup.

    ``observer`` (optional) is handed to every
    :class:`InformationFilter` the factory builds, labelled ``veh<i>``;
    the raw estimator has nothing to report and ignores it.
    """
    scenario = engine.scenario
    comm = engine.comm

    def factory(index: int) -> EstimateProvider:
        limits = scenario.vehicle_limits(index)
        if kind is EstimatorKind.FILTERED:
            return InformationFilter(
                limits=limits,
                sensor_bounds=comm.sensor_bounds,
                sensing_period=comm.dt_s,
                observer=observer,
                label=f"veh{index}",
            )
        return RawEstimator(limits=limits, sensor_bounds=comm.sensor_bounds)

    return factory


class BatchRunner:
    """Runs seeded batches of one engine + estimator configuration."""

    def __init__(
        self,
        engine: SimulationEngine,
        estimator_kind: EstimatorKind = EstimatorKind.FILTERED,
    ) -> None:
        self._engine = engine
        self._factory = make_estimator_factory(estimator_kind, engine)
        self._kind = estimator_kind

    @property
    def engine(self) -> SimulationEngine:
        """The wrapped engine."""
        return self._engine

    @property
    def estimator_kind(self) -> EstimatorKind:
        """Which estimator this runner hands to every run."""
        return self._kind

    def run_one(self, planner: Planner, seed: int) -> SimulationResult:
        """A single seeded episode."""
        streams = spawn_streams(seed, 1)
        return self._engine.run(planner, self._factory, streams[0])

    def run_batch(
        self,
        planner: Planner,
        n_sims: int,
        seed: int = 0,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> List[SimulationResult]:
        """``n_sims`` episodes on the workload family defined by ``seed``.

        Parameters
        ----------
        planner:
            Reused across episodes (the engine resets it each run).
        n_sims:
            Batch size.
        seed:
            Batch seed; the same seed reproduces the same workloads for
            any planner, enabling paired comparisons.
        progress:
            Optional ``(done, total)`` callback for long batches.
        """
        if n_sims <= 0:
            raise ValueError(f"n_sims must be > 0, got {n_sims}")
        results: List[SimulationResult] = []
        for i, stream in enumerate(spawn_streams(seed, n_sims)):
            results.append(self._engine.run(planner, self._factory, stream))
            if progress is not None:
                progress(i + 1, n_sims)
        return results

    def run_batch_detailed(
        self, planner: Planner, n_sims: int, seed: int = 0
    ) -> BatchResult:
        """Fault-tolerant batch: a failing episode becomes a record.

        The reference semantics for the parallel runner's crash
        tolerance: episode ``k`` either yields the identical result a
        plain :meth:`run_batch` would produce, or a
        :class:`~repro.sim.results.FailureRecord` at index ``k`` —
        surviving episodes are never discarded because a sibling raised.
        """
        if n_sims <= 0:
            raise ValueError(f"n_sims must be > 0, got {n_sims}")
        results: List[Optional[SimulationResult]] = [None] * n_sims
        failures: List[FailureRecord] = []
        for i, stream in enumerate(spawn_streams(seed, n_sims)):
            # Fault-tolerance boundary: any planner/engine blow-up is
            # recorded (never swallowed) so sibling episodes survive.
            try:
                results[i] = self._engine.run(planner, self._factory, stream)
            except Exception as exc:  # safelint: disable=SFL003 - recorded as FailureRecord
                failures.append(
                    FailureRecord(
                        index=i,
                        stage="simulation",
                        error_type=type(exc).__name__,
                        message=str(exc),
                        attempts=1,
                    )
                )
        return BatchResult(results=results, failures=failures)
