"""Closed-loop simulation: clock, engine, evaluation, batch runner."""

from repro.sim.clock import MultiRateClock
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.evaluation import Outcome, eta
from repro.sim.results import (
    AggregateStats,
    BatchResult,
    FailureRecord,
    SimulationResult,
    winning_percentage,
)
from repro.sim.runner import BatchRunner, EstimatorKind, PlannerFactory
from repro.sim.parallel import ParallelBatchRunner

__all__ = [
    "ParallelBatchRunner",
    "BatchResult",
    "FailureRecord",
    "MultiRateClock",
    "CommSetup",
    "SimulationConfig",
    "SimulationEngine",
    "Outcome",
    "eta",
    "SimulationResult",
    "AggregateStats",
    "winning_percentage",
    "BatchRunner",
    "PlannerFactory",
    "EstimatorKind",
]
