"""Result records and aggregate statistics.

:class:`SimulationResult` is the per-run record the engine produces;
:class:`AggregateStats` summarises a batch the way the paper's tables do
(mean reaching time over safe runs, safe rate, mean eta, mean emergency
frequency); :func:`winning_percentage` implements the tables' pairwise
comparison column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.dynamics.trajectory import Trajectory
from repro.errors import SimulationError

__all__ = [
    "Outcome",
    "SimulationResult",
    "FailureRecord",
    "BatchResult",
    "ChunkResult",
    "AggregateStats",
    "winning_percentage",
]


class Outcome(str, Enum):
    """How a simulation ended."""

    #: The ego entered the true unsafe set before reaching the target.
    COLLISION = "collision"
    #: The ego reached the target set without a violation.
    REACHED = "reached"
    #: The horizon expired with neither event.
    TIMEOUT = "timeout"


@dataclass
class SimulationResult:
    """Everything recorded about one closed-loop run.

    Attributes
    ----------
    outcome:
        Terminal classification.
    reaching_time:
        Time the target set was entered (``None`` unless ``REACHED``).
    collision_time:
        Time of the violation (``None`` unless ``COLLISION``).
    steps:
        Control steps executed.
    emergency_steps:
        Steps commanded by the emergency planner (0 for pure planners).
    trajectories:
        Per-vehicle trajectories, indexed like the scenario's vehicles.
    channel_stats:
        Per-sender message statistics (sent/dropped/delivered).
    sensor_faults_injected, planner_faults_injected:
        Fault-plan injection counters (0 unless the run had a
        :class:`~repro.faults.plan.FaultPlan`).
    """

    outcome: Outcome
    reaching_time: Optional[float] = None
    collision_time: Optional[float] = None
    steps: int = 0
    emergency_steps: int = 0
    trajectories: List[Trajectory] = field(default_factory=list)
    channel_stats: Dict[int, object] = field(default_factory=dict)
    sensor_faults_injected: int = 0
    planner_faults_injected: int = 0

    @property
    def eta(self) -> float:
        """The paper's evaluation function ``eta`` (Section II-A)."""
        if self.outcome is Outcome.COLLISION:
            return -1.0
        if self.outcome is Outcome.REACHED:
            if self.reaching_time is None or self.reaching_time <= 0.0:
                raise SimulationError(
                    "REACHED outcome requires a positive reaching time"
                )
            return 1.0 / self.reaching_time
        return 0.0

    @property
    def is_safe(self) -> bool:
        """Whether no violation occurred."""
        return self.outcome is not Outcome.COLLISION

    @property
    def emergency_frequency(self) -> float:
        """Fraction of control steps commanded by the emergency planner."""
        if self.steps == 0:
            return 0.0
        return self.emergency_steps / self.steps


@dataclass(frozen=True)
class FailureRecord:
    """Why one simulation of a batch produced no result.

    Produced by the fault-tolerant batch runners when an episode is
    irrecoverable after bounded retries; surviving episodes keep their
    results instead of the whole batch raising.

    Attributes
    ----------
    index:
        Simulation index within the batch (its seed is child ``index``
        of the batch seed, so the failure is exactly reproducible).
    stage:
        Where the failure surfaced: ``"simulation"`` (the engine or
        planner raised), ``"worker"`` (the worker process died or its
        result could not be transferred), or ``"timeout"`` (the
        per-simulation time budget expired).
    error_type:
        Exception class name (or ``"TimeoutError"``).
    message:
        Stringified error detail.
    attempts:
        Total attempts made, including the first.
    """

    index: int
    stage: str
    error_type: str
    message: str
    attempts: int = 1

    def __str__(self) -> str:
        return (
            f"sim {self.index}: {self.stage} failure after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.message}"
        )


@dataclass
class BatchResult:
    """Outcome of a fault-tolerant batch: survivors plus failures.

    ``results[k]`` is simulation ``k``'s result, or ``None`` when it
    failed irrecoverably (then exactly one :class:`FailureRecord` with
    ``index == k`` exists).  Indexing matches the seed derivation of the
    sequential runner, so paired statistics over the *surviving* subset
    remain exact between runners.
    """

    results: List[Optional[SimulationResult]]
    failures: List[FailureRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        failed = {f.index for f in self.failures}
        for index in failed:
            if not 0 <= index < len(self.results):
                raise SimulationError(
                    f"FailureRecord index {index} outside batch of "
                    f"{len(self.results)}"
                )
        for k, result in enumerate(self.results):
            if result is None and k not in failed:
                raise SimulationError(
                    f"simulation {k} has neither a result nor a failure record"
                )
        self.failures.sort(key=lambda f: f.index)

    @property
    def n_total(self) -> int:
        """Batch size."""
        return len(self.results)

    @property
    def n_failed(self) -> int:
        """Simulations without a result."""
        return len(self.failures)

    @property
    def completed(self) -> List[SimulationResult]:
        """Surviving results in simulation order."""
        return [r for r in self.results if r is not None]

    @property
    def failed_indices(self) -> List[int]:
        """Indices of failed simulations, ascending."""
        return [f.index for f in self.failures]

    def require_complete(self) -> List[SimulationResult]:
        """All results, raising if any simulation failed.

        The raised :class:`~repro.errors.SimulationError` summarises the
        failure records; use :attr:`completed` / :attr:`failures` to
        keep the surviving episodes instead.
        """
        if self.failures:
            preview = "; ".join(str(f) for f in self.failures[:3])
            more = (
                "" if self.n_failed <= 3 else f" (+{self.n_failed - 3} more)"
            )
            raise SimulationError(
                f"{self.n_failed}/{self.n_total} simulations failed: "
                f"{preview}{more}"
            )
        return [r for r in self.results if r is not None]


@dataclass
class ChunkResult:
    """Outcome of running a *subset* of a batch's simulation indices.

    Produced by
    :meth:`~repro.sim.parallel.ParallelBatchRunner.run_indices_detailed`:
    the durable campaign layer executes a long batch as many independent
    chunks, each covering a slice of the global index space, and needs
    per-chunk handoff of results and failure records without a dense
    batch-sized list.

    ``results[k]`` exists exactly for the indices of ``indices`` that
    completed; every other index carries one :class:`FailureRecord`.
    Because simulation ``k`` of a batch is seeded from child ``k`` of the
    batch seed regardless of chunking, concatenating chunk results over a
    partition of ``range(n_sims)`` is bit-identical to one uninterrupted
    batch.
    """

    indices: List[int]
    results: Dict[int, SimulationResult]
    failures: List[FailureRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        covered = set(self.indices)
        if len(covered) != len(self.indices):
            raise SimulationError("ChunkResult indices must be unique")
        for index in self.results:
            if index not in covered:
                raise SimulationError(
                    f"result for index {index} outside chunk indices"
                )
        failed = {f.index for f in self.failures}
        for index in failed:
            if index not in covered:
                raise SimulationError(
                    f"FailureRecord index {index} outside chunk indices"
                )
        for index in self.indices:
            if index not in self.results and index not in failed:
                raise SimulationError(
                    f"simulation {index} has neither a result nor a "
                    "failure record"
                )
        self.indices = sorted(self.indices)
        self.failures.sort(key=lambda f: f.index)

    @property
    def n_total(self) -> int:
        """Number of indices this chunk covered."""
        return len(self.indices)

    @property
    def n_failed(self) -> int:
        """Simulations without a result."""
        return len(self.failures)

    @property
    def completed(self) -> List[SimulationResult]:
        """Surviving results in ascending index order."""
        return [
            self.results[index]
            for index in self.indices
            if index in self.results
        ]

    @property
    def transient_failures(self) -> List[FailureRecord]:
        """Failures whose stage is infrastructure, not the simulation.

        ``stage == "simulation"`` failures are deterministic under the
        seeding scheme (same seed, same exception) and will recur on any
        retry; worker deaths and timeouts are environmental and a caller
        may reasonably re-run the chunk.
        """
        return [f for f in self.failures if f.stage != "simulation"]


@dataclass(frozen=True)
class AggregateStats:
    """Batch summary in the shape of the paper's table rows.

    ``mean_reaching_time`` averages *safe, completed* runs only —
    Table II's ``*`` convention — so an unsafe planner is not rewarded
    for fast crashes.
    """

    n_runs: int
    n_safe: int
    n_reached: int
    mean_reaching_time: float
    mean_eta: float
    mean_emergency_frequency: float

    @property
    def safe_rate(self) -> float:
        """Fraction of runs without a violation."""
        if self.n_runs == 0:
            return 0.0
        return self.n_safe / self.n_runs

    @classmethod
    def from_results(cls, results: Sequence[SimulationResult]) -> "AggregateStats":
        """Summarise a batch of results."""
        n = len(results)
        if n == 0:
            raise SimulationError("cannot aggregate an empty result list")
        safe = [r for r in results if r.is_safe]
        reached = [
            r
            for r in results
            if r.outcome is Outcome.REACHED and r.reaching_time is not None
        ]
        mean_rt = (
            sum(r.reaching_time for r in reached) / len(reached)
            if reached
            else float("nan")
        )
        return cls(
            n_runs=n,
            n_safe=len(safe),
            n_reached=len(reached),
            mean_reaching_time=mean_rt,
            mean_eta=sum(r.eta for r in results) / n,
            mean_emergency_frequency=(
                sum(r.emergency_frequency for r in results) / n
            ),
        )


def winning_percentage(
    challenger: Sequence[SimulationResult],
    incumbent: Sequence[SimulationResult],
) -> float:
    """Fraction of paired runs where the challenger's eta is higher.

    The paper's "winning percentage" column compares the ultimate
    compound planner against each alternative on identical workloads
    (same seeds), counting the simulations where it achieves the
    strictly higher eta value.
    """
    if len(challenger) != len(incumbent):
        raise SimulationError(
            f"paired comparison needs equal-length batches: "
            f"{len(challenger)} vs {len(incumbent)}"
        )
    if not challenger:
        raise SimulationError("cannot compare empty batches")
    wins = sum(
        1 for a, b in zip(challenger, incumbent) if a.eta > b.eta
    )
    return wins / len(challenger)
