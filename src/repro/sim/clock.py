"""Multi-rate schedule over the control step.

The system model runs three periodic activities: control at ``dt_c``,
message transmission at ``dt_m`` and sensing at ``dt_s``.  The engine
advances in control steps; this clock answers, per step index, whether a
transmission or a sensing sample falls on that step.  Both periods must
be integer multiples of the control period (checked at construction) so
the schedule is exact integer arithmetic — no drifting float comparisons.
"""

from __future__ import annotations

from repro.utils.validation import check_multiple, check_positive

__all__ = ["MultiRateClock"]


class MultiRateClock:
    """Integer-exact alignment of the control/message/sensor schedules.

    Parameters
    ----------
    dt_c:
        Control period (the base rate).
    dt_m:
        Message transmission period; multiple of ``dt_c``.
    dt_s:
        Sensing period; multiple of ``dt_c``.
    """

    def __init__(self, dt_c: float, dt_m: float, dt_s: float) -> None:
        self._dt_c = check_positive(dt_c, "dt_c")
        check_multiple(dt_m, dt_c, "dt_m", "dt_c")
        check_multiple(dt_s, dt_c, "dt_s", "dt_c")
        self._message_every = int(round(dt_m / dt_c))
        self._sensor_every = int(round(dt_s / dt_c))

    @property
    def dt_c(self) -> float:
        """Control period."""
        return self._dt_c

    @property
    def dt_m(self) -> float:
        """Message period (exact multiple of ``dt_c``)."""
        return self._message_every * self._dt_c

    @property
    def dt_s(self) -> float:
        """Sensing period (exact multiple of ``dt_c``)."""
        return self._sensor_every * self._dt_c

    @property
    def message_every(self) -> int:
        """Control steps between transmissions."""
        return self._message_every

    @property
    def sensor_every(self) -> int:
        """Control steps between sensor samples."""
        return self._sensor_every

    def time_of(self, step: int) -> float:
        """Timestamp of control step ``step``."""
        return step * self._dt_c

    def is_message_step(self, step: int) -> bool:
        """Whether a transmission happens at this control step."""
        return step % self._message_every == 0

    def is_sensor_step(self, step: int) -> bool:
        """Whether a sensor sample happens at this control step."""
        return step % self._sensor_every == 0
