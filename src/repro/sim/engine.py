"""The closed-loop simulation engine.

One engine instance binds a scenario to a communication setup; each
:meth:`SimulationEngine.run` executes a full episode with fresh channels,
sensors, estimators and behaviour profiles drawn from the run's seed
stream, so batches are embarrassingly parallel over seeds.

Per control step the engine follows the system model of Section II-A:

1. every non-ego vehicle picks its acceleration for the coming step
   (its profile), which also stamps the message/sensor content ``a_i(t)``;
2. on the sensing schedule, each sensor takes a noisy reading that goes
   straight to that vehicle's estimator (sensing is delay-free);
3. on the transmission schedule, each vehicle broadcasts its exact state
   into its channel (which may drop or delay it);
4. any messages whose delivery time has arrived reach the estimator;
5. terminal conditions (ground-truth collision, target reached, horizon)
   are checked on the *true* joint state;
6. the ego planner is invoked on its own state plus the fused estimates;
7. all vehicles step their saturating double-integrator dynamics.

Collision detection samples the true state once per control step; at the
paper's parameters (``dt_c = 0.05 s``, speeds <= 20 m/s, a 10 m unsafe
area) a vehicle moves at most 1 m per step, so overlap cannot be stepped
over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.comm.channel import Channel
from repro.comm.disturbance import DisturbanceModel, no_disturbance
from repro.comm.faults import FaultModel
from repro.dynamics.state import SystemState, VehicleState
from repro.dynamics.trajectory import Trajectory
from repro.dynamics.vehicle import VehicleModel
from repro.errors import SafetyViolationError, SimulationError
from repro.faults.plan import FaultInjector, FaultPlan
from repro.filtering.info_filter import EstimateProvider
from repro.obs.observer import resolve_observer
from repro.planners.base import Planner, PlanningContext, clipped
from repro.scenarios.base import Scenario
from repro.sensing.noise import NoiseBounds
from repro.sensing.sensor import Sensor
from repro.sim.clock import MultiRateClock
from repro.sim.results import Outcome, SimulationResult
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "CommSetup",
    "SimulationConfig",
    "SimulationEngine",
    "run_episode",
]

#: Builds a fresh estimator for one observed vehicle at the start of a run.
EstimatorFactory = Callable[[int], EstimateProvider]


@dataclass(frozen=True)
class CommSetup:
    """Communication and sensing parameters of one experiment setting.

    Attributes
    ----------
    dt_m, dt_s:
        Transmission and sensing periods (multiples of the control
        period; the paper sets ``dt_m = dt_s``).
    disturbance:
        The channel's drop/delay model (the paper's presets).
    sensor_bounds:
        Uniform noise bounds of the onboard sensor.
    faults:
        Optional composable channel fault model
        (:mod:`repro.comm.faults`); when set it *replaces* the
        ``disturbance`` preset on every channel (burst loss, jitter,
        duplication, and compositions thereof).

    Units: dt_m [s], dt_s [s]
    """

    dt_m: float
    dt_s: float
    disturbance: DisturbanceModel
    sensor_bounds: NoiseBounds
    faults: Optional[FaultModel] = None

    @classmethod
    def perfect(cls, dt_m: float = 0.1) -> "CommSetup":
        """Lossless, immediate messages and noiseless sensing."""
        return cls(
            dt_m=dt_m,
            dt_s=dt_m,
            disturbance=no_disturbance(),
            sensor_bounds=NoiseBounds.noiseless(),
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Engine-level knobs.

    Attributes
    ----------
    max_time:
        Horizon; a run that neither collides nor reaches by then scores
        ``eta = 0``.
    strict_safety:
        Raise :class:`~repro.errors.SafetyViolationError` on a collision
        instead of recording it.  Used when simulating compound planners
        whose safety the theorem guarantees — a violation then means a
        bug, not a data point.
    record_trajectories:
        Disable to save memory in very large batches.
    fault_plan:
        Optional engine-level fault schedule (:mod:`repro.faults`);
        ``None`` (the default) injects nothing and leaves runs
        byte-identical to the pre-fault engine.

    Units: max_time [s]
    """

    max_time: float = 30.0
    strict_safety: bool = False
    record_trajectories: bool = True
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        check_positive(self.max_time, "max_time")


class SimulationEngine:
    """Runs closed-loop episodes of a scenario under one comm setup."""

    def __init__(
        self,
        scenario: Scenario,
        comm: CommSetup,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self._scenario = scenario
        self._comm = comm
        self._config = config if config is not None else SimulationConfig()
        self._clock = MultiRateClock(scenario.dt_c, comm.dt_m, comm.dt_s)
        self._models = {
            i: VehicleModel(scenario.vehicle_limits(i))
            for i in range(scenario.n_vehicles)
        }

    @property
    def scenario(self) -> Scenario:
        """The scenario being simulated."""
        return self._scenario

    @property
    def comm(self) -> CommSetup:
        """The communication setup."""
        return self._comm

    @property
    def config(self) -> SimulationConfig:
        """The engine-level configuration."""
        return self._config

    @property
    def clock(self) -> MultiRateClock:
        """The multi-rate schedule."""
        return self._clock

    # ------------------------------------------------------------------
    # One episode
    # ------------------------------------------------------------------
    def run(
        self,
        planner: Planner,
        estimator_factory: EstimatorFactory,
        rng: RngStream,
        observer=None,
    ) -> SimulationResult:
        """Execute one full episode.

        Parameters
        ----------
        planner:
            The ego planner; if it exposes ``reset()`` (the compound
            planner does) it is reset first, and if it exposes
            ``last_decision`` the emergency step counter is derived from
            it.
        estimator_factory:
            Builds one fresh estimator per observed vehicle.
        rng:
            The run's seed stream; all stochastic components draw from
            independent children of it.
        observer:
            Optional :class:`~repro.obs.observer.Observer`; records
            per-step spans and per-stage timing.  Observation is
            write-only — traced runs are bit-identical to untraced ones.

        Effects: mutates-args, draws-rng
        """
        obs = resolve_observer(observer)
        traced = obs.enabled
        scenario = self._scenario
        n = scenario.n_vehicles
        others = range(1, n)

        # Child 4 feeds fault-plan activation; spawning it unconditionally
        # keeps children 0-3 (and so every fault-free run) byte-identical
        # to the pre-fault engine.
        init_rng, profile_rng, channel_rng, sensor_rng, fault_rng = rng.spawn(5)
        profile_streams = profile_rng.spawn(n)
        channel_streams = channel_rng.spawn(n)
        sensor_streams = sensor_rng.spawn(n)

        state = scenario.initial_state(init_rng)
        profiles = {i: scenario.profile_for(i, profile_streams[i]) for i in others}
        if self._comm.faults is not None:
            channels = {
                i: Channel(
                    period=self._comm.dt_m,
                    rng=channel_streams[i],
                    faults=self._comm.faults,
                    observer=obs,
                    name=f"veh{i}",
                )
                for i in others
            }
        else:
            channels = {
                i: Channel(
                    period=self._comm.dt_m,
                    disturbance=self._comm.disturbance,
                    rng=channel_streams[i],
                    observer=obs,
                    name=f"veh{i}",
                )
                for i in others
            }
        injector: Optional[FaultInjector] = None
        if self._config.fault_plan is not None and not self._config.fault_plan.is_empty:
            injector = self._config.fault_plan.compile(fault_rng)
        sensors = {
            i: Sensor(
                target=i,
                period=self._comm.dt_s,
                bounds=self._comm.sensor_bounds,
                rng=sensor_streams[i],
            )
            for i in others
        }
        estimators = {i: estimator_factory(i) for i in others}

        if hasattr(planner, "reset"):
            planner.reset()

        trajectories = (
            [Trajectory() for _ in range(n)]
            if self._config.record_trajectories
            else []
        )
        emergency_steps = 0
        planned_steps = 0
        outcome = Outcome.TIMEOUT
        collision_time: Optional[float] = None
        reaching_time: Optional[float] = None

        dt = self._clock.dt_c
        n_steps = int(round(self._config.max_time / dt))

        run_handle = obs.begin("engine.run", n_steps=n_steps) if traced else -1
        step_handle = -1
        for step in range(n_steps + 1):
            t = self._clock.time_of(step)
            if traced:
                step_handle = obs.begin("engine.step", step=step, t=t)

            # 1. Non-ego commands for the coming step stamp the content
            #    of this step's messages and sensor readings.
            stage = obs.begin("engine.profile") if traced else -1
            commands: Dict[int, float] = {}
            stamped: Dict[int, VehicleState] = {}
            for i in others:
                commands[i] = profiles[i](step, t, state.vehicle(i))
                stamped[i] = state.vehicle(i).with_acceleration(commands[i])
            if traced:
                obs.end(stage)

            # 2-4. Sensing, transmission, delivery.  Faulted sensors still
            # draw their noise (the reading is taken, then filtered), so a
            # dropout never shifts the random sequence of later readings.
            if self._clock.is_sensor_step(step):
                stage = obs.begin("engine.sense") if traced else -1
                for i in others:
                    reading = sensors[i].measure(t, stamped[i])
                    if injector is not None:
                        faulted = injector.apply_sensor(step, i, reading)
                        if faulted is None:
                            continue
                        reading = faulted
                    estimators[i].on_sensor_reading(reading)
                if traced:
                    obs.end(stage)
            stage = obs.begin("engine.comm") if traced else -1
            if self._clock.is_message_step(step):
                for i in others:
                    channels[i].send(i, t, stamped[i])
            for i in others:
                for message in channels[i].receive(t):
                    estimators[i].on_message(message, t)
            if traced:
                obs.end(stage)

            # 5. Terminal checks on the true joint state.
            if scenario.is_collision(state):
                collision_time = t
                outcome = Outcome.COLLISION
                self._record(trajectories, t, state.ego, stamped, terminal=True)
                if traced:
                    obs.instant("engine.collision", t=t)
                    obs.end(step_handle)
                if self._config.strict_safety:
                    raise SafetyViolationError(
                        f"planner entered the unsafe set at t={t:.3f}s"
                    )
                break
            if scenario.reached_target(state):
                reaching_time = t
                outcome = Outcome.REACHED
                self._record(trajectories, t, state.ego, stamped, terminal=True)
                if traced:
                    obs.instant("engine.reached", t=t)
                    obs.end(step_handle)
                break
            if step == n_steps:
                self._record(trajectories, t, state.ego, stamped, terminal=True)
                if traced:
                    obs.end(step_handle)
                break

            # 6. Plan.
            stage = obs.begin("engine.estimate") if traced else -1
            estimates = {i: estimators[i].estimate(t) for i in others}
            if traced:
                obs.end(stage)
            stage = obs.begin("engine.plan") if traced else -1
            context = PlanningContext(time=t, ego=state.ego, estimates=estimates)
            if injector is not None:
                ego_command, planner_called = injector.plan(
                    step, planner, context, scenario.vehicle_limits(0)
                )
                # Injected NaN (and any out-of-range fault command) must
                # not corrupt the dynamics: sanitise like the compound
                # planner does.
                ego_command = clipped(ego_command, scenario.vehicle_limits(0))
            else:
                ego_command = planner.plan(context)
                planner_called = True
            if traced:
                obs.end(stage)
            planned_steps += 1
            decision = (
                getattr(planner, "last_decision", None) if planner_called else None
            )
            if decision is not None and decision.use_emergency:
                emergency_steps += 1

            self._record(
                trajectories,
                t,
                state.ego.with_acceleration(ego_command),
                stamped,
                terminal=False,
            )

            # 7. Step the dynamics.
            stage = obs.begin("engine.act") if traced else -1
            new_vehicles = [self._models[0].step(state.ego, ego_command, dt)]
            for i in others:
                new_vehicles.append(
                    self._models[i].step(state.vehicle(i), commands[i], dt)
                )
            state = SystemState(time=t + dt, vehicles=tuple(new_vehicles))
            if traced:
                obs.end(stage)
                obs.end(step_handle)

        if traced:
            obs.end(
                run_handle, outcome=outcome.value, planned_steps=planned_steps
            )
            obs.count("engine.runs")
            obs.count("engine.planned_steps", planned_steps)

        if planned_steps == 0 and outcome is Outcome.TIMEOUT:
            raise SimulationError("simulation ended without planning any step")

        return SimulationResult(
            outcome=outcome,
            reaching_time=reaching_time,
            collision_time=collision_time,
            steps=planned_steps,
            emergency_steps=emergency_steps,
            trajectories=trajectories,
            channel_stats={i: channels[i].stats for i in others},
            sensor_faults_injected=(
                0 if injector is None else injector.sensor_faults_injected
            ),
            planner_faults_injected=(
                0 if injector is None else injector.planner_faults_injected
            ),
        )

    # ------------------------------------------------------------------
    def _record(
        self,
        trajectories,
        t: float,
        ego: VehicleState,
        stamped: Dict[int, VehicleState],
        terminal: bool,
    ) -> None:
        if not self._config.record_trajectories:
            return
        trajectories[0].append(t, ego)
        for i, vehicle_state in stamped.items():
            trajectories[i].append(t, vehicle_state)


# ---------------------------------------------------------------------------
# Module-level episode entry point
# ---------------------------------------------------------------------------
def run_episode(
    engine: SimulationEngine,
    planner: Planner,
    estimator_factory: EstimatorFactory,
    rng: RngStream,
    observer=None,
) -> SimulationResult:
    """Run one scalar episode — the stable batching contract.

    The vectorized batch engine (ROADMAP item 1) will run thousands of
    episodes in lock step while keeping this function's semantics as
    its per-lane specification, so its effect envelope is the contract
    the migration certifies against: ``repro-lint --batch-report
    run_episode`` reports every effectful function reachable from here,
    and SFL301 forbids anything in that set from mutating module-global
    state.

    Effects: mutates-args, draws-rng
    """
    return engine.run(planner, estimator_factory, rng, observer=observer)
