"""JSON archiving of simulation results.

Campaign outputs (thousands of :class:`SimulationResult` records) need
to outlive the process that produced them — for EXPERIMENTS.md-style
reporting, cross-machine comparison, and regression tracking.  This
module serialises result batches to a single JSON document (optionally
with trajectories) and restores them with full fidelity for everything
the aggregate statistics consume.

Schema versioning
-----------------

Every persisted record (result, failure, journal entry, chunk snapshot)
carries a ``schema_version`` of the form ``"<major>.<minor>"``:

* a **minor** bump adds fields; readers ignore fields they do not know,
  so any ``1.x`` record loads under any ``1.y`` reader;
* a **major** bump changes the meaning of existing fields; a record
  whose major differs from :data:`SCHEMA_VERSION`'s is rejected with a
  clear error instead of being silently misread.

Records written before versioning existed carry no ``schema_version``
and are treated as major 1.

:func:`canonical_dumps` is the byte-stable encoding (sorted keys, no
whitespace) used wherever a digest or fingerprint is computed over a
record, so checksums are reproducible across processes and platforms.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.comm.channel import ChannelStats
from repro.dynamics.state import VehicleState
from repro.dynamics.trajectory import Trajectory
from repro.errors import SerializationError
from repro.sim.results import FailureRecord, Outcome, SimulationResult

__all__ = [
    "SCHEMA_VERSION",
    "canonical_dumps",
    "content_digest",
    "check_schema_version",
    "save_results",
    "load_results",
    "result_to_dict",
    "result_from_dict",
    "failure_to_dict",
    "failure_from_dict",
]

_FORMAT_VERSION = 1

#: ``"<major>.<minor>"`` stamped on every record this build writes.
SCHEMA_VERSION = "1.0"
_SCHEMA_MAJOR = int(SCHEMA_VERSION.split(".")[0])


def canonical_dumps(obj: object) -> str:
    """Byte-stable JSON encoding: sorted keys, no whitespace.

    The canonical form is what fingerprints and record checksums hash,
    so two processes serialising the same logical record always produce
    the same digest.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_digest(obj: object) -> str:
    """SHA-256 hex digest of an object's canonical JSON encoding."""
    return hashlib.sha256(canonical_dumps(obj).encode("utf-8")).hexdigest()


def check_schema_version(record: dict, what: str) -> Tuple[int, int]:
    """Validate a record's ``schema_version``; return ``(major, minor)``.

    A missing version means the record predates versioning and is read
    as ``1.0``.  A different *major* is rejected — those records are not
    merely extended, their fields mean something else.  A newer *minor*
    under the same major is accepted: readers ignore unknown fields.
    """
    raw = record.get("schema_version")
    if raw is None:
        return 1, 0
    try:
        major_text, minor_text = str(raw).split(".", 1)
        major, minor = int(major_text), int(minor_text)
    except ValueError as exc:
        raise SerializationError(
            f"{what} has malformed schema_version {raw!r}; expected "
            f"'<major>.<minor>' like {SCHEMA_VERSION!r}"
        ) from exc
    if major != _SCHEMA_MAJOR:
        raise SerializationError(
            f"{what} was written with schema major version {major} "
            f"({raw!r}); this build reads schema major {_SCHEMA_MAJOR} "
            f"({SCHEMA_VERSION!r}) and cannot safely interpret it — "
            "re-generate the record or use a matching build"
        )
    return major, minor


def result_to_dict(
    result: SimulationResult, include_trajectories: bool = False
) -> dict:
    """One result as a JSON-serialisable dict."""
    record = {
        "schema_version": SCHEMA_VERSION,
        "outcome": result.outcome.value,
        "reaching_time": result.reaching_time,
        "collision_time": result.collision_time,
        "steps": result.steps,
        "emergency_steps": result.emergency_steps,
        "sensor_faults_injected": result.sensor_faults_injected,
        "planner_faults_injected": result.planner_faults_injected,
        "channel_stats": {
            str(index): {
                "sent": stats.sent,
                "dropped": stats.dropped,
                "delivered": stats.delivered,
                "total_delay": stats.total_delay,
                "duplicated": getattr(stats, "duplicated", 0),
                "out_of_order": getattr(stats, "out_of_order", 0),
            }
            for index, stats in result.channel_stats.items()
            if isinstance(stats, ChannelStats)
        },
    }
    if include_trajectories and result.trajectories:
        record["trajectories"] = [
            [
                [p.time, p.position, p.velocity, p.acceleration]
                for p in trajectory
            ]
            for trajectory in result.trajectories
        ]
    return record


def result_from_dict(record: dict) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output.

    Unknown fields (from newer minor versions) are ignored; a record
    from a different schema *major* raises
    :class:`~repro.errors.SerializationError`.
    """
    check_schema_version(record, "result record")
    try:
        outcome = Outcome(record["outcome"])
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"invalid result record: {exc}") from exc
    trajectories: List[Trajectory] = []
    for rows in record.get("trajectories", []):
        trajectory = Trajectory()
        for t, p, v, a in rows:
            trajectory.append(
                t, VehicleState(position=p, velocity=v, acceleration=a)
            )
        trajectories.append(trajectory)
    channel_stats: Dict[int, ChannelStats] = {}
    for index, stats in record.get("channel_stats", {}).items():
        channel_stats[int(index)] = ChannelStats(
            sent=int(stats["sent"]),
            dropped=int(stats["dropped"]),
            delivered=int(stats["delivered"]),
            total_delay=float(stats.get("total_delay", 0.0)),
            duplicated=int(stats.get("duplicated", 0)),
            out_of_order=int(stats.get("out_of_order", 0)),
        )
    return SimulationResult(
        outcome=outcome,
        reaching_time=record.get("reaching_time"),
        collision_time=record.get("collision_time"),
        steps=int(record.get("steps", 0)),
        emergency_steps=int(record.get("emergency_steps", 0)),
        trajectories=trajectories,
        channel_stats=channel_stats,
        sensor_faults_injected=int(record.get("sensor_faults_injected", 0)),
        planner_faults_injected=int(record.get("planner_faults_injected", 0)),
    )


def failure_to_dict(failure: FailureRecord) -> dict:
    """One failure record as a JSON-serialisable dict."""
    return {
        "schema_version": SCHEMA_VERSION,
        "index": failure.index,
        "stage": failure.stage,
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
    }


def failure_from_dict(record: dict) -> FailureRecord:
    """Rebuild a failure record from :func:`failure_to_dict` output."""
    check_schema_version(record, "failure record")
    try:
        return FailureRecord(
            index=int(record["index"]),
            stage=str(record["stage"]),
            error_type=str(record["error_type"]),
            message=str(record["message"]),
            attempts=int(record.get("attempts", 1)),
        )
    except KeyError as exc:
        raise SerializationError(f"invalid failure record: {exc}") from exc


def save_results(
    results: Sequence[SimulationResult],
    path: Union[str, Path],
    metadata: Optional[dict] = None,
    include_trajectories: bool = False,
) -> Path:
    """Write a batch (plus free-form metadata) to a JSON file.

    Returns the path written (``.json`` appended if missing).
    """
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(".json")
    document = {
        "format_version": _FORMAT_VERSION,
        "schema_version": SCHEMA_VERSION,
        "metadata": metadata or {},
        "results": [
            result_to_dict(r, include_trajectories=include_trajectories)
            for r in results
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document))
    return path


def load_results(
    path: Union[str, Path],
) -> tuple:
    """Load a batch saved by :func:`save_results`.

    Returns ``(results, metadata)``.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no results file at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt results file {path}: {exc}") from exc
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported results format version {version!r}"
        )
    check_schema_version(document, f"results file {path}")
    results = [result_from_dict(r) for r in document.get("results", [])]
    return results, document.get("metadata", {})
