"""JSON archiving of simulation results.

Campaign outputs (thousands of :class:`SimulationResult` records) need
to outlive the process that produced them — for EXPERIMENTS.md-style
reporting, cross-machine comparison, and regression tracking.  This
module serialises result batches to a single JSON document (optionally
with trajectories) and restores them with full fidelity for everything
the aggregate statistics consume.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.comm.channel import ChannelStats
from repro.dynamics.state import VehicleState
from repro.dynamics.trajectory import Trajectory
from repro.errors import SerializationError
from repro.sim.results import Outcome, SimulationResult

__all__ = ["save_results", "load_results", "result_to_dict", "result_from_dict"]

_FORMAT_VERSION = 1


def result_to_dict(
    result: SimulationResult, include_trajectories: bool = False
) -> dict:
    """One result as a JSON-serialisable dict."""
    record = {
        "outcome": result.outcome.value,
        "reaching_time": result.reaching_time,
        "collision_time": result.collision_time,
        "steps": result.steps,
        "emergency_steps": result.emergency_steps,
        "channel_stats": {
            str(index): {
                "sent": stats.sent,
                "dropped": stats.dropped,
                "delivered": stats.delivered,
                "total_delay": stats.total_delay,
            }
            for index, stats in result.channel_stats.items()
            if isinstance(stats, ChannelStats)
        },
    }
    if include_trajectories and result.trajectories:
        record["trajectories"] = [
            [
                [p.time, p.position, p.velocity, p.acceleration]
                for p in trajectory
            ]
            for trajectory in result.trajectories
        ]
    return record


def result_from_dict(record: dict) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    try:
        outcome = Outcome(record["outcome"])
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"invalid result record: {exc}") from exc
    trajectories: List[Trajectory] = []
    for rows in record.get("trajectories", []):
        trajectory = Trajectory()
        for t, p, v, a in rows:
            trajectory.append(
                t, VehicleState(position=p, velocity=v, acceleration=a)
            )
        trajectories.append(trajectory)
    channel_stats: Dict[int, ChannelStats] = {}
    for index, stats in record.get("channel_stats", {}).items():
        channel_stats[int(index)] = ChannelStats(
            sent=int(stats["sent"]),
            dropped=int(stats["dropped"]),
            delivered=int(stats["delivered"]),
            total_delay=float(stats.get("total_delay", 0.0)),
        )
    return SimulationResult(
        outcome=outcome,
        reaching_time=record.get("reaching_time"),
        collision_time=record.get("collision_time"),
        steps=int(record.get("steps", 0)),
        emergency_steps=int(record.get("emergency_steps", 0)),
        trajectories=trajectories,
        channel_stats=channel_stats,
    )


def save_results(
    results: Sequence[SimulationResult],
    path: Union[str, Path],
    metadata: Optional[dict] = None,
    include_trajectories: bool = False,
) -> Path:
    """Write a batch (plus free-form metadata) to a JSON file.

    Returns the path written (``.json`` appended if missing).
    """
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(".json")
    document = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "results": [
            result_to_dict(r, include_trajectories=include_trajectories)
            for r in results
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document))
    return path


def load_results(
    path: Union[str, Path],
) -> tuple:
    """Load a batch saved by :func:`save_results`.

    Returns ``(results, metadata)``.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no results file at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt results file {path}: {exc}") from exc
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported results format version {version!r}"
        )
    results = [result_from_dict(r) for r in document.get("results", [])]
    return results, document.get("metadata", {})
