"""Multiprocess batch execution.

The paper runs 80 000 simulations per (setting, planner) cell; at
~10 ms/episode a single process needs ~15 minutes per cell.  This module
distributes a seeded batch over worker processes while preserving the
*exact* per-simulation seeding of :class:`repro.sim.runner.BatchRunner` —
simulation ``k`` of a batch uses child ``k`` of the batch seed no matter
which worker executes it, so parallel results are bit-identical to
sequential ones and paired statistics remain exact.

Everything shipped to workers (scenario, comm setup, planner) must be
picklable; all planners and scenarios in this library are.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.planners.base import Planner
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import SimulationResult
from repro.sim.runner import EstimatorKind, make_estimator_factory
from repro.scenarios.base import Scenario
from repro.utils.rng import RngStream

__all__ = ["ParallelBatchRunner", "run_chunk"]


def run_chunk(
    scenario: Scenario,
    comm: CommSetup,
    config: SimulationConfig,
    planner: Planner,
    estimator_kind: EstimatorKind,
    seed: int,
    indices: Sequence[int],
    n_sims: int,
) -> List[tuple]:
    """Worker entry point: run the given simulation indices of a batch.

    Re-derives the batch's seed sequence locally and runs only the
    requested indices, returning ``(index, result)`` pairs.  Module-level
    (not a closure) so it pickles under the default start method.
    """
    engine = SimulationEngine(scenario, comm, config)
    factory = make_estimator_factory(estimator_kind, engine)
    streams = RngStream(seed).spawn(n_sims)
    out = []
    for index in indices:
        out.append((index, engine.run(planner, factory, streams[index])))
    return out


class ParallelBatchRunner:
    """Seed-preserving multiprocess counterpart of ``BatchRunner``.

    Parameters
    ----------
    scenario, comm, config:
        The simulation setup (shipped to every worker).
    estimator_kind:
        Which estimate provider each run uses.
    n_workers:
        Process count; defaults to ``os.cpu_count()``.

    Notes
    -----
    Results are returned in simulation order regardless of worker
    scheduling, so ``winning_percentage`` and friends work unchanged.
    Trajectory recording is disabled by default for parallel batches
    (shipping thousands of trajectories back through pickling dominates
    the runtime); pass a config with ``record_trajectories=True`` to
    override.
    """

    def __init__(
        self,
        scenario: Scenario,
        comm: CommSetup,
        config: Optional[SimulationConfig] = None,
        estimator_kind: EstimatorKind = EstimatorKind.FILTERED,
        n_workers: Optional[int] = None,
    ) -> None:
        if config is None:
            config = SimulationConfig(record_trajectories=False)
        self._scenario = scenario
        self._comm = comm
        self._config = config
        self._kind = estimator_kind
        self._n_workers = n_workers if n_workers is not None else (
            os.cpu_count() or 1
        )
        if self._n_workers < 1:
            raise SimulationError(
                f"n_workers must be >= 1, got {self._n_workers}"
            )

    @property
    def n_workers(self) -> int:
        """Worker process count."""
        return self._n_workers

    def run_batch(
        self, planner: Planner, n_sims: int, seed: int = 0
    ) -> List[SimulationResult]:
        """Run ``n_sims`` episodes, bit-identical to the sequential runner."""
        if n_sims <= 0:
            raise SimulationError(f"n_sims must be > 0, got {n_sims}")
        workers = min(self._n_workers, n_sims)
        if workers == 1:
            pairs = run_chunk(
                self._scenario,
                self._comm,
                self._config,
                planner,
                self._kind,
                seed,
                range(n_sims),
                n_sims,
            )
            return [result for _, result in pairs]

        # Contiguous index chunks, one per worker.
        chunks = [list(range(n_sims))[i::workers] for i in range(workers)]
        results: List[Optional[SimulationResult]] = [None] * n_sims
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    run_chunk,
                    self._scenario,
                    self._comm,
                    self._config,
                    planner,
                    self._kind,
                    seed,
                    chunk,
                    n_sims,
                )
                for chunk in chunks
                if chunk
            ]
            for future in futures:
                for index, result in future.result():
                    results[index] = result
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise SimulationError(
                f"parallel batch lost results for indices {missing[:5]}..."
            )
        return results  # type: ignore[return-value]
