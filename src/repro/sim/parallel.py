"""Crash-tolerant multiprocess batch execution.

The paper runs 80 000 simulations per (setting, planner) cell; at
~10 ms/episode a single process needs ~15 minutes per cell.  This module
distributes a seeded batch over worker processes while preserving the
*exact* per-simulation seeding of :class:`repro.sim.runner.BatchRunner` —
simulation ``k`` of a batch uses child ``k`` of the batch seed no matter
which worker executes it (or how often it is retried), so parallel
results are bit-identical to sequential ones and paired statistics
remain exact.

Failure containment
-------------------

A cell-sized batch must survive infrastructure faults without discarding
completed episodes.  :meth:`ParallelBatchRunner.run_batch_detailed`
isolates every failure to the chunk it occurred in:

* an exception *inside* one simulation is caught in the worker and
  returned as a tagged error entry — sibling simulations in the chunk
  are unaffected, and the error is final (same seed, same exception);
* a dying worker (``BrokenProcessPool``), an unpicklable or malformed
  payload, and an expired per-simulation time budget fail only that
  chunk's indices, which are retried in later rounds as single-index
  chunks with the *same* seeds (each round gets a fresh pool — a broken
  pool cannot run further work);
* indices still failing after ``max_retries`` extra attempts surface as
  :class:`~repro.sim.results.FailureRecord` entries in the
  :class:`~repro.sim.results.BatchResult`, never as a batch-wide raise.

:meth:`ParallelBatchRunner.run_batch` keeps the historical all-or-raise
contract on top of the same machinery.

Everything shipped to workers (scenario, comm setup, planner) must be
picklable; all planners and scenarios in this library are.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.faults.chaos import WorkerChaosOnce
from repro.obs.observer import resolve_observer
from repro.planners.base import Planner
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import (
    BatchResult,
    ChunkResult,
    FailureRecord,
    SimulationResult,
)
from repro.sim.runner import EstimatorKind, make_estimator_factory
from repro.scenarios.base import Scenario
from repro.utils.rng import RngStream

__all__ = ["ParallelBatchRunner", "run_chunk"]


def run_chunk(
    scenario: Scenario,
    comm: CommSetup,
    config: SimulationConfig,
    planner: Planner,
    estimator_kind: EstimatorKind,
    seed: int,
    indices: Sequence[int],
    n_sims: int,
    chaos: Optional[WorkerChaosOnce] = None,
    observer=None,
    progress: Optional[Callable[[int], None]] = None,
) -> List[tuple]:
    """Worker entry point: run the given simulation indices of a batch.

    Re-derives the batch's seed sequence locally and runs only the
    requested indices, returning one tagged tuple per index —
    ``(index, "ok", result)`` for a completed simulation or
    ``(index, "error", error_type, message)`` when that simulation
    raised (siblings in the chunk still run).  Module-level (not a
    closure) so it pickles under the default start method.

    ``chaos`` is the test/benchmark hook that makes the first claiming
    invocation misbehave (crash / garbage payload / hang); production
    batches leave it ``None``.

    ``observer`` is only ever passed on the in-process fast path —
    observers are not picklable and never cross a process boundary, so
    pool workers always run untraced (which is bit-identical anyway).

    ``progress`` is called with each index as it finishes (ok or error)
    — the shard worker's liveness hook: heartbeats are emitted *during*
    a chunk, not just between chunks.  In-process fast path only, like
    ``observer``; callbacks never cross a process boundary.  Write-only
    with respect to results: the callback sees only the index, so it
    cannot perturb the bit-identity contract.
    """
    if chaos is not None and chaos.apply():
        return ["chaos: malformed payload"]  # type: ignore[list-item]
    obs = resolve_observer(observer)
    engine = SimulationEngine(scenario, comm, config)
    factory = make_estimator_factory(estimator_kind, engine, observer=observer)
    streams = RngStream(seed).spawn(n_sims)
    out: List[tuple] = []
    for index in indices:
        # Fault-tolerance boundary: one blown-up episode must not take
        # its chunk siblings down with it; the error is shipped back as
        # data and recorded by the parent.
        try:
            if obs.enabled:
                with obs.span("batch.sim", index=index, seed=seed):
                    result = engine.run(
                        planner, factory, streams[index], observer=obs
                    )
            else:
                result = engine.run(planner, factory, streams[index])
            out.append((index, "ok", result))
        except Exception as exc:  # safelint: disable=SFL003 - returned as tagged error entry
            out.append((index, "error", type(exc).__name__, str(exc)))
        if progress is not None:
            progress(index)
    return out


class ParallelBatchRunner:
    """Seed-preserving, crash-tolerant multiprocess ``BatchRunner``.

    Parameters
    ----------
    scenario, comm, config:
        The simulation setup (shipped to every worker).
    estimator_kind:
        Which estimate provider each run uses.
    n_workers:
        Process count; defaults to ``os.cpu_count()``.
    max_retries:
        Extra attempts granted to indices whose *chunk* failed (worker
        death, malformed payload, timeout) before they become
        :class:`~repro.sim.results.FailureRecord` entries.  In-episode
        exceptions are deterministic under the seeding scheme and are
        never retried.
    timeout_per_sim:
        Optional per-simulation time budget; a chunk of ``m`` indices is
        given ``m * timeout_per_sim`` seconds before its workers are
        terminated and the indices retried.  ``None`` disables the
        watchdog.
    chaos:
        Optional :class:`~repro.faults.chaos.WorkerChaosOnce` hook
        injected into every chunk (tests / chaos benchmark only).
    observer:
        Optional :class:`~repro.obs.observer.Observer`.  Reaches the
        simulation engines only on the in-process fast path
        (``n_workers == 1``, no chaos, no timeout) — observers never
        cross a process boundary; on multiprocess runs it still records
        parent-side chunk spans and retry counters.

    Notes
    -----
    Results are returned in simulation order regardless of worker
    scheduling, so ``winning_percentage`` and friends work unchanged.
    Trajectory recording is disabled by default for parallel batches
    (shipping thousands of trajectories back through pickling dominates
    the runtime); pass a config with ``record_trajectories=True`` to
    override.

    Units: timeout_per_sim [s]
    """

    def __init__(
        self,
        scenario: Scenario,
        comm: CommSetup,
        config: Optional[SimulationConfig] = None,
        estimator_kind: EstimatorKind = EstimatorKind.FILTERED,
        n_workers: Optional[int] = None,
        max_retries: int = 2,
        timeout_per_sim: Optional[float] = None,
        chaos: Optional[WorkerChaosOnce] = None,
        observer=None,
    ) -> None:
        if isinstance(scenario, SimulationEngine):
            raise SimulationError(
                "ParallelBatchRunner takes (scenario, comm, config), not a "
                "SimulationEngine; each worker builds its own engine. Pass "
                "engine.scenario / engine.comm / engine.config instead."
            )
        if config is None:
            config = SimulationConfig(record_trajectories=False)
        self._scenario = scenario
        self._comm = comm
        self._config = config
        self._kind = estimator_kind
        self._n_workers = n_workers if n_workers is not None else (
            os.cpu_count() or 1
        )
        if self._n_workers < 1:
            raise SimulationError(
                f"n_workers must be >= 1, got {self._n_workers}"
            )
        if max_retries < 0:
            raise SimulationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if timeout_per_sim is not None and timeout_per_sim <= 0.0:
            raise SimulationError(
                f"timeout_per_sim must be > 0, got {timeout_per_sim}"
            )
        self._max_retries = max_retries
        self._timeout_per_sim = timeout_per_sim
        self._chaos = chaos
        self._obs = resolve_observer(observer)

    @property
    def n_workers(self) -> int:
        """Worker process count."""
        return self._n_workers

    @property
    def max_retries(self) -> int:
        """Extra attempts granted to chunk-level failures."""
        return self._max_retries

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_batch(
        self, planner: Planner, n_sims: int, seed: int = 0
    ) -> List[SimulationResult]:
        """Run ``n_sims`` episodes, bit-identical to the sequential runner.

        Raises :class:`~repro.errors.SimulationError` if any simulation
        is irrecoverable; use :meth:`run_batch_detailed` to keep the
        surviving episodes instead.
        """
        return self.run_batch_detailed(planner, n_sims, seed).require_complete()

    def run_batch_detailed(
        self, planner: Planner, n_sims: int, seed: int = 0
    ) -> BatchResult:
        """Fault-tolerant batch over worker processes.

        Matches :meth:`repro.sim.runner.BatchRunner.run_batch_detailed`
        episode-for-episode: simulation ``k`` either yields the result
        the sequential runner would produce (bit-identical, even when
        its chunk was retried after a worker crash) or a
        :class:`~repro.sim.results.FailureRecord` at index ``k``.
        """
        if n_sims <= 0:
            raise SimulationError(f"n_sims must be > 0, got {n_sims}")
        results, failures = self._run_indices(
            planner, list(range(n_sims)), n_sims, seed
        )
        return BatchResult(
            results=[results.get(k) for k in range(n_sims)],
            failures=failures,
        )

    def run_indices_detailed(
        self,
        planner: Planner,
        indices: Sequence[int],
        n_sims: int,
        seed: int = 0,
        progress: Optional[Callable[[int], None]] = None,
    ) -> ChunkResult:
        """Run a *subset* of a batch's indices with full fault tolerance.

        The campaign layer's chunk primitive: simulation ``k`` of the
        conceptual ``n_sims``-sized batch is seeded from child ``k`` of
        the batch seed exactly as in :meth:`run_batch_detailed`, so
        running a partition of ``range(n_sims)`` chunk by chunk — across
        processes, interruptions, or machines — concatenates to results
        bit-identical to one uninterrupted batch.

        ``progress`` (optional) is called with each finished index on
        the in-process fast path only (``n_workers == 1``, no chaos, no
        timeout); multiprocess rounds ignore it — callbacks never cross
        a process boundary.
        """
        if n_sims <= 0:
            raise SimulationError(f"n_sims must be > 0, got {n_sims}")
        idx = list(indices)
        if not idx:
            raise SimulationError("indices must be non-empty")
        if len(set(idx)) != len(idx):
            raise SimulationError(f"indices must be unique, got {idx}")
        for index in idx:
            if not 0 <= index < n_sims:
                raise SimulationError(
                    f"index {index} outside batch of {n_sims}"
                )
        idx.sort()
        results, failures = self._run_indices(
            planner, idx, n_sims, seed, progress=progress
        )
        return ChunkResult(indices=idx, results=results, failures=failures)

    # ------------------------------------------------------------------
    # Shared index-keyed pipeline
    # ------------------------------------------------------------------
    def _run_indices(
        self,
        planner: Planner,
        indices: List[int],
        n_sims: int,
        seed: int,
        progress: Optional[Callable[[int], None]] = None,
    ) -> Tuple[Dict[int, SimulationResult], List[FailureRecord]]:
        """Run ``indices`` of the batch; results keyed by global index."""
        workers = min(self._n_workers, len(indices))
        if (
            workers == 1
            and self._chaos is None
            and self._timeout_per_sim is None
        ):
            # In-process fast path: no pool to crash, no watchdog to arm.
            payload = run_chunk(
                self._scenario,
                self._comm,
                self._config,
                planner,
                self._kind,
                seed,
                indices,
                n_sims,
                observer=(self._obs if self._obs.enabled else None),
                progress=progress,
            )
            results: Dict[int, SimulationResult] = {}
            failures: List[FailureRecord] = []
            for entry in payload:
                if entry[1] == "ok":
                    results[entry[0]] = entry[2]
                else:
                    failures.append(
                        FailureRecord(
                            index=entry[0],
                            stage="simulation",
                            error_type=entry[2],
                            message=entry[3],
                            attempts=1,
                        )
                    )
            return results, failures

        results = {}
        attempts: Dict[int, int] = {index: 0 for index in indices}
        #: index -> (stage, error_type, message) of its latest failure.
        last_error: Dict[int, Tuple[str, str, str]] = {}
        final: set = set()  # indices whose failure is not retryable

        # Round 0: round-robin chunks, one per worker, so long and short
        # episodes interleave evenly.  Later rounds re-run failed indices
        # as single-index chunks for maximum isolation.
        pending: List[List[int]] = [
            chunk
            for chunk in (indices[i::workers] for i in range(workers))
            if chunk
        ]
        round_no = 0
        while pending:
            retry: List[int] = []
            if self._obs.enabled:
                with self._obs.span(
                    "batch.round", round=round_no, chunks=len(pending)
                ):
                    self._run_round(
                        pending,
                        planner,
                        seed,
                        n_sims,
                        results,
                        attempts,
                        last_error,
                        final,
                    )
            else:
                self._run_round(
                    pending,
                    planner,
                    seed,
                    n_sims,
                    results,
                    attempts,
                    last_error,
                    final,
                )
            for chunk in pending:
                for index in chunk:
                    if index in results or index in final:
                        continue
                    if attempts[index] <= self._max_retries:
                        retry.append(index)
                    else:
                        final.add(index)
            if retry and self._obs.enabled:
                self._obs.count("batch.retries", len(retry))
            pending = [[index] for index in sorted(retry)]
            round_no += 1

        failures = [
            FailureRecord(
                index=index,
                stage=last_error[index][0],
                error_type=last_error[index][1],
                message=last_error[index][2],
                attempts=attempts[index],
            )
            for index in sorted(final)
        ]
        return results, failures

    # ------------------------------------------------------------------
    # One retry round
    # ------------------------------------------------------------------
    def _run_round(
        self,
        chunks: List[List[int]],
        planner: Planner,
        seed: int,
        n_sims: int,
        results: Dict[int, SimulationResult],
        attempts: Dict[int, int],
        last_error: Dict[int, Tuple[str, str, str]],
        final: set,
    ) -> None:
        """Run one round of chunks on a fresh pool, recording outcomes.

        A fresh :class:`ProcessPoolExecutor` per round is deliberate: a
        ``BrokenProcessPool`` poisons the pool it happened in, and a
        timed-out worker may hold the pool's queue hostage — both are
        abandoned wholesale instead of reused.
        """
        workers = min(self._n_workers, len(chunks))
        pool = ProcessPoolExecutor(max_workers=workers)
        hung = False
        try:
            futures = [
                (
                    pool.submit(
                        run_chunk,
                        self._scenario,
                        self._comm,
                        self._config,
                        planner,
                        self._kind,
                        seed,
                        chunk,
                        n_sims,
                        self._chaos,
                    ),
                    chunk,
                )
                for chunk in chunks
            ]
            for future, chunk in futures:
                for index in chunk:
                    attempts[index] += 1
                budget: Optional[float] = None
                if self._timeout_per_sim is not None:
                    # After the first expiry the pool is condemned; only
                    # harvest chunks that are already done (zero budget).
                    budget = (
                        0.0 if hung else self._timeout_per_sim * len(chunk)
                    )
                try:
                    payload = future.result(timeout=budget)
                except FuturesTimeoutError:
                    hung = True
                    self._mark_chunk_failed(
                        chunk,
                        "timeout",
                        "TimeoutError",
                        f"chunk of {len(chunk)} exceeded its "
                        f"{budget:.3g}s budget",
                        last_error,
                    )
                # Fault-tolerance boundary: whatever killed the chunk
                # (BrokenProcessPool, pickling error, a raising worker)
                # is recorded against its indices and retried; sibling
                # chunks keep their results.
                except Exception as exc:  # safelint: disable=SFL003 - recorded per chunk, chunk retried
                    self._mark_chunk_failed(
                        chunk, "worker", type(exc).__name__, str(exc), last_error
                    )
                else:
                    if not self._ingest_payload(
                        payload, chunk, results, last_error, final
                    ):
                        self._mark_chunk_failed(
                            chunk,
                            "worker",
                            "MalformedPayload",
                            f"worker returned {type(payload).__name__} "
                            "instead of tagged result entries",
                            last_error,
                        )
        finally:
            if hung:
                self._terminate_workers(pool)
            pool.shutdown(wait=not hung, cancel_futures=True)

    def _ingest_payload(
        self,
        payload: object,
        chunk: List[int],
        results: Dict[int, SimulationResult],
        last_error: Dict[int, Tuple[str, str, str]],
        final: set,
    ) -> bool:
        """Validate and apply one chunk's payload; ``False`` if malformed.

        A malformed payload leaves ``results`` untouched so the whole
        chunk can be retried cleanly.
        """
        if not isinstance(payload, list) or len(payload) != len(chunk):
            return False
        expected = set(chunk)
        parsed: List[tuple] = []
        for entry in payload:
            if not isinstance(entry, tuple) or len(entry) < 3:
                return False
            index, tag = entry[0], entry[1]
            if index not in expected:
                return False
            expected.discard(index)
            if tag == "ok" and isinstance(entry[2], SimulationResult):
                parsed.append(entry)
            elif tag == "error" and len(entry) == 4:
                parsed.append(entry)
            else:
                return False
        for entry in parsed:
            if entry[1] == "ok":
                results[entry[0]] = entry[2]
            else:
                # In-episode exceptions are deterministic (same seed,
                # same planner state machine) — final, never retried.
                last_error[entry[0]] = ("simulation", entry[2], entry[3])
                final.add(entry[0])
        return True

    @staticmethod
    def _mark_chunk_failed(
        chunk: List[int],
        stage: str,
        error_type: str,
        message: str,
        last_error: Dict[int, Tuple[str, str, str]],
    ) -> None:
        for index in chunk:
            last_error[index] = (stage, error_type, message)

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Hard-kill a condemned pool's workers (hung beyond budget)."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
