"""Chaos hooks for hardening the execution harness itself.

Channel and engine faults disturb the *simulated* world; the hook here
disturbs the *infrastructure* running it, so the crash tolerance of
:class:`~repro.sim.parallel.ParallelBatchRunner` can be exercised
deterministically in tests and benchmarks.

:class:`WorkerChaosOnce` misbehaves in exactly one worker invocation per
sentinel file: the first worker chunk to atomically create the sentinel
suffers the configured failure mode, and every retry after that runs
clean.  Because the runner retries failed chunks with the same seeds, a
batch run under ``WorkerChaosOnce`` must produce results bit-identical
to an undisturbed run — which is what the chaos certification benchmark
asserts.

Failure modes
-------------

* ``"exit"`` — the worker dies via ``os._exit`` (no cleanup, no
  exception; indistinguishable from an OOM kill or segfault from the
  parent's point of view, surfacing as ``BrokenProcessPool``).
* ``"garbage"`` — the worker returns a malformed payload instead of its
  result list (exercising the parent's result validation).
* ``"hang"`` — the worker sleeps far past any per-simulation timeout
  (exercising the parent's timeout/terminate path).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import FaultInjectionError

__all__ = ["WorkerChaosOnce"]

_MODES = ("exit", "garbage", "hang")


@dataclass(frozen=True)
class WorkerChaosOnce:
    """Make the first worker chunk that claims the sentinel misbehave.

    Attributes
    ----------
    sentinel:
        Filesystem path used as an atomic once-only latch
        (``open(O_CREAT | O_EXCL)``).  Use a path inside a per-test
        temporary directory.
    mode:
        One of ``"exit"``, ``"garbage"``, ``"hang"`` (see module docs).
    exit_code:
        Process exit status under ``"exit"``.
    hang_seconds:
        Sleep length under ``"hang"``; pick it far above the runner's
        per-simulation timeout so the parent, not the sleep, decides.

    Units: hang_seconds [s]
    """

    sentinel: str
    mode: str = "exit"
    exit_code: int = 117
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise FaultInjectionError(
                f"WorkerChaosOnce.mode must be one of {_MODES}, "
                f"got {self.mode!r}"
            )
        if self.hang_seconds <= 0.0:
            raise FaultInjectionError(
                f"hang_seconds must be > 0, got {self.hang_seconds!r}"
            )

    def claim(self) -> bool:
        """Atomically claim the sentinel; ``True`` for the first caller."""
        try:
            fd = os.open(self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def armed(self) -> bool:
        """Whether the chaos is still pending (sentinel unclaimed)."""
        return not os.path.exists(self.sentinel)

    def apply(self) -> bool:
        """Misbehave if this call is the first to claim the sentinel.

        Returns ``True`` when the caller should return garbage
        (``mode="garbage"``); otherwise returns ``False`` — after
        crashing the process (``"exit"``) or sleeping out the hang
        (``"hang"``) as a side effect.
        """
        if not self.claim():
            return False
        if self.mode == "exit":
            os._exit(self.exit_code)
        if self.mode == "hang":
            time.sleep(self.hang_seconds)
            return False
        return True
