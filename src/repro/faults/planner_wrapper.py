"""Planner-level fault injection inside the compound planner's shield.

:class:`FaultyPlanner` decorates any :class:`~repro.planners.base.Planner`
and makes it misbehave on schedule — raise, return NaN, or repeat a
stale command.  Wrapping the *embedded* planner of a
:class:`~repro.core.compound.CompoundPlanner` exercises exactly the
failure mode the paper's theorem covers: whatever the embedded planner
does (including crashing), the monitor + emergency planner contain it.

The wrapper is deliberately deterministic: faults fire purely by step
window, with no internal randomness, so a planner instance shared
across a batch (and pickled to parallel workers) behaves identically no
matter which worker runs which episode or in what order.  Stochastic
*activation* belongs in the engine-level
:class:`~repro.faults.plan.FaultPlan`, which draws from the episode's
seed stream.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.errors import FaultInjectionError, PlannerFaultError
from repro.faults.plan import PlannerFault, PlannerFaultKind
from repro.planners.base import Planner, PlanningContext

__all__ = ["FaultyPlanner"]


class FaultyPlanner:
    """Deterministic fault-injecting decorator around any planner.

    Parameters
    ----------
    inner:
        The planner being sabotaged.
    faults:
        Planner faults to apply by step window.  Probabilities other
        than 1.0 are rejected — per-episode randomness must come from
        the engine-level fault plan (seeded), not from planner state.
    """

    def __init__(self, inner: Planner, faults: Sequence[PlannerFault]) -> None:
        for fault in faults:
            if fault.probability != 1.0:  # safelint: disable=SFL001 - exact sentinel
                raise FaultInjectionError(
                    "FaultyPlanner faults must have probability=1.0; use an "
                    "engine-level FaultPlan for seeded stochastic activation"
                )
        self._inner = inner
        self._faults: Tuple[PlannerFault, ...] = tuple(faults)
        self._step = 0
        self._last_command: Optional[float] = None
        self._injected = 0

    @property
    def inner(self) -> Planner:
        """The wrapped planner."""
        return self._inner

    @property
    def faults_injected(self) -> int:
        """Faulted steps so far (across the planner's lifetime)."""
        return self._injected

    def reset(self) -> None:
        """Restart the step schedule (the engine calls this per episode)."""
        self._step = 0
        self._last_command = None
        if hasattr(self._inner, "reset"):
            self._inner.reset()

    def plan(self, context: PlanningContext) -> float:
        """One control step: fault if scheduled, else delegate."""
        step = self._step
        self._step += 1
        fault = self._fault_at(step)
        if fault is None:
            command = self._inner.plan(context)
            self._last_command = command
            return command
        self._injected += 1
        if fault.kind is PlannerFaultKind.NAN:
            return math.nan
        if fault.kind is PlannerFaultKind.LATENCY:
            if self._last_command is None:
                raise PlannerFaultError(
                    "injected latency fault before any command existed"
                )
            return self._last_command
        raise PlannerFaultError(
            f"injected planner exception at step {step} "
            f"(window [{fault.window.start}, {fault.window.stop}))"
        )

    def _fault_at(self, step: int) -> Optional[PlannerFault]:
        for fault in self._faults:
            if fault.window.contains(step):
                return fault
        return None
