"""Planner-level fault injection inside the compound planner's shield.

:class:`FaultyPlanner` decorates any :class:`~repro.planners.base.Planner`
and makes it misbehave on schedule — raise, return NaN, or repeat a
stale command.  Wrapping the *embedded* planner of a
:class:`~repro.core.compound.CompoundPlanner` exercises exactly the
failure mode the paper's theorem covers: whatever the embedded planner
does (including crashing), the monitor + emergency planner contain it.

The wrapper is deliberately deterministic: faults fire purely by step
window, with no internal randomness, so a planner instance shared
across a batch (and pickled to parallel workers) behaves identically no
matter which worker runs which episode or in what order.  Stochastic
*activation* belongs in the engine-level
:class:`~repro.faults.plan.FaultPlan`, which draws from the episode's
seed stream.

Raising faults carry a **severity taxonomy**: a
:attr:`~repro.faults.plan.PlannerFaultSeverity.TRANSIENT` exception
(the default, bit-identical to the legacy behaviour) surfaces as
:class:`~repro.errors.TransientPlannerFaultError` and may be retried by
callers with deadline budget to spare; a
:attr:`~repro.faults.plan.PlannerFaultSeverity.FATAL` one surfaces as
:class:`~repro.errors.FatalPlannerFaultError` and means the planner
process is gone — retrying burns budget for nothing.  Both derive from
:class:`~repro.errors.PlannerFaultError`, so every legacy containment
path (compound planner, engine watchdog, batch retry) is unchanged.
:func:`classify_planner_failure` maps any raised exception back onto
the taxonomy, and :func:`call_contained` is the single sanctioned
point where an *arbitrary* planner crash is converted into data — the
serve degradation ladder runs every planner invocation through it.

:class:`StallingPlanner` is the wall-clock cousin of the ``LATENCY``
fault kind: instead of repeating a stale command it genuinely blocks
inside ``plan()`` for a configured number of seconds, which is what a
deadline-enforcing caller (the decision server) needs to observe a
*hung* planner rather than a merely wrong one.  It must never be used
inside the deterministic simulation engine — wall-clock stalls there
would make runs machine-dependent.
"""

from __future__ import annotations

import math
import time as _time
from typing import Optional, Sequence, Tuple

from repro.errors import (
    FatalPlannerFaultError,
    FaultInjectionError,
    PlannerFaultError,
    TransientPlannerFaultError,
)
from repro.faults.plan import (
    PlannerFault,
    PlannerFaultKind,
    PlannerFaultSeverity,
    StepWindow,
)
from repro.planners.base import Planner, PlanningContext

__all__ = [
    "FaultyPlanner",
    "StallingPlanner",
    "classify_planner_failure",
    "call_contained",
]


def classify_planner_failure(error: BaseException) -> PlannerFaultSeverity:
    """Retry class of a failed planner invocation.

    :class:`~repro.errors.FatalPlannerFaultError` is the only failure
    declared unrecoverable; everything else — genuine
    :class:`~repro.errors.PlannerError`, injected transients, and
    arbitrary programming errors from a misbehaving planner — is
    classified transient, because a caller cannot distinguish a
    one-off crash from a persistent one without spending a retry.
    """
    if isinstance(error, FatalPlannerFaultError):
        return PlannerFaultSeverity.FATAL
    return PlannerFaultSeverity.TRANSIENT


def call_contained(
    planner: Planner, context: PlanningContext
) -> Tuple[Optional[float], Optional[BaseException]]:
    """Invoke ``planner.plan`` and convert any crash into data.

    Returns ``(command, None)`` on success and ``(None, error)`` on any
    raised exception.  This is the one sanctioned broad-containment
    point for planner invocations: a decision *server* must survive an
    arbitrarily buggy planner (the degradation ladder supplies the safe
    command), so unlike the in-simulation paths — which catch only
    :class:`~repro.errors.PlannerError` and let programming errors
    falsify the run loudly — this helper swallows everything and hands
    the exception object back for classification and telemetry.
    """
    try:
        return float(planner.plan(context)), None
    except Exception as error:  # the one sanctioned broad catch, see docstring
        return None, error


class FaultyPlanner:
    """Deterministic fault-injecting decorator around any planner.

    Parameters
    ----------
    inner:
        The planner being sabotaged.
    faults:
        Planner faults to apply by step window.  Probabilities other
        than 1.0 are rejected — per-episode randomness must come from
        the engine-level fault plan (seeded), not from planner state.
        A raising (``EXCEPTION``) fault surfaces as
        :class:`~repro.errors.TransientPlannerFaultError` or
        :class:`~repro.errors.FatalPlannerFaultError` according to its
        :attr:`~repro.faults.plan.PlannerFault.severity`.
    """

    def __init__(self, inner: Planner, faults: Sequence[PlannerFault]) -> None:
        for fault in faults:
            if fault.probability != 1.0:  # safelint: disable=SFL001 - exact sentinel
                raise FaultInjectionError(
                    "FaultyPlanner faults must have probability=1.0; use an "
                    "engine-level FaultPlan for seeded stochastic activation"
                )
        self._inner = inner
        self._faults: Tuple[PlannerFault, ...] = tuple(faults)
        self._step = 0
        self._last_command: Optional[float] = None
        self._injected = 0

    @property
    def inner(self) -> Planner:
        """The wrapped planner."""
        return self._inner

    @property
    def faults_injected(self) -> int:
        """Faulted steps so far (across the planner's lifetime)."""
        return self._injected

    def reset(self) -> None:
        """Restart the step schedule (the engine calls this per episode)."""
        self._step = 0
        self._last_command = None
        if hasattr(self._inner, "reset"):
            self._inner.reset()

    def plan(self, context: PlanningContext) -> float:
        """One control step: fault if scheduled, else delegate.

        Effects: mutates-args, draws-rng

        (Declared boundary for the effect inference: the syntactic
        call graph aliases ``self._inner.plan`` with every ``plan``
        method in the tree, including the wall-clock
        :class:`StallingPlanner`.  In the chaos wiring the stall
        decorator is always *outermost*, and the deterministic engine
        never composes either around a clock-reading planner, so this
        wrapper is clock-free in every simulated composition.)
        """
        step = self._step
        self._step += 1
        fault = self._fault_at(step)
        if fault is None:
            command = self._inner.plan(context)
            self._last_command = command
            return command
        self._injected += 1
        if fault.kind is PlannerFaultKind.NAN:
            return math.nan
        if fault.kind is PlannerFaultKind.LATENCY:
            if self._last_command is None:
                raise PlannerFaultError(
                    "injected latency fault before any command existed"
                )
            return self._last_command
        message = (
            f"injected {fault.severity.value} planner exception at step "
            f"{step} (window [{fault.window.start}, {fault.window.stop}))"
        )
        if fault.severity is PlannerFaultSeverity.FATAL:
            raise FatalPlannerFaultError(message)
        raise TransientPlannerFaultError(message)

    def _fault_at(self, step: int) -> Optional[PlannerFault]:
        for fault in self._faults:
            if fault.window.contains(step):
                return fault
        return None


class StallingPlanner:
    """Wall-clock-stalling decorator: a planner that genuinely hangs.

    Sleeps ``stall_seconds`` of real time inside every ``plan()`` call
    whose step index falls in ``windows`` before delegating.  A
    deadline-enforcing caller observes exactly what a wedged planner
    process looks like from the outside: the call does not return in
    budget.  The serve chaos tests and the serve CLI's
    ``--inject-stall-*`` flags use this wrapper; the deterministic
    simulation engine must never see it (wall-clock stalls there make
    runs machine-dependent — model compute overruns with the
    ``LATENCY`` fault kind instead).

    Parameters
    ----------
    inner:
        The planner being delayed.
    stall_seconds:
        Real-time sleep applied on each stalled call.
        Units: stall_seconds [s]
    windows:
        Step windows (by invocation index) that stall; an empty
        sequence stalls every call.
    """

    def __init__(
        self,
        inner: Planner,
        stall_seconds: float,
        windows: Sequence[StepWindow] = (),
    ) -> None:
        if not math.isfinite(stall_seconds) or stall_seconds < 0.0:
            raise FaultInjectionError(
                f"stall_seconds must be finite and >= 0, got {stall_seconds!r}"
            )
        self._inner = inner
        self._stall = float(stall_seconds)
        self._windows = tuple(windows)
        self._step = 0
        self._stalled = 0

    @property
    def inner(self) -> Planner:
        """The wrapped planner."""
        return self._inner

    @property
    def stalls_injected(self) -> int:
        """Stalled calls so far (across the planner's lifetime)."""
        return self._stalled

    def reset(self) -> None:
        """Restart the step schedule."""
        self._step = 0
        if hasattr(self._inner, "reset"):
            self._inner.reset()

    def plan(self, context: PlanningContext) -> float:
        """One control step: stall if scheduled, then delegate."""
        step = self._step
        self._step += 1
        if self._stall > 0.0 and (
            not self._windows
            or any(window.contains(step) for window in self._windows)
        ):
            self._stalled += 1
            _time.sleep(self._stall)
        return self._inner.plan(context)
