"""Declarative fault plans and their compiled per-run injectors.

A plan is data: tuples of :class:`SensorFault` and :class:`PlannerFault`
records, each scoped to a :class:`StepWindow` of control steps and
optionally activated per episode with a probability.  Compiling the plan
with a seeded stream resolves those probabilities into this episode's
active fault set, so a batch seed reproduces the exact same fault
pattern run after run — faults are part of the workload, like message
drops and sensor noise.

Semantics of each fault kind
----------------------------

Sensor faults (applied to each reading the engine takes):

* ``DROPOUT`` — the reading is discarded; the estimator simply does not
  hear from the sensor this step.  The sensor still *draws* its noise,
  so dropout does not shift the random sequence of later readings.
* ``FREEZE`` — the estimator receives the last pre-fault reading's
  values re-stamped at the current time (a frozen sensor head).
* ``STUCK`` — the estimator receives configured constant values.

``FREEZE`` and ``STUCK`` violate the paper's sensing contract (the
measurement is no longer within the noise bound of the truth), so the
safety theorem does not cover them; ``DROPOUT`` only removes
information and is covered.  See ``docs/ROBUSTNESS.md``.

Planner faults (applied to the engine's planner invocation):

* ``EXCEPTION`` — the planner call is not made; the engine's watchdog
  fallback commands full braking for the step.
* ``NAN`` — the planner's command is replaced by NaN (the engine
  sanitises commands to full braking when a fault plan is active).
* ``LATENCY`` — the previous step's command is repeated (a planner
  overrunning its compute budget); braking before any command exists.

Engine-level planner faults bypass the runtime monitor for the faulted
steps, so the theorem does not cover them either; to model a faulty
*embedded* planner inside the shield — the configuration the theorem
does cover — wrap it with
:class:`~repro.faults.planner_wrapper.FaultyPlanner` instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.dynamics.vehicle import VehicleLimits
from repro.errors import FaultInjectionError
from repro.planners.base import Planner, PlanningContext
from repro.sensing.sensor import SensorReading
from repro.utils.rng import RngStream
from repro.utils.validation import check_finite, check_probability

__all__ = [
    "StepWindow",
    "SensorFaultKind",
    "SensorFault",
    "PlannerFaultKind",
    "PlannerFaultSeverity",
    "PlannerFault",
    "FaultPlan",
    "FaultInjector",
]


@dataclass(frozen=True)
class StepWindow:
    """Half-open control-step window ``[start, stop)`` a fault is active in.

    Units: start [1], stop [1]
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultInjectionError(
                f"StepWindow.start must be >= 0, got {self.start}"
            )
        if self.stop <= self.start:
            raise FaultInjectionError(
                f"StepWindow must be non-empty: [{self.start}, {self.stop})"
            )

    def contains(self, step: int) -> bool:
        """Whether control step ``step`` falls inside the window."""
        return self.start <= step < self.stop


class SensorFaultKind(str, Enum):
    """How a faulted sensor misbehaves."""

    #: Reading discarded (estimator hears nothing this step).
    DROPOUT = "dropout"
    #: Last pre-fault reading repeated, re-stamped at the current time.
    FREEZE = "freeze"
    #: Configured constant values reported.
    STUCK = "stuck"


@dataclass(frozen=True)
class SensorFault:
    """One scheduled sensor fault.

    Attributes
    ----------
    window:
        Control-step window the fault is active in.
    kind:
        Fault behaviour (see :class:`SensorFaultKind`).
    target:
        Observed-vehicle index the fault applies to; ``None`` = all.
    probability:
        Per-episode activation probability (resolved at compile time
        from the seeded stream; 1.0 = always active).
    stuck_position, stuck_velocity, stuck_acceleration:
        The constant reading reported under ``STUCK`` (ignored
        otherwise).

    Units: probability [1], stuck_position [m], stuck_velocity [m/s],
    Units: stuck_acceleration [m/s^2]
    """

    window: StepWindow
    kind: SensorFaultKind
    target: Optional[int] = None
    probability: float = 1.0
    stuck_position: float = 0.0
    stuck_velocity: float = 0.0
    stuck_acceleration: float = 0.0

    def __post_init__(self) -> None:
        check_probability(self.probability, "probability")
        if self.kind is SensorFaultKind.STUCK:
            check_finite(self.stuck_position, "stuck_position")
            check_finite(self.stuck_velocity, "stuck_velocity")
            check_finite(self.stuck_acceleration, "stuck_acceleration")

    def applies_to(self, step: int, target: int) -> bool:
        """Whether this fault hits vehicle ``target`` at ``step``."""
        if not self.window.contains(step):
            return False
        return self.target is None or self.target == target


class PlannerFaultKind(str, Enum):
    """How a faulted planner misbehaves."""

    #: The planner call fails; the watchdog commands full braking.
    EXCEPTION = "exception"
    #: The planner returns NaN.
    NAN = "nan"
    #: The previous command is repeated (compute overrun).
    LATENCY = "latency"


class PlannerFaultSeverity(str, Enum):
    """Whether a raising planner fault may clear on retry.

    The severity only matters for ``EXCEPTION`` faults (the raising
    kind): a ``TRANSIENT`` exception models a recoverable hiccup a
    caller may retry within its deadline budget, a ``FATAL`` one models
    a crashed planner process that retrying cannot resurrect.  The
    serve degradation ladder retries transients once and degrades on
    fatals immediately; legacy containment paths catch the shared
    :class:`~repro.errors.PlannerFaultError` base and are unaffected.
    """

    #: May clear on retry (default — matches the legacy behaviour).
    TRANSIENT = "transient"
    #: Will not clear on retry; degrade immediately.
    FATAL = "fatal"


@dataclass(frozen=True)
class PlannerFault:
    """One scheduled planner fault.

    Units: probability [1]
    """

    window: StepWindow
    kind: PlannerFaultKind
    probability: float = 1.0
    #: Retry class of a raising (``EXCEPTION``) fault; ignored by the
    #: non-raising kinds.  Defaults to transient, the legacy behaviour.
    severity: PlannerFaultSeverity = PlannerFaultSeverity.TRANSIENT

    def __post_init__(self) -> None:
        check_probability(self.probability, "probability")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, compile-to-seeded-injector fault schedule."""

    sensor_faults: Tuple[SensorFault, ...] = ()
    planner_faults: Tuple[PlannerFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "sensor_faults", tuple(self.sensor_faults))
        object.__setattr__(self, "planner_faults", tuple(self.planner_faults))

    @property
    def is_empty(self) -> bool:
        """Whether the plan schedules nothing."""
        return not self.sensor_faults and not self.planner_faults

    def compile(self, rng: RngStream) -> "FaultInjector":
        """Resolve per-episode activations and build this run's injector.

        One Bernoulli is drawn per scheduled fault, in declaration
        order, so the activation pattern is a pure function of the
        episode's seed stream.
        """
        active_sensor = tuple(
            f for f in self.sensor_faults if rng.bernoulli(f.probability)
        )
        active_planner = tuple(
            f for f in self.planner_faults if rng.bernoulli(f.probability)
        )
        return FaultInjector(active_sensor, active_planner)

    def describe(self) -> str:
        """Human-readable one-line description (used in reports)."""
        if self.is_empty:
            return "no faults"
        parts = [
            f"sensor {f.kind.value}@[{f.window.start},{f.window.stop})"
            for f in self.sensor_faults
        ] + [
            f"planner {f.kind.value}@[{f.window.start},{f.window.stop})"
            for f in self.planner_faults
        ]
        return " + ".join(parts)


@dataclass
class FaultInjector:
    """A compiled fault plan: this episode's active faults plus counters.

    Created by :meth:`FaultPlan.compile`; consumed by
    :meth:`repro.sim.engine.SimulationEngine.run`.
    """

    sensor_faults: Tuple[SensorFault, ...] = ()
    planner_faults: Tuple[PlannerFault, ...] = ()
    #: Readings suppressed or corrupted by sensor faults.
    sensor_faults_injected: int = 0
    #: Steps whose command was altered by planner faults.
    planner_faults_injected: int = 0
    _last_clean: Dict[int, SensorReading] = field(default_factory=dict)
    _last_command: Optional[float] = None

    # ------------------------------------------------------------------
    # Sensor hook
    # ------------------------------------------------------------------
    def apply_sensor(
        self, step: int, target: int, reading: SensorReading
    ) -> Optional[SensorReading]:
        """Filter one sensor reading through the active sensor faults.

        Units: step [1], target [1]

        Returns the (possibly replaced) reading, or ``None`` when the
        reading is dropped.  The first matching fault wins.
        """
        for fault in self.sensor_faults:
            if not fault.applies_to(step, target):
                continue
            self.sensor_faults_injected += 1
            if fault.kind is SensorFaultKind.DROPOUT:
                return None
            if fault.kind is SensorFaultKind.FREEZE:
                frozen = self._last_clean.get(target)
                if frozen is None:
                    # Nothing to freeze on yet: behave like dropout.
                    return None
                return replace(frozen, time=reading.time)
            return SensorReading(
                target=target,
                time=reading.time,
                position=fault.stuck_position,
                velocity=fault.stuck_velocity,
                acceleration=fault.stuck_acceleration,
            )
        self._last_clean[target] = reading
        return reading

    # ------------------------------------------------------------------
    # Planner hook
    # ------------------------------------------------------------------
    def plan(
        self,
        step: int,
        planner: Planner,
        context: PlanningContext,
        limits: VehicleLimits,
    ) -> Tuple[float, bool]:
        """Run one (possibly faulted) planner invocation.

        Units: step [1]

        Returns ``(command, planner_was_called)``; the flag lets the
        engine skip decision telemetry for steps the planner never saw.
        """
        fault = self._active_planner_fault(step)
        if fault is None:
            command = planner.plan(context)
            self._last_command = command
            return command, True
        self.planner_faults_injected += 1
        if fault.kind is PlannerFaultKind.NAN:
            return math.nan, False
        if fault.kind is PlannerFaultKind.LATENCY:
            if self._last_command is None:
                return limits.a_min, False
            return self._last_command, False
        # EXCEPTION: the planner process is down; watchdog brakes.
        return limits.a_min, False

    def _active_planner_fault(self, step: int) -> Optional[PlannerFault]:
        for fault in self.planner_faults:
            if fault.window.contains(step):
                return fault
        return None
