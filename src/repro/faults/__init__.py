"""Engine-level fault injection: declarative, seeded fault plans.

Channel faults (:mod:`repro.comm.faults`) disturb the *communication*
layer; this package disturbs everything else the paper's guarantee must
survive: the onboard sensors (dropout / freeze / stuck-at) and the
planner process itself (exceptions / NaN output / compute latency).

A :class:`FaultPlan` is a declarative schedule — *which* fault, over
*which* step window, with *what* per-episode activation probability —
that :meth:`FaultPlan.compile` turns into a per-run
:class:`FaultInjector` using a child of the run's seed stream, so fault
activations are as reproducible as everything else in a batch.  The
simulation engine wires the injector in behind a no-op default
(``SimulationConfig.fault_plan = None`` leaves every run byte-identical
to the pre-fault engine).

:class:`FaultyPlanner` injects planner faults at the *embedded* level —
inside a compound planner's shield — which is the configuration the
safety theorem covers; see ``docs/ROBUSTNESS.md`` for which guarantees
hold under each fault class.
"""

from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    PlannerFault,
    PlannerFaultKind,
    PlannerFaultSeverity,
    SensorFault,
    SensorFaultKind,
    StepWindow,
)
from repro.faults.planner_wrapper import (
    FaultyPlanner,
    StallingPlanner,
    call_contained,
    classify_planner_failure,
)
from repro.faults.chaos import WorkerChaosOnce

__all__ = [
    "StepWindow",
    "SensorFaultKind",
    "SensorFault",
    "PlannerFaultKind",
    "PlannerFaultSeverity",
    "PlannerFault",
    "FaultPlan",
    "FaultInjector",
    "FaultyPlanner",
    "StallingPlanner",
    "call_contained",
    "classify_planner_failure",
    "WorkerChaosOnce",
]
