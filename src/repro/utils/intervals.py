"""Closed-interval arithmetic.

The information filter of the paper (Section III-B) fuses two estimates of
another vehicle's state by *interval intersection*: a reachability interval
derived from the latest (possibly stale) message and a confidence band from
the Kalman filter.  The runtime monitor then tests unsafe-set membership
over those intervals.  This module provides the small, well-tested interval
algebra all of that rests on.

Intervals are closed, may be unbounded (``±inf`` endpoints), and may be
*empty* (represented canonically with ``lo > hi``; see :attr:`Interval.EMPTY`).
All operations treat the empty interval consistently: it is absorbing for
intersection and the identity for union-like hull operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Iterable, Iterator

from repro.errors import EmptyIntervalError, IntervalError

__all__ = ["Interval"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed real interval ``[lo, hi]``.

    Instances are immutable and hashable.  An interval with ``lo > hi`` is
    *empty*; the canonical empty interval is :attr:`Interval.EMPTY`
    (``[+inf, -inf]``), and the constructor normalises every empty input to
    it so that equality works structurally.

    Examples
    --------
    >>> Interval(1.0, 3.0).intersect(Interval(2.0, 5.0))
    Interval(lo=2.0, hi=3.0)
    >>> Interval(1.0, 2.0).intersect(Interval(3.0, 4.0)).is_empty
    True
    """

    lo: float
    hi: float

    #: Canonical empty interval (assigned after the class body).
    EMPTY: ClassVar["Interval"]

    def __post_init__(self) -> None:
        lo = float(self.lo)
        hi = float(self.hi)
        if math.isnan(lo) or math.isnan(hi):
            raise IntervalError(f"interval endpoints must not be NaN: [{lo}, {hi}]")
        if lo > hi:
            lo, hi = math.inf, -math.inf
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: float) -> "Interval":
        """Return the degenerate interval ``[value, value]``."""
        return cls(value, value)

    @classmethod
    def around(cls, center: float, radius: float) -> "Interval":
        """Return ``[center - radius, center + radius]``.

        Raises
        ------
        IntervalError
            If ``radius`` is negative.
        """
        if radius < 0:
            raise IntervalError(f"radius must be nonnegative, got {radius}")
        return cls(center - radius, center + radius)

    @classmethod
    def hull_of(cls, values: Iterable[float]) -> "Interval":
        """Return the smallest interval containing every value.

        An empty iterable yields :attr:`EMPTY`.
        """
        lo = math.inf
        hi = -math.inf
        for v in values:
            lo = min(lo, v)
            hi = max(hi, v)
        return cls(lo, hi)

    @classmethod
    def unbounded(cls) -> "Interval":
        """Return ``[-inf, +inf]``."""
        return cls(-math.inf, math.inf)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether this interval contains no point."""
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        """Whether this interval is a single point."""
        return self.lo == self.hi  # safelint: disable=SFL001 - definitional

    @property
    def is_bounded(self) -> bool:
        """Whether both endpoints are finite (the empty interval is bounded)."""
        if self.is_empty:
            return True
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies in the interval (endpoints inclusive)."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is a subset of this interval."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point.

        This is the predicate the unsafe set of Eq. (6) uses on the
        projected passing-time windows of the two vehicles.
        """
        if self.is_empty or other.is_empty:
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Length of the interval; ``0.0`` if empty."""
        if self.is_empty:
            return 0.0
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """Midpoint of a non-empty bounded interval.

        Raises
        ------
        EmptyIntervalError
            If the interval is empty.
        IntervalError
            If the interval is unbounded.
        """
        if self.is_empty:
            raise EmptyIntervalError("empty interval has no midpoint")
        if not self.is_bounded:
            raise IntervalError("unbounded interval has no midpoint")
        return 0.5 * (self.lo + self.hi)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        """Return the intersection (possibly empty)."""
        if self.is_empty or other.is_empty:
            return Interval.EMPTY
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def expand(self, margin: float) -> "Interval":
        """Return this interval grown by ``margin`` on both sides.

        A negative margin shrinks the interval and may empty it.  Expanding
        the empty interval yields the empty interval.
        """
        if self.is_empty:
            return Interval.EMPTY
        return Interval(self.lo - margin, self.hi + margin)

    def shift(self, offset: float) -> "Interval":
        """Return this interval translated by ``offset``."""
        if self.is_empty:
            return Interval.EMPTY
        return Interval(self.lo + offset, self.hi + offset)

    def scale(self, factor: float) -> "Interval":
        """Return this interval scaled about the origin by ``factor``."""
        if self.is_empty:
            return Interval.EMPTY
        a = self.lo * factor
        b = self.hi * factor
        return Interval(min(a, b), max(a, b))

    def clamp(self, value: float) -> float:
        """Project ``value`` onto the interval.

        Raises
        ------
        EmptyIntervalError
            If the interval is empty.
        """
        if self.is_empty:
            raise EmptyIntervalError("cannot clamp onto an empty interval")
        return min(max(value, self.lo), self.hi)

    def sample(self, u: float) -> float:
        """Map ``u`` in ``[0, 1]`` affinely onto the interval.

        Useful to draw uniform samples: ``iv.sample(rng.random())``.

        Raises
        ------
        EmptyIntervalError
            If the interval is empty.
        IntervalError
            If ``u`` is outside ``[0, 1]`` or the interval is unbounded.
        """
        if self.is_empty:
            raise EmptyIntervalError("cannot sample from an empty interval")
        if not 0.0 <= u <= 1.0:
            raise IntervalError(f"u must be in [0, 1], got {u}")
        if not self.is_bounded:
            raise IntervalError("cannot sample from an unbounded interval")
        # Clamp: the affine map can land an ulp outside under rounding
        # (e.g. lo + 1.0 * (hi - lo) != hi when |lo| >> |hi|).
        return self.clamp(self.lo + u * (self.hi - self.lo))

    def __add__(self, other: "Interval") -> "Interval":
        """Minkowski sum of two intervals."""
        if self.is_empty or other.is_empty:
            return Interval.EMPTY
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __neg__(self) -> "Interval":
        if self.is_empty:
            return Interval.EMPTY
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval") -> "Interval":
        """Minkowski difference ``{a - b}`` of two intervals."""
        return self + (-other)

    def __contains__(self, value: float) -> bool:
        return self.contains(value)

    def __iter__(self) -> Iterator[float]:
        """Iterate ``(lo, hi)`` so ``lo, hi = interval`` unpacks."""
        yield self.lo
        yield self.hi

    def __bool__(self) -> bool:
        """Truthiness is non-emptiness."""
        return not self.is_empty

    def __str__(self) -> str:
        if self.is_empty:
            return "[empty]"
        return f"[{self.lo:g}, {self.hi:g}]"


# The canonical empty interval, defined after the class body so that the
# dataclass machinery is complete.
Interval.EMPTY = Interval(math.inf, -math.inf)
