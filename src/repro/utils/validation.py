"""Argument-validation helpers.

Small, explicit checks used in constructors throughout the library.  Each
helper raises :class:`repro.errors.ConfigurationError` with a message that
names the offending parameter, which keeps the constructors readable:

>>> dt_c = check_positive(0.05, "dt_c")
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError

__all__ = [
    "check_finite",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_range",
    "check_multiple",
    "check_flag_positive",
    "check_flag_at_least",
    "check_flag_count",
    "check_flag_below",
]


def check_finite(value: float, name: str) -> float:
    """Ensure ``value`` is a finite float and return it as ``float``."""
    v = float(value)
    if not math.isfinite(v):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return v


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is finite and strictly positive."""
    v = check_finite(value, name)
    if v <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return v


def check_nonnegative(value: float, name: str) -> float:
    """Ensure ``value`` is finite and not negative."""
    v = check_finite(value, name)
    if v < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return v


def check_probability(value: float, name: str) -> float:
    """Ensure ``value`` lies in ``[0, 1]``."""
    v = check_finite(value, name)
    if not 0.0 <= v <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_range(lo: float, hi: float, lo_name: str, hi_name: str) -> tuple[float, float]:
    """Ensure ``lo <= hi``; either endpoint may be infinite."""
    lo_f = float(lo)
    hi_f = float(hi)
    if math.isnan(lo_f) or math.isnan(hi_f):
        raise ConfigurationError(f"{lo_name}/{hi_name} must not be NaN")
    if lo_f > hi_f:
        raise ConfigurationError(
            f"{lo_name} must be <= {hi_name}, got {lo_name}={lo!r}, {hi_name}={hi!r}"
        )
    return lo_f, hi_f


def check_multiple(
    value: float,
    base: float,
    value_name: str,
    base_name: str,
    rel_tol: float = 1e-9,
) -> float:
    """Ensure ``value`` is (numerically) an integer multiple of ``base``.

    The simulation clock requires the message and sensor periods to align
    with the control period; this check catches drifting-period mistakes at
    construction time instead of producing silently skewed schedules.
    """
    v = check_positive(value, value_name)
    b = check_positive(base, base_name)
    ratio = v / b
    if abs(ratio - round(ratio)) > rel_tol * max(1.0, ratio):
        raise ConfigurationError(
            f"{value_name} ({value!r}) must be an integer multiple of "
            f"{base_name} ({base!r})"
        )
    return v


def check_optional_positive(value: Optional[float], name: str) -> Optional[float]:
    """Like :func:`check_positive` but passes ``None`` through."""
    if value is None:
        return None
    return check_positive(value, name)


# ---------------------------------------------------------------------------
# Command-line flag validation.
#
# Every CLI in the repo (repro-campaign, repro-serve) funnels its numeric
# knobs through these helpers so a nonsensical value — NaN smuggled
# through ``--deadline-ms nan``, a zero queue depth, a negative lease
# TTL — fails fast with the *flag name* in the message, before anything
# touches disk or binds a socket.  They raise ConfigurationError, which
# every CLI maps to its "invalid flag" exit code.
# ---------------------------------------------------------------------------
def check_flag_positive(value: float, flag: str) -> float:
    """Validate a strictly positive, finite command-line flag value.

    Rejects NaN, infinities, zero, and negatives — ``argparse`` happily
    parses all of them as floats.
    """
    v = float(value)
    if not math.isfinite(v) or v <= 0.0:
        raise ConfigurationError(
            f"{flag} must be a finite number > 0, got {value!r}"
        )
    return v


def check_flag_at_least(value: float, minimum: float, flag: str) -> float:
    """Validate a finite command-line flag value with a lower bound."""
    v = float(value)
    if not math.isfinite(v) or v < minimum:
        raise ConfigurationError(
            f"{flag} must be a finite number >= {minimum:g}, got {value!r}"
        )
    return v


def check_flag_count(value: int, flag: str, minimum: int = 0) -> int:
    """Validate an integer command-line knob (worker counts, depths)."""
    v = int(value)
    if v < minimum:
        raise ConfigurationError(f"{flag} must be >= {minimum}, got {value!r}")
    return v


def check_flag_below(
    value: float,
    flag: str,
    bound: float,
    bound_flag: str,
    reason: str = "",
) -> float:
    """Validate that one flag stays strictly below another.

    Used for period-vs-timeout pairs (a heartbeat interval at or above
    its lease TTL would expire every healthy lease).
    """
    v = float(value)
    if not v < bound:
        suffix = f"; {reason}" if reason else ""
        raise ConfigurationError(
            f"{flag} ({value!r}) must be below {bound_flag} ({bound!r})"
            f"{suffix}"
        )
    return v
