"""Seeded random-number streams.

Every stochastic component in the library (channel drops, sensor noise, the
opposing vehicle's acceleration profile, NN weight initialisation) draws
from its own :class:`RngStream` so that

* a single experiment seed reproduces a whole batch of simulations, and
* components can be re-ordered or removed without perturbing the random
  numbers seen by unrelated components (no shared global state).

Streams are thin wrappers around :class:`numpy.random.Generator` seeded via
:class:`numpy.random.SeedSequence`, which provides high-quality independent
substreams through ``spawn``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["RngStream", "spawn_streams"]

SeedLike = Union[int, Sequence[int], np.random.SeedSequence, None]


class RngStream:
    """An independent, seedable random stream.

    Parameters
    ----------
    seed:
        Anything acceptable to :class:`numpy.random.SeedSequence`; ``None``
        draws entropy from the OS (non-reproducible — tests and experiments
        always pass explicit seeds).

    Examples
    --------
    >>> a = RngStream(7)
    >>> b = RngStream(7)
    >>> float(a.uniform(-1, 1)) == float(b.uniform(-1, 1))
    True
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._seed_seq = seed
        else:
            self._seed_seq = np.random.SeedSequence(seed)
        self._generator = np.random.default_rng(self._seed_seq)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying :class:`numpy.random.Generator`."""
        return self._generator

    # ------------------------------------------------------------------
    # Substreams
    # ------------------------------------------------------------------
    def spawn(self, n: int) -> List["RngStream"]:
        """Create ``n`` statistically independent child streams."""
        return [RngStream(ss) for ss in self._seed_seq.spawn(n)]

    def child(self) -> "RngStream":
        """Create a single independent child stream."""
        return self.spawn(1)[0]

    # ------------------------------------------------------------------
    # Draws (delegating; typed for the use-sites in this library)
    # ------------------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Uniform draw(s) on ``[low, high)``."""
        return self._generator.uniform(low, high, size=size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Gaussian draw(s)."""
        return self._generator.normal(loc, scale, size=size)

    def random(self, size=None):
        """Uniform draw(s) on ``[0, 1)``."""
        return self._generator.random(size=size)

    def integers(self, low: int, high: Optional[int] = None, size=None):
        """Integer draw(s) on ``[low, high)``."""
        return self._generator.integers(low, high, size=size)

    def choice(self, a, size=None, replace: bool = True, p=None):
        """Random selection from ``a``."""
        return self._generator.choice(a, size=size, replace=replace, p=p)

    def bernoulli(self, p: float) -> bool:
        """Single Bernoulli trial with success probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        if p == 0.0:
            return False
        if p == 1.0:  # safelint: disable=SFL001 - probability sentinel
            return True
        return bool(self._generator.random() < p)

    def shuffle(self, array) -> None:
        """In-place shuffle of ``array`` along its first axis."""
        self._generator.shuffle(array)

    def permutation(self, n: int) -> np.ndarray:
        """A random permutation of ``range(n)``."""
        return self._generator.permutation(n)


def spawn_streams(seed: SeedLike, n: int) -> List[RngStream]:
    """Create ``n`` independent streams from one experiment seed.

    Convenience for experiment harnesses that need one stream per
    simulation: ``streams = spawn_streams(experiment_seed, n_sims)``.
    """
    return RngStream(seed).spawn(n)
