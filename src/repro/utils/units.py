"""Physical constants and unit helpers.

The library works in SI units throughout: metres, seconds, m/s, m/s².
These helpers exist for readability at configuration sites and in examples
(``kmh(50)`` is clearer than ``13.888...``), plus a couple of kinematics
one-liners shared by the geometry and planner modules.
"""

from __future__ import annotations

import math

__all__ = [
    "kmh",
    "to_kmh",
    "mph",
    "braking_distance",
    "stopping_time",
    "GRAVITY",
]

#: Standard gravity, m/s².  Used to express accelerations in g's in docs.
GRAVITY = 9.80665


def kmh(value: float) -> float:
    """Convert km/h to m/s."""
    return value / 3.6


def to_kmh(value: float) -> float:
    """Convert m/s to km/h."""
    return value * 3.6


def mph(value: float) -> float:
    """Convert miles/h to m/s."""
    return value * 0.44704


def braking_distance(speed: float, decel: float) -> float:
    """Distance covered while braking from ``speed`` to rest.

    Parameters
    ----------
    speed:
        Current speed, m/s (nonnegative).
    decel:
        Braking deceleration magnitude, m/s² (strictly positive).

    Returns
    -------
    float
        ``speed**2 / (2 * decel)``.

    Raises
    ------
    ValueError
        If ``decel`` is not strictly positive or ``speed`` is negative.
    """
    if decel <= 0.0:
        raise ValueError(f"decel must be > 0, got {decel}")
    if speed < 0.0:
        raise ValueError(f"speed must be >= 0, got {speed}")
    return speed * speed / (2.0 * decel)


def stopping_time(speed: float, decel: float) -> float:
    """Time to brake from ``speed`` to rest at constant ``decel``."""
    if decel <= 0.0:
        raise ValueError(f"decel must be > 0, got {decel}")
    if speed < 0.0:
        raise ValueError(f"speed must be >= 0, got {speed}")
    return speed / decel


def isclose_time(a: float, b: float, tol: float = 1e-9) -> bool:
    """Compare two timestamps with an absolute tolerance.

    Simulation timestamps are sums of many ``dt_c`` increments; exact float
    equality is unreliable, so schedule checks use this helper.
    """
    return math.isclose(a, b, rel_tol=0.0, abs_tol=tol)
