"""Shared low-level utilities: intervals, RNG streams, validation."""

from repro.utils.intervals import Interval
from repro.utils.rng import RngStream, spawn_streams
from repro.utils.validation import (
    check_finite,
    check_nonnegative,
    check_positive,
    check_probability,
    check_range,
)

__all__ = [
    "Interval",
    "RngStream",
    "spawn_streams",
    "check_finite",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_range",
]
