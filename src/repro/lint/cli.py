"""The safelint command line.

.. code-block:: console

    $ python -m repro.lint src                  # gate: exit 1 on findings
    $ python -m repro.lint src --format json    # machine-readable report
    $ python -m repro.lint --list-rules         # rule catalogue
    $ python -m repro.lint src --write-baseline # grandfather current tree
    $ python -m repro.lint src --batch-report run_episode  # effect report
    $ python -m repro.lint src --gates lint,dim,shape,flow # all gates,
    #   one process (shared parse cache), exit 1 if any gate fails

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
Configuration comes from ``[tool.safelint]`` in the nearest
``pyproject.toml`` (disable with ``--no-project-config``); ``--select``,
``--ignore`` and ``--exclude`` override/extend it.  ``--select``/
``--ignore`` entries match by prefix, so ``--select SFL1`` runs the
whole SFL100–SFL105 dimensional family.  ``--format github`` emits
GitHub Actions workflow commands (``::error file=...``) so findings
surface as inline PR annotations.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import LintError
from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.config import (
    LintConfig,
    find_pyproject,
    load_project_config,
)
from repro.lint.engine import (
    LintResult,
    build_effect_table_for,
    lint_paths,
)
from repro.lint.findings import Severity, report_to_dict
from repro.lint.flow.report import batchability_report
from repro.lint.registry import all_rules, get_rule, rule_ids

__all__ = ["main", "build_parser"]

#: ``--gates`` family name -> rule-id prefix.  Each family is one gate:
#: the core safety rules, the dimensional pass, the shape pass and the
#: flow pass.  Running several via ``--gates`` shares one process (and
#: therefore one AST cache) instead of one interpreter start per gate.
GATE_FAMILIES = {
    "lint": "SFL0",
    "dim": "SFL1",
    "shape": "SFL2",
    "flow": "SFL3",
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse front end (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "safelint: AST checks enforcing this repo's safety "
            "invariants (determinism, clamped planner outputs, guarded "
            "window math)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "report format (default: text); 'github' emits Actions "
            "workflow commands for inline PR annotations"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help=(
            "comma-separated rule-id prefixes to run (default: all); "
            "SFL1 selects the whole SFL100-SFL105 family"
        ),
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule-id prefixes to skip",
    )
    parser.add_argument(
        "--exclude",
        metavar="FRAGMENTS",
        help=(
            "comma-separated path fragments to skip, in addition to "
            "[tool.safelint] exclude (e.g. tests/lint_fixtures)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file (default: [tool.safelint] baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-project-config",
        action="store_true",
        help="ignore [tool.safelint] in pyproject.toml",
    )
    parser.add_argument(
        "--batch-report",
        metavar="NAME",
        help=(
            "emit the JSON batchability report for the function NAME "
            "(e.g. run_episode) instead of linting: every function "
            "reachable from it with its inferred/declared effects and "
            "whether the whole call tree is safe to batch"
        ),
    )
    parser.add_argument(
        "--gates",
        metavar="FAMILIES",
        help=(
            "run several gates in this one process (comma-separated "
            "from: " + ", ".join(sorted(GATE_FAMILIES)) + "); shares "
            "the parse cache across gates, exits 1 if any gate fails"
        ),
    )
    return parser


def _parse_ids(raw: Optional[str]) -> Optional[frozenset]:
    if raw is None:
        return None
    ids = frozenset(part.strip() for part in raw.split(",") if part.strip())
    if not ids:
        # An empty --select would silently disable every rule and make
        # the gate pass vacuously; refuse it instead.
        raise LintError("--select/--ignore needs at least one rule id")
    registered = rule_ids()
    for prefix in ids:
        # A prefix must cover at least one registered rule, so typos
        # (SFL109, SLF001) still fail fast instead of matching nothing.
        if not any(rule_id.startswith(prefix) for rule_id in registered):
            get_rule(prefix)  # raises LintError with the catalogue hint
    return ids


def _print(text: str) -> None:
    # Tolerate a closed stdout (e.g. `repro-lint --list-rules | head`):
    # swallow the write and detach stdout so the interpreter's exit
    # flush does not raise a second time.
    try:
        print(text)
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    config = LintConfig()
    if not args.no_project_config:
        pyproject = find_pyproject(Path(args.paths[0]).resolve())
        if pyproject is not None:
            config = load_project_config(pyproject)
    select = _parse_ids(args.select)
    ignore = _parse_ids(args.ignore)
    exclude = (
        tuple(
            part.strip()
            for part in args.exclude.split(",")
            if part.strip()
        )
        if args.exclude
        else ()
    )
    if select is not None or ignore is not None or exclude:
        from dataclasses import replace

        config = replace(
            config,
            select=select if select is not None else config.select,
            ignore=ignore if ignore is not None else config.ignore,
            exclude=config.exclude + exclude,
        )
    return config


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.rule_id}  {rule.name} [{rule.severity.value}, "
            f"scope={rule.scope}]"
        )
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _escape_gh_data(text: str) -> str:
    """Escape workflow-command message data per the Actions spec."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_gh_property(text: str) -> str:
    """Escape workflow-command property values per the Actions spec."""
    return (
        _escape_gh_data(text).replace(":", "%3A").replace(",", "%2C")
    )


def _render_github(result: LintResult) -> str:
    """GitHub Actions workflow commands: one annotation per finding.

    The runner turns each ``::error file=...`` line into an inline PR
    annotation; the trailing summary line is plain text (ignored by the
    runner but useful in the raw log).
    """
    lines = []
    for finding in result.findings:
        command = (
            "warning" if finding.severity is Severity.WARNING else "error"
        )
        lines.append(
            f"::{command} "
            f"file={_escape_gh_property(finding.path)},"
            f"line={finding.line},"
            f"endLine={finding.end_line},"
            f"col={finding.column + 1},"
            f"endColumn={finding.end_column + 1},"
            f"title={_escape_gh_property('safelint ' + finding.rule_id)}"
            f"::{_escape_gh_data(finding.message)}"
        )
    lines.append(
        f"safelint: {len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    return "\n".join(lines)


def _render_text(result: LintResult) -> str:
    lines = [f.format_text() for f in result.findings]
    lines.append(
        f"safelint: {len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s) "
        f"({result.suppressed} suppressed, {result.baselined} baselined)"
    )
    return "\n".join(lines)


def _run_batch_report(args: argparse.Namespace) -> int:
    """``--batch-report``: print the JSON batchability report."""
    try:
        config = _resolve_config(args)
        table = build_effect_table_for(
            [Path(p) for p in args.paths], config
        )
        report = batchability_report(table, args.batch_report)
    except LintError as exc:
        print(f"safelint: error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"safelint: error: {exc}", file=sys.stderr)
        return 2
    _print(json.dumps(report, indent=2))
    return 0


def _run_gates(args: argparse.Namespace) -> int:
    """``--gates``: several gates, one process, one shared parse cache."""
    names = [part.strip() for part in args.gates.split(",") if part.strip()]
    unknown = [name for name in names if name not in GATE_FAMILIES]
    if not names or unknown:
        print(
            "safelint: error: --gates takes a comma-separated subset of "
            + ", ".join(sorted(GATE_FAMILIES))
            + (f" (got: {', '.join(unknown)})" if unknown else ""),
            file=sys.stderr,
        )
        return 2
    from dataclasses import replace

    try:
        config = _resolve_config(args)
        baseline_path: Optional[Path] = None
        if not args.no_baseline:
            if args.baseline is not None:
                baseline_path = Path(args.baseline)
            elif config.baseline is not None:
                baseline_path = config.baseline
        baseline = (
            load_baseline(baseline_path)
            if baseline_path is not None
            else Baseline()
        )
        exit_code = 0
        paths = [Path(p) for p in args.paths]
        for name in names:
            gate_config = replace(
                config, select=frozenset({GATE_FAMILIES[name]})
            )
            result = lint_paths(paths, gate_config, baseline=baseline)
            for finding in result.findings:
                _print(finding.format_text())
            _print(
                f"safelint[{name}]: {len(result.findings)} finding(s) "
                f"in {result.files_checked} file(s) "
                f"({result.suppressed} suppressed, "
                f"{result.baselined} baselined)"
            )
            if not result.ok:
                exit_code = 1
    except LintError as exc:
        print(f"safelint: error: {exc}", file=sys.stderr)
        return 2
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print(_list_rules())
        return 0

    if args.batch_report is not None:
        return _run_batch_report(args)

    if args.gates is not None:
        return _run_gates(args)

    try:
        config = _resolve_config(args)
        baseline_path: Optional[Path] = None
        if args.no_baseline:
            baseline_path = None
        elif args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif config.baseline is not None:
            baseline_path = config.baseline

        if args.write_baseline:
            target = baseline_path or Path(".safelint-baseline.json")
            raw = lint_paths(
                [Path(p) for p in args.paths], config, baseline=Baseline()
            )
            write_baseline(target, raw.findings)
            _print(
                f"safelint: wrote {len(raw.findings)} finding(s) to "
                f"{target}"
            )
            return 0

        baseline = (
            load_baseline(baseline_path)
            if baseline_path is not None
            else Baseline()
        )
        result = lint_paths(
            [Path(p) for p in args.paths], config, baseline=baseline
        )
    except LintError as exc:
        print(f"safelint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        _print(
            json.dumps(
                report_to_dict(
                    result.findings,
                    files_checked=result.files_checked,
                    suppressed=result.suppressed,
                    baselined=result.baselined,
                ),
                indent=2,
            )
        )
    elif args.format == "github":
        _print(_render_github(result))
    else:
        _print(_render_text(result))
    return 0 if result.ok else 1
