"""The per-file safeflow analysis consumed by rules SFL300-SFL306.

Mirrors the dim/shape layering: the engine builds one program-wide
:class:`~repro.lint.flow.fixpoint.EffectTable` per lint invocation and
hands it to every file via ``FileContext.effect_table``; outside an
engine run (unit tests poking a single file) the checker falls back to
a table built from the file alone.  The analysis runs once per file and
is cached, so the seven rules of the family cost a single pass.

Violations carry a ``kind``:

========================  ======  =====================================
kind                      rule    meaning
========================  ======  =====================================
``vectorize``             SFL300  numpy op applied per element in a loop
``global-mutation``       SFL301  reachable from ``run_episode`` and
                                  mutates module-global/closure state
``accumulate``            SFL302  append-in-loop then ``np.array``
``nondeterminism``        SFL303  unordered/environmental source feeds
                                  a return value
``hoist``                 SFL304  loop-invariant pure call inside loop
``contradiction``         SFL305  declared ``Effects:`` contradicted by
                                  inference (or malformed spec)
``rng-undeclared``        SFL306  RNG threaded through an undeclared
                                  function
========================  ======  =====================================
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lint.flow.effects import (
    DRAWS_RNG,
    MUTATES_GLOBAL,
    format_effects,
)
from repro.lint.flow.fixpoint import EffectTable, build_effect_table
from repro.lint.flow.loops import (
    KIND_ACCUMULATE,
    KIND_HOIST,
    KIND_NONDET,
    KIND_VECTORIZE,
    FlowViolation,
    append_then_convert,
    class_accumulations,
    hoistable_calls,
    nondeterministic_returns,
    per_element_numpy,
)
from repro.lint.interp import iter_functions

__all__ = [
    "KIND_ACCUMULATE",
    "KIND_CONTRADICTION",
    "KIND_GLOBAL",
    "KIND_HOIST",
    "KIND_NONDET",
    "KIND_RNG",
    "KIND_VECTORIZE",
    "FlowViolation",
    "analyze",
]

KIND_GLOBAL = "global-mutation"
KIND_CONTRADICTION = "contradiction"
KIND_RNG = "rng-undeclared"

#: The batching entry point whose reachable set SFL301 polices.
EPISODE_ROOT = "run_episode"


def _episode_reachable(table: EffectTable) -> frozenset:
    """Qualnames reachable from any function named ``run_episode``."""
    reachable: set = set()
    for qualname, node in table.graph.nodes.items():
        if node.name == EPISODE_ROOT:
            reachable.update(table.reachable_from(qualname))
    return frozenset(reachable)


def _analyze_uncached(context, tree: ast.Module) -> Tuple[FlowViolation, ...]:
    table: Optional[EffectTable] = getattr(context, "effect_table", None)
    if table is None:
        table = build_effect_table({context.module: tree})
    imports = table.graph.imports.get(context.module, {})
    reachable = _episode_reachable(table)
    violations: List[FlowViolation] = []

    for statement in tree.body:
        if isinstance(statement, ast.ClassDef):
            class_accumulations(statement, imports, violations)

    for class_name, func in iter_functions(tree):
        per_element_numpy(func, imports, violations)
        append_then_convert(func, imports, violations)
        nondeterministic_returns(func, imports, violations)
        hoistable_calls(func, context.module, table, violations)

        verdict = table.lookup_function(context.module, class_name, func.name)
        if verdict is None:
            continue

        for issue in verdict.spec.issues:
            violations.append(
                FlowViolation(
                    line=issue.line,
                    column=0,
                    kind=KIND_CONTRADICTION,
                    message=f"malformed Effects spec: {issue.message}",
                )
            )

        undeclared = verdict.contradictions
        if undeclared:
            extras = []
            for effect in sorted(undeclared):
                line, why = verdict.evidence.get(effect, (verdict.line, "?"))
                extras.append(f"{effect} (line {line}: {why})")
            violations.append(
                FlowViolation(
                    line=verdict.spec.line,
                    column=0,
                    kind=KIND_CONTRADICTION,
                    message=(
                        f"declares 'Effects: "
                        f"{format_effects(verdict.declared)}' but is "
                        f"inferred to also {'; '.join(extras)}"
                    ),
                )
            )

        if verdict.rng_params_used and (
            verdict.declared is None or DRAWS_RNG not in verdict.declared
        ):
            params = ", ".join(repr(p) for p in verdict.rng_params_used)
            violations.append(
                FlowViolation(
                    line=func.lineno,
                    column=func.col_offset,
                    kind=KIND_RNG,
                    message=(
                        f"threads RNG parameter {params} but does not "
                        "declare 'Effects: draws-rng'; the batch engine "
                        "must know every function on a stream's path "
                        "to thread a batched stream through it"
                    ),
                )
            )

        if MUTATES_GLOBAL in verdict.inferred and (
            verdict.qualname in reachable
        ):
            line, why = verdict.evidence.get(
                MUTATES_GLOBAL, (verdict.line, "inferred")
            )
            violations.append(
                FlowViolation(
                    line=line,
                    column=0,
                    kind=KIND_GLOBAL,
                    message=(
                        f"{verdict.qualname} is reachable from "
                        f"{EPISODE_ROOT} and mutates module-global/"
                        f"closure state ({why}); batched episodes "
                        "sharing this state would cross-contaminate"
                    ),
                )
            )

    return tuple(violations)


#: (path, source) -> (effect table the result was computed against,
#: result).  The seven SFL30x rules all consume the same per-file
#: analysis; identity-comparing the table keeps a stale program-wide
#: result from leaking into a run with a different table.
_CACHE: Dict[
    Tuple[str, str], Tuple[Optional[EffectTable], Tuple[FlowViolation, ...]]
] = {}
_CACHE_LIMIT = 8


def analyze(context, tree: ast.Module) -> Tuple[FlowViolation, ...]:
    """Flow violations of one parsed file (cached per file)."""
    key = (context.path, context.source)
    supplied = getattr(context, "effect_table", None)
    cached = _CACHE.get(key)
    if cached is not None and cached[0] is supplied:
        return cached[1]
    result = _analyze_uncached(context, tree)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = (supplied, result)
    return result
