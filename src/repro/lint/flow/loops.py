"""Vectorization-readiness and determinism detectors (SFL300/302/303/304).

These are intraprocedural pattern detectors over one function (or one
class, for the accumulate-then-convert pattern) that complement the
interprocedural effect inference: where the fixpoint asks *may this
call tree touch hidden state*, these ask *is this loop already shaped
like the batched code the roadmap's vectorized engine needs*.

Each detector is deliberately narrow — it fires only on the syntactic
shape it names, because the flow gate keeps ``src`` at zero findings
and a chatty heuristic would get the gate weakened rather than the
code fixed:

* SFL300 fires only when a ``numpy`` call's argument *is* the loop
  variable (or an element indexed by it) — a sequential dependence
  loop that merely calls numpy on whole arrays is left alone;
* SFL302 fires only on the full triad init-``[]`` / append-in-loop /
  ``np.array``-style conversion (function-local), or its class-level
  twin (``self._xs = []`` in ``__init__``, append in one method,
  conversion in another);
* SFL303 fires only when a genuinely unordered or environmental source
  (set iteration, ``set.pop``, ``time.*``, ``os.environ``) reaches a
  ``return`` without passing through an order-erasing function
  (``sorted``/``len``/``min``/``max``/``sum``/aggregates);
* SFL304 fires only when every argument of a pure call is provably
  loop-invariant and the result is bound once to a non-target name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Union

from repro.lint.interp import assigned_names, dotted_chain

__all__ = [
    "FlowViolation",
    "KIND_ACCUMULATE",
    "KIND_HOIST",
    "KIND_NONDET",
    "KIND_VECTORIZE",
    "append_then_convert",
    "class_accumulations",
    "hoistable_calls",
    "nondeterministic_returns",
    "per_element_numpy",
]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

KIND_VECTORIZE = "vectorize"
KIND_ACCUMULATE = "accumulate"
KIND_NONDET = "nondeterminism"
KIND_HOIST = "hoist"


@dataclass(frozen=True, slots=True)
class FlowViolation:
    """One flow finding, split by kind across SFL300-SFL306."""

    line: int
    column: int
    kind: str
    message: str


#: numpy callables that materialize a list into an array.
ARRAY_BUILDERS = frozenset(
    {
        "array",
        "asarray",
        "stack",
        "concatenate",
        "vstack",
        "hstack",
        "column_stack",
    }
)

#: Aggregations that erase iteration order (and so launder set taint).
_ORDER_ERASERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "frozenset", "set"}
)

_APPENDERS = frozenset({"append", "extend", "insert"})


def _is_numpy_chain(
    chain: Optional[List[str]], imports: Dict[str, str]
) -> bool:
    return (
        chain is not None
        and len(chain) > 1
        and imports.get(chain[0]) == "numpy"
    )


def _loop_functions(func: _FuncNode) -> List[ast.For]:
    """Every ``for`` loop of ``func``, nested defs excluded."""
    loops: List[ast.For] = []
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.For):
            loops.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return loops


def _stored_names(nodes: Sequence[ast.AST]) -> Set[str]:
    names: Set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    names.update(assigned_names(target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                names.update(assigned_names(node.target))
            elif isinstance(node, ast.comprehension):
                names.update(assigned_names(node.target))
    return names


# ---------------------------------------------------------------------
# SFL300: per-element numpy call inside a Python loop.
# ---------------------------------------------------------------------
def per_element_numpy(
    func: _FuncNode,
    imports: Dict[str, str],
    violations: List[FlowViolation],
) -> None:
    """SFL300: numpy called on the loop variable (or an element of it)."""
    for loop in _loop_functions(func):
        loop_names = set(assigned_names(loop.target))
        if not loop_names:
            continue
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if not _is_numpy_chain(chain, imports):
                continue
            if any(
                _is_element_of(arg, loop_names) for arg in node.args
            ):
                dotted = ".".join(chain)
                violations.append(
                    FlowViolation(
                        line=node.lineno,
                        column=node.col_offset,
                        kind=KIND_VECTORIZE,
                        message=(
                            f"{dotted}() is applied to one element per "
                            "iteration of this loop; apply it to the "
                            "whole array once instead (numpy dispatch "
                            "per element serializes a batchable op)"
                        ),
                    )
                )


def _is_element_of(arg: ast.expr, loop_names: Set[str]) -> bool:
    if isinstance(arg, ast.Name):
        return arg.id in loop_names
    if isinstance(arg, ast.Subscript):
        return any(
            isinstance(node, ast.Name) and node.id in loop_names
            for node in ast.walk(arg.slice)
        )
    return False


# ---------------------------------------------------------------------
# SFL302: append-in-loop then np.array conversion.
# ---------------------------------------------------------------------
def append_then_convert(
    func: _FuncNode,
    imports: Dict[str, str],
    violations: List[FlowViolation],
) -> None:
    """The function-local triad: ``xs = []`` / append in loop / builder."""
    empty_lists: Set[str] = set()
    for node in ast.walk(func):
        for target, value in _binding_pairs(node):
            if _is_empty_list(value) and isinstance(target, ast.Name):
                empty_lists.add(target.id)
    if not empty_lists:
        return

    appended: Dict[str, ast.Call] = {}
    for loop in _loop_functions(func):
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _APPENDERS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in empty_lists
            ):
                appended.setdefault(node.func.value.id, node)
    if not appended:
        return

    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if not _is_numpy_chain(chain, imports):
            continue
        if chain[-1] not in ARRAY_BUILDERS or not node.args:
            continue
        target = node.args[0]
        if isinstance(target, ast.Name) and target.id in appended:
            append_site = appended[target.id]
            violations.append(
                FlowViolation(
                    line=append_site.lineno,
                    column=append_site.col_offset,
                    kind=KIND_ACCUMULATE,
                    message=(
                        f"list {target.id!r} grows by append in this "
                        f"loop and is materialized with "
                        f"np.{chain[-1]}() at line {node.lineno}; "
                        "preallocate the array (the length is known "
                        "here) or build it in one vectorized "
                        "expression"
                    ),
                )
            )


def _binding_pairs(node: ast.AST):
    """``(target, value)`` pairs of plain and annotated assignments."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield target, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.target, node.value


def _is_empty_list(value: ast.expr) -> bool:
    if isinstance(value, ast.List) and not value.elts:
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "list"
        and not value.args
        and not value.keywords
    )


def class_accumulations(
    classdef: ast.ClassDef,
    imports: Dict[str, str],
    violations: List[FlowViolation],
) -> None:
    """The class-level triad: ``self._xs = []`` in ``__init__``, an
    appending method, and a sibling method converting with a builder."""
    list_attrs: Set[str] = set()
    for method in classdef.body:
        if (
            isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
            and method.name == "__init__"
        ):
            for node in ast.walk(method):
                for target, value in _binding_pairs(node):
                    if _is_empty_list(value) and _is_self_attr(target):
                        list_attrs.add(target.attr)
    if not list_attrs:
        return

    append_sites: Dict[str, ast.Call] = {}
    converted: Dict[str, ast.Call] = {}
    converter_method: Dict[str, str] = {}
    for method in classdef.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _APPENDERS
                and _is_self_attr(node.func.value)
                and node.func.value.attr in list_attrs
            ):
                append_sites.setdefault(node.func.value.attr, node)
            chain = dotted_chain(node.func)
            if (
                _is_numpy_chain(chain, imports)
                and chain[-1] in ARRAY_BUILDERS
                and node.args
                and _is_self_attr(node.args[0])
                and node.args[0].attr in list_attrs
            ):
                converted.setdefault(node.args[0].attr, node)
                converter_method.setdefault(node.args[0].attr, method.name)

    for attr in sorted(set(append_sites) & set(converted)):
        site = append_sites[attr]
        conversion = converted[attr]
        violations.append(
            FlowViolation(
                line=site.lineno,
                column=site.col_offset,
                kind=KIND_ACCUMULATE,
                message=(
                    f"self.{attr} accumulates one element per call here "
                    f"and is materialized with np."
                    f"{dotted_chain(conversion.func)[-1]}() in "
                    f"{converter_method[attr]}() at line "
                    f"{conversion.lineno}; preallocate or expose a "
                    "structure-of-arrays layout"
                ),
            )
        )


def _is_self_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


# ---------------------------------------------------------------------
# SFL303: nondeterminism feeding a return value.
# ---------------------------------------------------------------------
class _TaintTracker:
    def __init__(
        self, imports: Dict[str, str], violations: List[FlowViolation]
    ) -> None:
        self.imports = imports
        self.violations = violations
        #: name -> human description of its nondeterminism source.
        self.tainted: Dict[str, str] = {}
        #: names currently bound to set objects.
        self.set_names: Set[str] = set()

    # -- expression classification -------------------------------------
    def is_set_valued(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return self.is_set_valued(node.left) or self.is_set_valued(
                node.right
            )
        return False

    def taint_reason(self, node: ast.expr) -> Optional[str]:
        """Why this expression is nondeterministic, or None."""
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Subscript):
            chain = dotted_chain(node.value)
            if chain == ["os", "environ"]:
                return "os.environ read"
            return self.taint_reason(node.value) or self.taint_reason(
                node.slice
            )
        if isinstance(node, ast.Attribute):
            return self.taint_reason(node.value)
        if isinstance(node, ast.BinOp):
            return self.taint_reason(node.left) or self.taint_reason(
                node.right
            )
        if isinstance(node, ast.UnaryOp):
            return self.taint_reason(node.operand)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                reason = self.taint_reason(value)
                if reason:
                    return reason
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                reason = self.taint_reason(element)
                if reason:
                    return reason
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    reason = self.taint_reason(value)
                    if reason:
                        return reason
            return None
        if isinstance(node, ast.IfExp):
            return self.taint_reason(node.body) or self.taint_reason(
                node.orelse
            )
        if isinstance(node, ast.Starred):
            return self.taint_reason(node.value)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for generator in node.generators:
                if self.is_set_valued(generator.iter):
                    return "iteration over a set (unordered)"
                reason = self.taint_reason(generator.iter)
                if reason:
                    return reason
            return self.taint_reason(node.elt)
        return None

    def _call_taint(self, node: ast.Call) -> Optional[str]:
        chain = dotted_chain(node.func)
        if chain is not None:
            resolved = self.imports.get(
                chain[0], chain[0] if len(chain) > 1 else None
            )
            if resolved == "time":
                return f"{'.'.join(chain)}() wall-clock read"
            if chain[-1] == "getenv" and resolved == "os":
                return "os.environ read"
            if (
                len(chain) > 2
                and chain[0] == "os"
                and chain[1] == "environ"
            ):
                return "os.environ read"
            if chain[-1] == "pop" and len(chain) > 1:
                receiver_root = chain[0]
                if receiver_root in self.set_names:
                    return "set.pop() (arbitrary element)"
            if len(chain) == 1 and chain[0] in _ORDER_ERASERS:
                return None  # order-erasing aggregate launders taint
            if (
                len(chain) == 1
                and chain[0] in {"list", "tuple", "iter"}
                and node.args
                and self.is_set_valued(node.args[0])
            ):
                return "materialization of a set (unordered)"
        # An unmodelled call transmits its arguments' taint.
        for arg in node.args:
            reason = self.taint_reason(arg)
            if reason:
                return reason
        for keyword in node.keywords:
            reason = self.taint_reason(keyword.value)
            if reason:
                return reason
        return None

    # -- statement walk ------------------------------------------------
    def run(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self._statement(statement)

    def _bind(self, target: ast.expr, reason: Optional[str]) -> None:
        for name in assigned_names(target):
            if reason:
                self.tainted[name] = reason
            else:
                self.tainted.pop(name, None)

    def _statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(statement, ast.Assign):
            reason = self.taint_reason(statement.value)
            for target in statement.targets:
                self._bind(target, reason)
                if isinstance(target, ast.Name):
                    if self.is_set_valued(statement.value):
                        self.set_names.add(target.id)
                    else:
                        self.set_names.discard(target.id)
            return
        if isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._bind(
                    statement.target, self.taint_reason(statement.value)
                )
            return
        if isinstance(statement, ast.AugAssign):
            reason = self.taint_reason(statement.value)
            if reason:
                self._bind(statement.target, reason)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            if self.is_set_valued(statement.iter):
                self._bind(
                    statement.target, "iteration over a set (unordered)"
                )
            else:
                self._bind(
                    statement.target, self.taint_reason(statement.iter)
                )
            self.run(statement.body)
            self.run(statement.orelse)
            return
        if isinstance(statement, (ast.While, ast.If)):
            self.run(statement.body)
            self.run(statement.orelse)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            self.run(statement.body)
            return
        if isinstance(statement, ast.Try):
            self.run(statement.body)
            for handler in statement.handlers:
                self.run(handler.body)
            self.run(statement.orelse)
            self.run(statement.finalbody)
            return
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Call
        ):
            call = statement.value
            # ``out.append(tainted)`` taints the container.
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _APPENDERS | {"add", "update"}
                and isinstance(call.func.value, ast.Name)
            ):
                for arg in call.args:
                    reason = self.taint_reason(arg)
                    if reason:
                        self.tainted[call.func.value.id] = reason
                        break
            return
        if isinstance(statement, ast.Return):
            if statement.value is None:
                return
            reason = self.taint_reason(statement.value)
            if reason:
                self.violations.append(
                    FlowViolation(
                        line=statement.lineno,
                        column=statement.col_offset,
                        kind=KIND_NONDET,
                        message=(
                            f"return value derives from {reason}; "
                            "results must be a deterministic function "
                            "of config and seed (sort, or use an "
                            "ordered container, before returning)"
                        ),
                    )
                )


def nondeterministic_returns(
    func: _FuncNode,
    imports: Dict[str, str],
    violations: List[FlowViolation],
) -> None:
    """SFL303: an unordered/environmental source reaching a return."""
    tracker = _TaintTracker(imports, violations)
    tracker.run(func.body)


# ---------------------------------------------------------------------
# SFL304: loop-invariant pure call.
# ---------------------------------------------------------------------
def hoistable_calls(
    func: _FuncNode,
    module: str,
    effect_table,
    violations: List[FlowViolation],
) -> None:
    """SFL304: a pure, loop-invariant call bound once inside a loop."""
    local_names = frozenset(_stored_names(list(func.body))) | frozenset(
        arg.arg
        for arg in [
            *func.args.posonlyargs,
            *func.args.args,
            *func.args.kwonlyargs,
        ]
    )
    for loop in _loop_functions(func):
        loop_names = set(assigned_names(loop.target))
        stored_in_loop = _stored_names(list(loop.body)) | loop_names
        for statement in loop.body:
            if not isinstance(statement, ast.Assign):
                continue
            if len(statement.targets) != 1 or not isinstance(
                statement.targets[0], ast.Name
            ):
                continue
            bound = statement.targets[0].id
            if bound in loop_names:
                continue
            if not isinstance(statement.value, ast.Call):
                continue
            call = statement.value
            chain = dotted_chain(call.func)
            if chain is None:
                continue
            if not effect_table.is_pure_callable(
                module, chain, local_names
            ):
                continue
            mentioned = {
                node.id
                for arg in [
                    *call.args,
                    *[keyword.value for keyword in call.keywords],
                ]
                for node in ast.walk(arg)
                if isinstance(node, ast.Name)
            }
            if mentioned & stored_in_loop:
                continue
            if _store_count(loop, bound) != 1:
                continue
            violations.append(
                FlowViolation(
                    line=statement.lineno,
                    column=statement.col_offset,
                    kind=KIND_HOIST,
                    message=(
                        f"{'.'.join(chain)}() is pure and all its "
                        "arguments are loop-invariant; hoist the call "
                        "above the loop instead of re-evaluating it "
                        "every iteration"
                    ),
                )
            )


def _store_count(loop: ast.For, name: str) -> int:
    count = 0
    for node in ast.walk(loop):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if name in set(assigned_names(target)):
                    count += 1
    return count
