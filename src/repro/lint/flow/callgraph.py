"""A cross-module call graph over the linted tree.

Nodes are the module-level functions and class methods of the analyzed
modules, keyed by dotted qualname (``pkg.mod.func`` /
``pkg.mod.Class.method``).  Edges are resolved syntactically, reusing
the dim pass's import map (:func:`repro.lint.dim.signatures
.build_import_map`) so aliased and relative imports land on the right
module:

* ``name(...)`` — a module-level function or class of the defining
  module, or whatever the import map says ``name`` is; instantiating a
  class edges to its ``__init__``;
* ``self.m(...)`` / ``cls.m(...)`` / ``C.m(...)`` — the method of the
  caller's own class (or the named same-module class) when it defines
  one, else every user-defined method named ``m`` anywhere in the tree
  (the *method-name index* — a deliberate over-approximation, since a
  receiver's class is rarely knowable syntactically);
* ``obj.m(...)`` — when ``obj`` is a parameter or local with a class
  annotation (``engine: SimulationEngine``, ``injector:
  Optional[FaultInjector] = ...``), the call pins to that class's
  method; otherwise the method-name index, except that
  builtin-container mutator names (``append``, ``update``, ...) on a
  *local* receiver are taken to be genuine container operations and
  edge nowhere (otherwise every local ``list.append`` would alias
  every user-defined ``append``).

Each edge records whether the call syntactically passes any caller
parameter (as receiver or argument) — ``mutates-args`` propagates to
the caller only along such edges, since mutating a freshly-built local
is the caller's private business.

Recursion is handled by SCC condensation: :meth:`CallGraph.sccs` emits
strongly connected components callees-first (iterative Tarjan, safe on
deep graphs), so the effect fixpoint is a single bottom-up sweep with
one union per cycle.

Known blind spots, shared with every syntactic call graph: calls
through ``super()``, values returned from factories, callbacks invoked
via a parameter, and ``@property`` accesses are not edged.  The effect
inference therefore *under*-approximates through those constructs;
declared ``Effects:`` specs at the relevant boundaries are the
mitigation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.lint.dim.signatures import build_import_map
from repro.lint.flow.facts import MUTATOR_METHODS, _strip_optional
from repro.lint.interp import assigned_names, dotted_chain

__all__ = ["CallEdge", "CallGraph", "FunctionNode", "build_call_graph"]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class FunctionNode:
    """One analyzed function or method."""

    qualname: str
    module: str
    class_name: Optional[str]
    name: str
    func: _FuncNode = field(repr=False, compare=False)

    @property
    def line(self) -> int:
        """Line of the ``def`` (finding anchor of last resort)."""
        return self.func.lineno


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site.

    ``passes_params`` is True when the receiver or any argument
    syntactically mentions a caller parameter; ``via_index`` marks
    edges resolved through the method-name index rather than a direct
    name lookup (useful for explaining over-approximated findings).
    """

    caller: str
    callee: str
    line: int
    passes_params: bool = False
    via_index: bool = False


def _module_variables(tree: ast.Module) -> FrozenSet[str]:
    """Module-level variable bindings (imports/defs excluded)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(assigned_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(assigned_names(node.target))
    names.discard("__all__")
    return frozenset(names)


class CallGraph:
    """The resolved call graph plus per-module context tables."""

    def __init__(self) -> None:
        self.nodes: Dict[str, FunctionNode] = {}
        self.edges: Dict[str, List[CallEdge]] = {}
        #: ``pkg.mod.Class`` -> ``__init__`` qualname (or None).
        self.class_inits: Dict[str, Optional[str]] = {}
        self.module_vars: Dict[str, FrozenSet[str]] = {}
        self.imports: Dict[str, Dict[str, str]] = {}
        self._method_index: Dict[str, Tuple[str, ...]] = {}

    # -- lookups --------------------------------------------------------
    def methods_named(self, name: str) -> Tuple[str, ...]:
        """Every method qualname with this name (the untyped-receiver
        over-approximation; empty for container-mutator names)."""
        return self._method_index.get(name, ())

    def resolve(self, name: str) -> Optional[str]:
        """Resolve a (possibly partial) dotted name to a node qualname.

        Exact qualnames win; otherwise a unique dotted-suffix match is
        accepted (``run_episode`` -> ``repro.sim.engine.run_episode``),
        which is what lets the CLI take bare function names.
        """
        if name in self.nodes:
            return name
        suffix = name if name.startswith(".") else "." + name
        matches = [
            qualname
            for qualname in self.nodes
            if qualname.endswith(suffix)
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def reachable_from(self, root: str) -> List[str]:
        """Qualnames reachable from ``root`` (root included), sorted."""
        seen: Set[str] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.edges.get(current, ()):
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return sorted(seen)

    # -- SCC condensation ----------------------------------------------
    def sccs(self) -> List[List[str]]:
        """Strongly connected components, callees before callers.

        Iterative Tarjan — the sim tree is shallow today, but a lint
        pass must not die by recursion limit on whatever it is pointed
        at tomorrow.
        """
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[List[str]] = []
        counter = 0

        for start in sorted(self.nodes):
            if start in index_of:
                continue
            # Explicit work stack of (node, iterator position) frames.
            work: List[Tuple[str, int]] = [(start, 0)]
            while work:
                node, position = work.pop()
                if position == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                callees = self.edges.get(node, ())
                for offset in range(position, len(callees)):
                    callee = callees[offset].callee
                    if callee not in self.nodes:
                        continue
                    if callee not in index_of:
                        work.append((node, offset + 1))
                        work.append((callee, 0))
                        recurse = True
                        break
                    if callee in on_stack:
                        low[node] = min(low[node], index_of[callee])
                if recurse:
                    continue
                if low[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components


class _CallCollector(ast.NodeVisitor):
    """Collect the outgoing edges of one function body."""

    def __init__(
        self,
        graph: CallGraph,
        node: FunctionNode,
        params: FrozenSet[str],
        local_names: FrozenSet[str],
    ) -> None:
        self.graph = graph
        self.node = node
        self.params = params
        self.local_names = local_names
        self.edges: List[CallEdge] = []
        #: Annotated name -> class qualname, for typed receivers
        #: (``engine: SimulationEngine`` pins ``engine.run()`` to that
        #: class instead of the promiscuous method-name index).
        self.param_types: Dict[str, str] = {}
        imports = graph.imports.get(node.module, {})
        arguments = node.func.args
        for arg in [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]:
            if arg.annotation is None:
                continue
            self._pin_receiver_type(arg.arg, arg.annotation, imports)
        # Annotated local assignments pin the same way (``injector:
        # Optional[FaultInjector] = None`` resolves ``injector.plan``
        # to that class).  A parameter annotation wins over a local
        # one of the same name; nested defs are folded into the
        # enclosing node by the fact extractor, so their annotated
        # locals land here too.
        for sub in ast.walk(node.func):
            if (
                isinstance(sub, ast.AnnAssign)
                and isinstance(sub.target, ast.Name)
                and sub.target.id not in self.param_types
            ):
                self._pin_receiver_type(
                    sub.target.id, sub.annotation, imports
                )

    def _pin_receiver_type(
        self, name: str, annotation: ast.expr, imports: Mapping[str, str]
    ) -> None:
        """Record ``name``'s class qualname if the annotation names one."""
        chain = dotted_chain(_strip_optional(annotation))
        if not chain:
            return
        if len(chain) == 1:
            candidates = [
                f"{self.node.module}.{chain[0]}",
                imports.get(chain[0], ""),
            ]
        else:
            root_module = imports.get(chain[0])
            candidates = (
                [".".join([root_module, *chain[1:]])] if root_module else []
            )
        for candidate in candidates:
            if candidate in self.graph.class_inits:
                self.param_types[name] = candidate
                break

    # Nested defs are folded into the enclosing function by the fact
    # extractor; their call sites belong to the enclosing node too.

    def visit_Call(self, call: ast.Call) -> None:
        chain = dotted_chain(call.func)
        if chain:
            self._resolve(chain, call)
        self.generic_visit(call)

    def _mentions_param(self, *exprs: Optional[ast.expr]) -> bool:
        for expr in exprs:
            if expr is None:
                continue
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name) and sub.id in self.params:
                    return True
        return False

    def _passes_params(self, call: ast.Call) -> bool:
        receiver = (
            call.func.value
            if isinstance(call.func, ast.Attribute)
            else None
        )
        return self._mentions_param(
            receiver,
            *call.args,
            *[keyword.value for keyword in call.keywords],
        )

    def _add(
        self, callee: Optional[str], call: ast.Call, *, via_index: bool = False
    ) -> None:
        if callee is None:
            return
        self.edges.append(
            CallEdge(
                caller=self.node.qualname,
                callee=callee,
                line=call.lineno,
                passes_params=self._passes_params(call),
                via_index=via_index,
            )
        )

    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        """A fully-qualified dotted target -> node qualname, if ours."""
        if dotted in self.graph.nodes:
            return dotted
        if dotted in self.graph.class_inits:
            return self.graph.class_inits[dotted]
        return None

    def _resolve(self, chain: List[str], call: ast.Call) -> None:
        graph = self.graph
        module = self.node.module
        imports = graph.imports.get(module, {})
        root = chain[0]

        if len(chain) == 1:
            if root in self.local_names and root not in imports:
                return  # a local callable; opaque
            direct = self._resolve_dotted(f"{module}.{root}")
            if direct is not None:
                self._add(direct, call)
                return
            if root in imports:
                self._add(self._resolve_dotted(imports[root]), call)
            return

        # self.m() / cls.m(): own class first, then the name index.
        if root in {"self", "cls"} and self.node.class_name is not None:
            own = (
                f"{module}.{self.node.class_name}.{chain[1]}"
                if len(chain) == 2
                else None
            )
            if own is not None and own in graph.nodes:
                self._add(own, call)
                return
            # ``self.helper()`` with no own definition (inheritance),
            # or ``self.attr.method()``: the name index decides.
            self._index_edges(chain[-1], call, receiver_root=root)
            return

        # Typed receiver: an annotated parameter pins the class, so the
        # call resolves precisely instead of through the name index.
        # A method the pinned class does not define (inherited, or a
        # stored callable) edges nowhere — declare effects at that
        # boundary if they matter.
        if len(chain) == 2 and root in self.param_types:
            typed = f"{self.param_types[root]}.{chain[1]}"
            self._add(typed if typed in graph.nodes else None, call)
            return

        # C.m() with C a class of this module, or a module alias chain —
        # but only when ``root`` is not shadowed by a parameter/local
        # (then the receiver is an instance, not the import).
        shadowed = root in self.params or (
            root in self.local_names and root not in imports
        )
        resolved_root = None if shadowed else imports.get(root)
        if resolved_root is None and not shadowed:
            if f"{module}.{root}" in graph.class_inits:
                resolved_root = f"{module}.{root}"
        if resolved_root is not None:
            dotted = ".".join([resolved_root, *chain[1:]])
            # External modules (numpy etc.) resolve to None: no edge.
            self._add(self._resolve_dotted(dotted), call)
            return

        # obj.m(): fall back to the method-name index.
        self._index_edges(chain[-1], call, receiver_root=root)

    def _index_edges(
        self, method: str, call: ast.Call, *, receiver_root: str
    ) -> None:
        if method in MUTATOR_METHODS:
            # ``xs.append(...)`` / ``d.update(...)`` is almost always a
            # builtin-container mutation (which the fact extractor
            # records directly), not a call into some class that
            # happens to define a method of that name — aliasing every
            # ``.append`` to, say, a journal writer's would poison the
            # whole graph with its I/O.  The cost: a genuine call to a
            # user-defined method *named like* a container mutator is
            # not edged; declare effects at that boundary if they
            # matter.
            return
        for qualname in self.graph.methods_named(method):
            if qualname == self.node.qualname:
                continue
            self._add(qualname, call, via_index=True)


def _function_locals(func: _FuncNode) -> FrozenSet[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                names.update(assigned_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(assigned_names(node.target))
        elif isinstance(node, ast.comprehension):
            names.update(assigned_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(assigned_names(item.optional_vars))
    return frozenset(names)


def _function_params(func: _FuncNode) -> FrozenSet[str]:
    arguments = func.args
    every = [
        *arguments.posonlyargs,
        *arguments.args,
        *arguments.kwonlyargs,
        *([arguments.vararg] if arguments.vararg else []),
        *([arguments.kwarg] if arguments.kwarg else []),
    ]
    return frozenset(arg.arg for arg in every)


def build_call_graph(modules: Mapping[str, ast.Module]) -> CallGraph:
    """Build the call graph of ``module name -> parsed tree``."""
    graph = CallGraph()
    method_index: Dict[str, Set[str]] = {}

    # Pass 1: index every definition.
    for module, tree in sorted(modules.items()):
        graph.imports[module] = build_import_map(module, tree)
        graph.module_vars[module] = _module_variables(tree)
        for statement in tree.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qualname = f"{module}.{statement.name}"
                graph.nodes[qualname] = FunctionNode(
                    qualname, module, None, statement.name, statement
                )
            elif isinstance(statement, ast.ClassDef):
                class_qualname = f"{module}.{statement.name}"
                graph.class_inits.setdefault(class_qualname, None)
                for member in statement.body:
                    if not isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    qualname = f"{class_qualname}.{member.name}"
                    graph.nodes[qualname] = FunctionNode(
                        qualname,
                        module,
                        statement.name,
                        member.name,
                        member,
                    )
                    if member.name == "__init__":
                        graph.class_inits[class_qualname] = qualname
                    if not member.name.startswith("__"):
                        method_index.setdefault(member.name, set()).add(
                            qualname
                        )

    graph._method_index = {
        name: tuple(sorted(qualnames))
        for name, qualnames in method_index.items()
    }

    # Pass 2: resolve call sites.
    for qualname in sorted(graph.nodes):
        node = graph.nodes[qualname]
        collector = _CallCollector(
            graph,
            node,
            _function_params(node.func),
            _function_locals(node.func) | _function_params(node.func),
        )
        for statement in node.func.body:
            collector.visit(statement)
        graph.edges[qualname] = collector.edges
    return graph
