"""safeflow — interprocedural purity/effect & vectorization-readiness.

The vectorized batch engine (ROADMAP item 1) replaces the scalar
per-episode loop with structure-of-arrays numpy algebra over thousands
of episodes at once.  That migration is only sound if every function on
the episode hot path is free of hidden state: no module-global or
closure mutation (batches would cross-contaminate), no unordered
iteration or wall-clock reads feeding results (the bit-identical
resume/trace contracts from PRs 4-5 would silently break), and no
per-element numpy calls that serialize what should be one batched op.

This package proves those properties statically:

* :mod:`repro.lint.flow.callgraph` — a cross-module call graph over the
  linted tree (import-aware name resolution, method-name index, SCC
  condensation for recursion);
* :mod:`repro.lint.flow.facts` — per-function *local* effect facts
  (mutations, I/O, RNG draws, clock reads, global/closure writes);
* :mod:`repro.lint.flow.annotations` — the declared ``Effects:``
  docstring / ``Annotated`` spec (shared grammar plumbing with the dim
  and shape passes via :mod:`repro.lint.specs`);
* :mod:`repro.lint.flow.fixpoint` — the interprocedural effect
  inference: a bottom-up fixpoint over the SCC condensation, with
  declared specs acting as assume-guarantee boundaries;
* :mod:`repro.lint.flow.loops` — the vectorization-readiness loop
  detectors (per-element numpy calls, append-then-``np.array``
  accumulation, hoistable loop-invariant pure calls);
* :mod:`repro.lint.flow.checker` — the per-file analysis consumed by
  the SFL300-SFL306 rule family;
* :mod:`repro.lint.flow.report` — the machine-readable batchability
  report behind ``repro-lint --batch-report run_episode``.
"""

from __future__ import annotations

from repro.lint.flow.annotations import (
    EffectSpec,
    extract_function_effects,
)
from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.effects import (
    ALL_EFFECTS,
    BLOCKING_EFFECTS,
    DOES_IO,
    DRAWS_RNG,
    EFFECT_ORDER,
    MUTATES_ARGS,
    MUTATES_GLOBAL,
    PURE,
    READS_CLOCK,
    READS_STATE,
    format_effects,
)
from repro.lint.flow.fixpoint import (
    EffectTable,
    FunctionEffects,
    build_effect_table,
)
from repro.lint.flow.report import batchability_report

__all__ = [
    "ALL_EFFECTS",
    "BLOCKING_EFFECTS",
    "CallGraph",
    "DOES_IO",
    "DRAWS_RNG",
    "EFFECT_ORDER",
    "EffectSpec",
    "EffectTable",
    "FunctionEffects",
    "MUTATES_ARGS",
    "MUTATES_GLOBAL",
    "PURE",
    "READS_CLOCK",
    "READS_STATE",
    "batchability_report",
    "build_call_graph",
    "build_effect_table",
    "extract_function_effects",
    "format_effects",
]
