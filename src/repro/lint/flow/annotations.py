"""Extraction of declared ``Effects:`` specs from function definitions.

Two equivalent machine-checked spellings, mirroring the ``Units:`` and
``Shapes:`` conventions (docs/API.md):

* a ``Effects:`` directive line in the docstring::

      Effects: draws-rng, mutates-args

  The payload is a comma-separated list of effect keywords
  (:data:`repro.lint.flow.effects.EFFECT_ORDER`), or the single keyword
  ``pure`` for the empty set.

* an ``Annotated`` return hint whose metadata carries the same list
  behind an ``effects:`` prefix::

      def plan(self, context) -> Annotated[float, "effects: pure"]: ...

A declared spec is an **upper bound**: the interprocedural inference
must stay under it (SFL305), and callers trust it instead of the
callee's inferred set — the assume-guarantee boundary that keeps the
write-only observer layer's honest ``reads-clock`` declarations from
having to be re-derived at every call site.

Malformed specs come back as issues (surfaced under SFL305) rather than
being silently ignored, exactly like SFL104/SFL204 for the sibling
grammars.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.lint.flow.effects import ALL_EFFECTS, PURE_KEYWORD
from repro.lint.specs import (
    SpecIssue,
    annotated_metadata,
    directive_pattern,
    docstring_lines,
    parse_keyword_payload,
)

__all__ = ["EffectSpec", "extract_function_effects"]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_EFFECTS_LINE = directive_pattern("Effects")

#: ``Annotated`` metadata prefix addressing the flow pass.
_METADATA_PREFIX = "effects:"


@dataclass(frozen=True)
class EffectSpec:
    """The declared effects of one function, if any.

    Attributes
    ----------
    declared:
        The declared upper bound (``frozenset()`` for ``pure``), or
        ``None`` when the function carries no spec at all.
    line:
        Line of the declaration (the ``def`` line when undeclared),
        used to anchor SFL305/SFL306 findings.
    issues:
        Malformed declarations found during extraction.
    """

    declared: Optional[frozenset] = None
    line: int = 0
    issues: Tuple[SpecIssue, ...] = ()


def extract_function_effects(func: _FuncNode) -> EffectSpec:
    """Collect the declared effect spec of ``func``.

    Multiple ``Effects:`` docstring lines merge (union); an
    ``Annotated`` return metadata spec wins over the docstring when both
    are present, matching the dim/shape precedence.
    """
    issues: List[SpecIssue] = []
    declared: Optional[frozenset] = None
    spec_line = func.lineno

    for line, text in docstring_lines(func):
        match = _EFFECTS_LINE.match(text)
        if match is None:
            continue
        parsed = parse_keyword_payload(
            match.group("payload"),
            line,
            directive="Effects",
            vocabulary=ALL_EFFECTS,
            bottom_keyword=PURE_KEYWORD,
            issues=issues,
        )
        if parsed is not None:
            declared = parsed if declared is None else declared | parsed
            spec_line = line
        else:
            spec_line = line

    for constant in annotated_metadata(func.returns):
        text = constant.value.strip()
        if not text.lower().startswith(_METADATA_PREFIX):
            continue
        payload = text[len(_METADATA_PREFIX):]
        parsed = parse_keyword_payload(
            payload,
            constant.lineno,
            directive="Effects",
            vocabulary=ALL_EFFECTS,
            bottom_keyword=PURE_KEYWORD,
            issues=issues,
        )
        if parsed is not None:
            declared = parsed
            spec_line = constant.lineno

    return EffectSpec(
        declared=declared, line=spec_line, issues=tuple(issues)
    )
