"""Per-function *local* effect facts.

This module answers, for one function body in isolation: which effects
does the code perform **directly**?  The interprocedural half — what a
function's callees do — is the fixpoint's job
(:mod:`repro.lint.flow.fixpoint`); keeping leaf extraction separate
makes it unit-testable against source strings and keeps the fixpoint a
pure graph algorithm.

The extraction is deliberately syntactic and biased toward
*under*-reporting on genuinely ambiguous code (an alias of a parameter
mutated through a fresh local name is missed): the flow gate demands a
clean ``src`` with zero suppressions, so a heuristic that cries wolf
would be fixed by weakening the gate — the opposite of the point.  The
known blind spots are documented in docs/LINTING.md.

Scoping follows Python's rule approximately: any name assigned anywhere
in the function (parameters included) is local unless declared
``global``; reads of non-local module-level *variables* are
``reads-state`` (UPPERCASE module names are trusted as constants), and
stores through them are ``mutates-global``.  Nested ``def``/``lambda``
bodies are folded into the enclosing function — a closure's effects
happen on the enclosing function's watch — and ``nonlocal`` writes
count as closure-state mutation (``mutates-global``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.lint.flow.effects import (
    DOES_IO,
    DRAWS_RNG,
    MUTATES_ARGS,
    MUTATES_GLOBAL,
    READS_CLOCK,
    READS_STATE,
)
from repro.lint.interp import assigned_names, dotted_chain

__all__ = ["LocalFacts", "extract_local_facts", "is_rng_param"]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Mutating methods of the builtin containers (and deque).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "add",
        "discard",
        "appendleft",
        "popleft",
        "rotate",
    }
)

#: Builtin callables that perform I/O.
_IO_BUILTINS = frozenset({"open", "print", "input", "breakpoint"})

#: Modules whose calls are I/O wholesale.
_IO_MODULES = frozenset(
    {"subprocess", "socket", "shutil", "logging", "tempfile", "io"}
)

#: Filesystem/stream method names (``pathlib.Path``, file handles).
_IO_METHODS = frozenset(
    {
        "write_text",
        "read_text",
        "write_bytes",
        "read_bytes",
        "mkdir",
        "rmdir",
        "unlink",
        "touch",
        "rename",
        "replace",
        "iterdir",
        "glob",
        "rglob",
        "hardlink_to",
        "symlink_to",
        "writelines",
        "flush",
        "fsync",
    }
)

#: ``os.<attr>`` exemptions: pure path algebra and environment reads.
_OS_PURE = frozenset({"path", "fspath", "name", "sep", "linesep", "curdir"})
_OS_READS = frozenset({"environ", "getenv", "cpu_count", "getcwd", "getpid"})

#: Wall-clock attribute names under ``datetime``/``date``.
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

#: Names that mark a value as an RNG stream by convention.
_RNG_NAMES = frozenset({"rng", "generator", "_generator", "random_state"})

#: Annotation type names that mark an RNG parameter.
_RNG_TYPES = frozenset({"RngStream", "Generator", "BitGenerator"})


def _is_rng_name(name: str) -> bool:
    return name in _RNG_NAMES or name.endswith("_rng")


def is_rng_param(arg: ast.arg) -> bool:
    """Whether a parameter is RNG-like by name or annotation."""
    if _is_rng_name(arg.arg):
        return True
    if arg.annotation is not None:
        chain = dotted_chain(_strip_optional(arg.annotation))
        if chain and chain[-1] in _RNG_TYPES:
            return True
    return False


def _strip_optional(annotation: ast.expr) -> ast.expr:
    """``Optional[X]``/``X | None`` -> ``X`` (best effort)."""
    if isinstance(annotation, ast.Subscript):
        chain = dotted_chain(annotation.value)
        if chain and chain[-1] in {"Optional", "Annotated"}:
            inner = annotation.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                return inner.elts[0]
            return inner
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        return _strip_optional(annotation.left)
    return annotation


@dataclass(frozen=True)
class LocalFacts:
    """The directly-performed effects of one function body.

    Attributes
    ----------
    effects:
        The local effect set (callees not included).
    evidence:
        Effect -> ``(line, description)`` of the first occurrence, used
        to anchor findings and explain the batchability report.
    rng_params_used:
        RNG-like parameters that the body actually references (feeds
        SFL306).
    """

    effects: FrozenSet[str] = frozenset()
    evidence: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    rng_params_used: Tuple[str, ...] = ()


class _FactVisitor(ast.NodeVisitor):
    def __init__(
        self,
        func: _FuncNode,
        module_vars: FrozenSet[str],
        imports: Dict[str, str],
    ) -> None:
        self.func = func
        self.module_vars = module_vars
        self.imports = imports
        self.evidence: Dict[str, Tuple[int, str]] = {}
        self.rng_params_used: Set[str] = set()

        every_arg = [
            *func.args.posonlyargs,
            *func.args.args,
            *func.args.kwonlyargs,
            *([func.args.vararg] if func.args.vararg else []),
            *([func.args.kwarg] if func.args.kwarg else []),
        ]
        self.params: Set[str] = {arg.arg for arg in every_arg}
        self.rng_params: Set[str] = {
            arg.arg for arg in every_arg if is_rng_param(arg)
        }
        self.globals_declared: Set[str] = set()
        self.locals: Set[str] = set(self.params)
        self._collect_bindings(func)
        #: Locals bound from ``np.random.default_rng(...)`` etc.
        self.rng_locals: Set[str] = set()

    # -- scope prepass --------------------------------------------------
    def _collect_bindings(self, func: _FuncNode) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self.locals.update(assigned_names(target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self.locals.update(assigned_names(node.target))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self.locals.update(
                            assigned_names(item.optional_vars)
                        )
            elif isinstance(node, ast.comprehension):
                self.locals.update(assigned_names(node.target))
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.locals.add(node.name)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node is not func:
                self.locals.add(node.name)
        self.locals -= self.globals_declared

    # -- recording ------------------------------------------------------
    def _record(self, effect: str, node: ast.AST, why: str) -> None:
        if effect not in self.evidence:
            self.evidence[effect] = (getattr(node, "lineno", 1), why)

    # -- classification helpers ----------------------------------------
    def _root_kind(self, name: str) -> str:
        """'local' | 'param' | 'module' | 'other' for a chain root."""
        if name in self.params:
            return "param"
        if name in self.locals:
            return "local"
        if name in self.globals_declared or name in self.module_vars:
            return "module"
        return "other"

    def _classify_store(self, target: ast.expr, node: ast.AST) -> None:
        """A store through ``x.attr`` / ``x[i]`` (not a plain rebind)."""
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        chain = dotted_chain(
            target if isinstance(target, ast.Attribute) else base
        )
        root = chain[0] if chain else (
            base.id if isinstance(base, ast.Name) else None
        )
        if root is None:
            return
        if chain and root == "os" and len(chain) > 1 and chain[1] == "environ":
            self._record(
                MUTATES_GLOBAL, node, "writes os.environ"
            )
            return
        kind = self._root_kind(root)
        if kind == "param":
            self._record(
                MUTATES_ARGS, node, f"stores through parameter {root!r}"
            )
        elif kind == "module":
            self._record(
                MUTATES_GLOBAL,
                node,
                f"stores through module-level {root!r}",
            )

    # -- statements -----------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        # The declaration alone is not a write; stores are caught below.
        pass

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._record(
            MUTATES_GLOBAL,
            node,
            f"rebinds closure state ({', '.join(node.names)})",
        )

    def _handle_bind(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._record(
                    MUTATES_GLOBAL,
                    node,
                    f"rebinds module-level {target.id!r} (global)",
                )
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._classify_store(target, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_bind(element, node)
        elif isinstance(target, ast.Starred):
            self._handle_bind(target.value, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_bind(target, node)
        self._maybe_rng_binding(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_bind(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_bind(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._classify_store(target, node)
        self.generic_visit(node)

    def _maybe_rng_binding(self, node: ast.Assign) -> None:
        """Track ``gen = np.random.default_rng(...)``-style locals."""
        if not isinstance(node.value, ast.Call):
            return
        chain = dotted_chain(node.value.func)
        if chain and chain[-1] in {"default_rng", "RandomState"}:
            for target in node.targets:
                self.rng_locals.update(assigned_names(target))

    # -- expressions ----------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.id in self.rng_params:
                self.rng_params_used.add(node.id)
            if (
                self._root_kind(node.id) == "module"
                and node.id in self.module_vars
                and not node.id.isupper()
            ):
                self._record(
                    READS_STATE,
                    node,
                    f"reads module-level variable {node.id!r}",
                )

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        if chain:
            self._classify_call(chain, node)
        self.generic_visit(node)

    def _classify_call(self, chain: List[str], node: ast.Call) -> None:
        root = chain[0]
        dotted = ".".join(chain)
        resolved = self.imports.get(root, root if len(chain) > 1 else None)

        # RNG draws: a call through an RNG-named link, the stdlib/numpy
        # global generators, or secrets.
        if any(_is_rng_name(part) for part in chain[:-1]) or (
            len(chain) == 1 and _is_rng_name(root)
        ):
            self._record(DRAWS_RNG, node, f"draws from {dotted}")
            return
        if root in self.rng_locals:
            self._record(DRAWS_RNG, node, f"draws from {dotted}")
            return
        if resolved == "random" or resolved == "secrets":
            self._record(DRAWS_RNG, node, f"calls {dotted}")
            return
        if resolved == "numpy" and len(chain) > 2 and chain[1] == "random":
            self._record(DRAWS_RNG, node, f"calls {dotted}")
            return

        # Wall clock.
        if resolved == "time":
            self._record(READS_CLOCK, node, f"calls {dotted}")
            return
        if chain[-1] in _DATETIME_NOW and (
            resolved == "datetime" or "datetime" in chain or "date" in chain
        ):
            self._record(READS_CLOCK, node, f"calls {dotted}")
            return

        # I/O.
        if len(chain) == 1 and root in _IO_BUILTINS:
            self._record(DOES_IO, node, f"calls {root}()")
            return
        if resolved in _IO_MODULES:
            self._record(DOES_IO, node, f"calls {dotted}")
            return
        if resolved == "os" and len(chain) > 1:
            if chain[1] in _OS_READS:
                self._record(READS_STATE, node, f"reads {dotted}")
            elif chain[1] not in _OS_PURE:
                self._record(DOES_IO, node, f"calls {dotted}")
            return
        if resolved == "sys" and len(chain) > 2 and chain[1] in {
            "stdout",
            "stderr",
            "stdin",
        }:
            self._record(DOES_IO, node, f"writes {dotted}")
            return
        if len(chain) > 1 and chain[-1] in _IO_METHODS:
            self._record(DOES_IO, node, f"calls {dotted}")
            return

        # Container mutation through a parameter or module object.
        if len(chain) > 1 and chain[-1] in MUTATOR_METHODS:
            kind = self._root_kind(root)
            if kind == "param":
                self._record(
                    MUTATES_ARGS,
                    node,
                    f"mutates parameter {root!r} via .{chain[-1]}()",
                )
            elif kind == "module":
                self._record(
                    MUTATES_GLOBAL,
                    node,
                    f"mutates module-level {root!r} via .{chain[-1]}()",
                )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = dotted_chain(node)
        if (
            chain
            and chain[0] == "os"
            and len(chain) > 1
            and chain[1] == "environ"
            and isinstance(node.ctx, ast.Load)
        ):
            self._record(READS_STATE, node, "reads os.environ")
        self.generic_visit(node)


def extract_local_facts(
    func: _FuncNode,
    *,
    module_vars: FrozenSet[str] = frozenset(),
    imports: Optional[Dict[str, str]] = None,
) -> LocalFacts:
    """The local effect facts of one function body.

    ``module_vars`` are the module-level variable names of the defining
    module (stores through them are ``mutates-global``, reads of the
    lowercase ones ``reads-state``); ``imports`` is the defining
    module's local-name -> dotted-module map
    (:func:`repro.lint.dim.signatures.build_import_map`).
    """
    visitor = _FactVisitor(func, module_vars, imports or {})
    for statement in func.body:
        visitor.visit(statement)
    return LocalFacts(
        effects=frozenset(visitor.evidence),
        evidence=dict(visitor.evidence),
        rng_params_used=tuple(sorted(visitor.rng_params_used)),
    )
