"""Interprocedural effect inference over the call graph.

One bottom-up sweep over the SCC condensation (callees first): each
component's inferred effects are the union of its members' local facts
plus the *exported* effects of every callee outside the component,
where exported means the declared ``Effects:`` upper bound when the
callee carries one and the inferred set otherwise.  Declarations are
thus assume-guarantee boundaries: a caller of the observer layer trusts
its declared ``reads-clock`` instead of re-deriving it, and SFL305
separately checks every declaration against its own body's inference.

Two refinements keep the over-approximation honest:

* ``mutates-args`` propagates only along edges that syntactically pass
  a caller parameter (receiver or argument) — a callee mutating a
  freshly-built local of the caller is the caller's private business;
* threading an RNG parameter counts as ``draws-rng`` even without a
  visible draw, so the effect follows the stream through plumbing
  functions (and SFL306 insists the plumbing declares it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.lint.flow.annotations import EffectSpec, extract_function_effects
from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.effects import (
    DRAWS_RNG,
    MUTATES_ARGS,
    format_effects,
)
from repro.lint.flow.facts import LocalFacts, extract_local_facts

__all__ = ["EffectTable", "FunctionEffects", "build_effect_table"]


@dataclass(frozen=True)
class FunctionEffects:
    """The complete effect verdict for one function.

    Attributes
    ----------
    qualname:
        Dotted qualname in the call graph.
    line:
        Line of the ``def``.
    local:
        Effects the body performs directly (RNG threading included).
    inferred:
        ``local`` joined with callees' exported effects — the fixpoint
        result.
    declared:
        The ``Effects:`` upper bound, or ``None`` when undeclared.
    spec:
        The raw extracted spec (line + syntax issues) for anchoring.
    evidence:
        Effect -> ``(line, why)``; local evidence wins over the first
        propagating call edge.
    rng_params_used:
        RNG-like parameters the body references (drives SFL306).
    """

    qualname: str
    line: int
    local: FrozenSet[str]
    inferred: FrozenSet[str]
    declared: Optional[FrozenSet[str]]
    spec: EffectSpec
    evidence: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    rng_params_used: Tuple[str, ...] = ()

    @property
    def exported(self) -> FrozenSet[str]:
        """What callers should assume: declared if present, else inferred."""
        return self.declared if self.declared is not None else self.inferred

    @property
    def contradictions(self) -> FrozenSet[str]:
        """Inferred effects the declaration fails to admit (SFL305)."""
        if self.declared is None:
            return frozenset()
        return self.inferred - self.declared


class EffectTable:
    """Program-wide effect verdicts, addressable like the call graph."""

    def __init__(
        self, graph: CallGraph, functions: Dict[str, FunctionEffects]
    ) -> None:
        self.graph = graph
        self.functions = functions

    def lookup(self, qualname: str) -> Optional[FunctionEffects]:
        """The verdict of an exact qualname, or None."""
        return self.functions.get(qualname)

    def lookup_function(
        self, module: str, class_name: Optional[str], name: str
    ) -> Optional[FunctionEffects]:
        """The verdict for a definition seen while visiting a file."""
        qualname = (
            f"{module}.{class_name}.{name}"
            if class_name
            else f"{module}.{name}"
        )
        return self.functions.get(qualname)

    def resolve(self, name: str) -> Optional[str]:
        """Resolve a (possibly partial) dotted name; see CallGraph."""
        return self.graph.resolve(name)

    def reachable_from(self, root: str) -> List[str]:
        """Sorted qualnames reachable from ``root`` (inclusive)."""
        return self.graph.reachable_from(root)

    def is_pure_callable(
        self, module: str, chain: List[str], local_names: FrozenSet[str]
    ) -> bool:
        """Whether a call chain resolves to a provably pure function.

        Used by the hoisting detector (SFL304): only calls whose target
        resolves in this table *and* exports the empty effect set are
        safe to hoist out of a loop.
        """
        target = self._resolve_chain(module, chain, local_names)
        if target is None:
            return False
        verdict = self.functions.get(target)
        return verdict is not None and not verdict.exported

    def _resolve_chain(
        self, module: str, chain: List[str], local_names: FrozenSet[str]
    ) -> Optional[str]:
        if not chain:
            return None
        root = chain[0]
        imports = self.graph.imports.get(module, {})
        if len(chain) == 1:
            if root in local_names and root not in imports:
                return None
            direct = f"{module}.{root}"
            if direct in self.functions:
                return direct
            if direct in self.graph.class_inits:
                return self.graph.class_inits[direct]
            if root in imports:
                dotted = imports[root]
                if dotted in self.functions:
                    return dotted
                return self.graph.class_inits.get(dotted)
            return None
        resolved_root = imports.get(root)
        if resolved_root is None:
            if f"{module}.{root}" in self.graph.class_inits:
                resolved_root = f"{module}.{root}"
            else:
                return None
        dotted = ".".join([resolved_root, *chain[1:]])
        if dotted in self.functions:
            return dotted
        return self.graph.class_inits.get(dotted)


def build_effect_table(modules: Mapping[str, ast.Module]) -> EffectTable:
    """Infer effects for every function of ``module name -> tree``."""
    graph = build_call_graph(modules)

    local_facts: Dict[str, LocalFacts] = {}
    specs: Dict[str, EffectSpec] = {}
    locals_plus: Dict[str, FrozenSet[str]] = {}
    for qualname, node in graph.nodes.items():
        facts = extract_local_facts(
            node.func,
            module_vars=graph.module_vars.get(node.module, frozenset()),
            imports=graph.imports.get(node.module, {}),
        )
        local_facts[qualname] = facts
        specs[qualname] = extract_function_effects(node.func)
        seed = set(facts.effects)
        if facts.rng_params_used:
            # Threading a stream is an effect on the stream's schedule
            # even if this frame never draws.
            seed.add(DRAWS_RNG)
        locals_plus[qualname] = frozenset(seed)

    inferred: Dict[str, FrozenSet[str]] = {}
    call_evidence: Dict[str, Dict[str, Tuple[int, str]]] = {
        qualname: {} for qualname in graph.nodes
    }

    def exported(qualname: str) -> FrozenSet[str]:
        declared = specs[qualname].declared
        if declared is not None:
            return declared
        return inferred.get(qualname, locals_plus[qualname])

    for component in graph.sccs():
        members: Set[str] = set(component)
        combined: Set[str] = set()
        for member in component:
            combined |= locals_plus[member]
        for member in component:
            for edge in graph.edges.get(member, ()):
                if edge.callee in members or edge.callee not in graph.nodes:
                    continue
                incoming = exported(edge.callee)
                if not edge.passes_params:
                    incoming = incoming - {MUTATES_ARGS}
                for effect in incoming:
                    evidence = call_evidence[member]
                    if effect not in evidence:
                        evidence[effect] = (
                            edge.line,
                            f"calls {edge.callee} "
                            f"({format_effects(incoming)})",
                        )
                combined |= incoming
        frozen = frozenset(combined)
        for member in component:
            inferred[member] = frozen

    functions: Dict[str, FunctionEffects] = {}
    for qualname, node in graph.nodes.items():
        facts = local_facts[qualname]
        spec = specs[qualname]
        evidence: Dict[str, Tuple[int, str]] = dict(facts.evidence)
        if DRAWS_RNG not in evidence and facts.rng_params_used:
            evidence[DRAWS_RNG] = (
                node.line,
                "threads RNG parameter "
                + ", ".join(repr(p) for p in facts.rng_params_used),
            )
        for effect, anchor in call_evidence[qualname].items():
            evidence.setdefault(effect, anchor)
        functions[qualname] = FunctionEffects(
            qualname=qualname,
            line=node.line,
            local=locals_plus[qualname],
            inferred=inferred.get(qualname, locals_plus[qualname]),
            declared=spec.declared,
            spec=spec,
            evidence=evidence,
            rng_params_used=facts.rng_params_used,
        )
    return EffectTable(graph, functions)
