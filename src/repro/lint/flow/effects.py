"""The effect lattice of the safeflow pass.

An effect set is a plain ``frozenset`` of the atoms below; the lattice
order is subset inclusion, join is union, and *pure* is the bottom
element (the empty set).  A function's **inferred** effects are the
join of its local facts and its callees' effects; a **declared**
``Effects:`` spec is an upper bound the inference must stay under
(checked by SFL305).

The vocabulary is deliberately small and batching-oriented:

``reads-state``
    Reads a mutable module-level binding (or ``os.environ``).  Two
    batched episodes sharing that binding may observe each other.
``mutates-args``
    Mutates an object reachable from a parameter (``self`` included).
    Batchable when the mutated object is per-episode; the batch engine
    must replicate it per lane.
``mutates-global``
    Writes a module-level binding or closure cell (``global`` /
    ``nonlocal`` / mutation of a module object).  A hard batching
    blocker: lanes would cross-contaminate.
``does-io``
    Touches the filesystem, a stream, a socket or a subprocess.
``draws-rng``
    Draws from (or threads) a seeded RNG stream.  Batchable only by
    threading a batched stream explicitly — hence SFL306 insists it be
    declared wherever an RNG flows through.
``reads-clock``
    Reads the wall clock (``time.*``, ``datetime.now``) — forbidden in
    results (SFL004 bans it in the sim core); tolerated only in the
    write-only observer layer, whose zero-interference contract PR 5
    certifies.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

__all__ = [
    "READS_STATE",
    "MUTATES_ARGS",
    "MUTATES_GLOBAL",
    "DOES_IO",
    "DRAWS_RNG",
    "READS_CLOCK",
    "PURE",
    "PURE_KEYWORD",
    "EFFECT_ORDER",
    "ALL_EFFECTS",
    "BLOCKING_EFFECTS",
    "format_effects",
    "join_effects",
]

READS_STATE = "reads-state"
MUTATES_ARGS = "mutates-args"
MUTATES_GLOBAL = "mutates-global"
DOES_IO = "does-io"
DRAWS_RNG = "draws-rng"
READS_CLOCK = "reads-clock"

#: Canonical display/report order (roughly "least to most disruptive").
EFFECT_ORDER = (
    READS_STATE,
    MUTATES_ARGS,
    MUTATES_GLOBAL,
    DOES_IO,
    DRAWS_RNG,
    READS_CLOCK,
)

ALL_EFFECTS: FrozenSet[str] = frozenset(EFFECT_ORDER)

#: The bottom element: no effects at all.
PURE: FrozenSet[str] = frozenset()

#: The spelling of the bottom element in ``Effects:`` specs.
PURE_KEYWORD = "pure"

#: Effects that outright block lock-step batching of episodes
#: (cross-lane contamination / nondeterminism the seed cannot fix).
#: ``mutates-args``/``draws-rng``/``reads-state`` are refactor
#: advisories instead: per-lane state and threaded batched streams
#: handle them.
BLOCKING_EFFECTS: FrozenSet[str] = frozenset(
    {MUTATES_GLOBAL, DOES_IO, READS_CLOCK}
)


def format_effects(effects: Iterable[str]) -> str:
    """Render an effect set in canonical order (``pure`` when empty)."""
    present = set(effects)
    ordered = [effect for effect in EFFECT_ORDER if effect in present]
    return ", ".join(ordered) if ordered else PURE_KEYWORD


def join_effects(*sets: Iterable[str]) -> FrozenSet[str]:
    """The lattice join (union) of any number of effect sets."""
    joined: set = set()
    for effects in sets:
        joined.update(effects)
    return frozenset(joined)
