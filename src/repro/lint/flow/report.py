"""The machine-readable batchability report.

``repro-lint --batch-report run_episode`` answers the question the
vectorized-engine migration (ROADMAP item 1) starts with: *which
functions on the episode hot path carry effects, and which of those
effects block lock-step batching?*  The output is JSON so the
migration tooling (and CI dashboards) can diff it between commits —
a new blocking effect appearing on the hot path is a regression even
when every lint rule still passes.

Schema (version 1)::

    {
      "schema": 1,
      "root": "repro.sim.engine.run_episode",
      "reachable": 37,
      "batchable": false,
      "blocking": ["repro.obs....", ...],      # functions with a
                                                # blocking effect
      "functions": [                            # every *effectful*
        {                                       # reachable function
          "qualname": "...",
          "effects": ["draws-rng", ...],        # inferred, canonical
          "declared": ["draws-rng"] | null,     # Effects: spec if any
          "blocking": ["reads-clock", ...],     # subset that blocks
          "advisory": ["draws-rng", ...],       # subset that refactors
          "evidence": {"draws-rng":
              {"line": 212, "why": "draws from rng.normal"}},
        }, ...
      ],
      "pure": ["repro.dynamics....", ...],      # reachable & pure
    }

Functions are sorted by qualname; effect lists are in canonical
lattice order — the report is byte-stable for a given tree.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.flow.effects import BLOCKING_EFFECTS, EFFECT_ORDER
from repro.lint.flow.fixpoint import EffectTable

__all__ = ["batchability_report"]

SCHEMA_VERSION = 1


def _ordered(effects) -> List[str]:
    return [effect for effect in EFFECT_ORDER if effect in effects]


def batchability_report(table: EffectTable, root: str) -> Dict:
    """The batchability verdict for everything reachable from ``root``.

    ``root`` may be a bare or partial dotted name
    (``run_episode`` -> ``repro.sim.engine.run_episode``); raises
    :class:`ValueError` when it resolves to nothing or to more than one
    function.
    """
    resolved = table.resolve(root)
    if resolved is None:
        raise ValueError(
            f"--batch-report root {root!r} does not resolve to exactly "
            "one analyzed function (use a longer dotted suffix)"
        )

    reachable = table.reachable_from(resolved)
    effectful: List[Dict] = []
    pure: List[str] = []
    blocking_functions: List[str] = []

    for qualname in reachable:
        verdict = table.lookup(qualname)
        if verdict is None:
            continue
        if not verdict.inferred:
            pure.append(qualname)
            continue
        blocking = _ordered(verdict.inferred & BLOCKING_EFFECTS)
        if blocking:
            blocking_functions.append(qualname)
        effectful.append(
            {
                "qualname": qualname,
                "effects": _ordered(verdict.inferred),
                "declared": (
                    _ordered(verdict.declared)
                    if verdict.declared is not None
                    else None
                ),
                "blocking": blocking,
                "advisory": _ordered(
                    verdict.inferred - BLOCKING_EFFECTS
                ),
                "evidence": {
                    effect: {"line": line, "why": why}
                    for effect, (line, why) in sorted(
                        verdict.evidence.items()
                    )
                    if effect in verdict.inferred
                },
            }
        )

    return {
        "schema": SCHEMA_VERSION,
        "root": resolved,
        "reachable": len(reachable),
        "batchable": not blocking_functions,
        "blocking": blocking_functions,
        "functions": effectful,
        "pure": pure,
    }
